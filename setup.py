"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools lacks PEP 660 support (``pip install -e .
--no-use-pep517`` falls back to this file).
"""

from setuptools import setup

setup()
