"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools lacks PEP 660 support (``pip install -e .
--no-use-pep517`` falls back to this file).

The version is single-sourced from ``repro.__version__`` — parsed out of
the package's ``__init__.py`` rather than imported, so building a wheel
never executes (or needs to resolve) the package itself.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"
_VERSION = re.search(
    r'^__version__ = "([^"]+)"', _INIT.read_text(), flags=re.MULTILINE
).group(1)

setup(
    name="repro",
    version=_VERSION,
    package_dir={"": "src"},
    packages=find_packages("src"),
)
