"""E11 — Section 7.2: the unbounded (SpanLL) regime.

Claim exercised: when the clause width is unbounded, the natural-sample-
space FPRAS of Theorem 6.2 stops being polynomial — its prescribed sample
count grows as ``m^k`` with the clause width — while the Karp–Luby-style
complex-sample-space estimator's sample count only depends on the number of
clauses.  The benchmark runs both with a hard sample cap and reports the
prescribed sample sizes, whose divergence is the measured shape.
"""

import pytest

from repro.approx import (
    KarpLubyEstimator,
    LambdaFPRAS,
    karp_luby_sample_size,
    sample_size,
)
from repro.problems import DisjointPositiveDNFCompactor, count_disjoint_positive_dnf
from repro.workloads import random_disjoint_positive_dnf

WIDTHS = [2, 4, 6]
PARTS, PART_SIZE, CLAUSES = 30, 4, 12


@pytest.mark.parametrize("width", WIDTHS)
def test_natural_sample_space_degrades_with_width(benchmark, width):
    formula = random_disjoint_positive_dnf(PARTS, PART_SIZE, CLAUSES, width, seed=width)
    exact = count_disjoint_positive_dnf(formula)
    prescribed = sample_size(0.2, 0.1, PART_SIZE, formula.width)
    scheme = LambdaFPRAS(DisjointPositiveDNFCompactor(k=formula.width), max_samples=30_000)
    result = benchmark(scheme.estimate, formula, 0.2, 0.1, rng=1)
    benchmark.extra_info["clause_width"] = formula.width
    benchmark.extra_info["prescribed_samples"] = prescribed
    benchmark.extra_info["capped"] = result.capped
    benchmark.extra_info["exact"] = exact
    # The m^k blow-up: the prescription is exponential in the clause width.
    assert prescribed >= sample_size(0.2, 0.1, PART_SIZE, 2) * (
        PART_SIZE ** (formula.width - 2)
    ) * 0.99


@pytest.mark.parametrize("width", WIDTHS)
def test_complex_sample_space_is_insensitive_to_width(benchmark, width):
    formula = random_disjoint_positive_dnf(PARTS, PART_SIZE, CLAUSES, width, seed=width)
    exact = count_disjoint_positive_dnf(formula)
    compactor = DisjointPositiveDNFCompactor(k=None)
    estimator = KarpLubyEstimator(compactor, max_samples=30_000)
    result = benchmark(estimator.estimate, formula, 0.2, 0.1, rng=2)
    prescribed = karp_luby_sample_size(0.2, 0.1, result.boxes)
    benchmark.extra_info["clause_width"] = formula.width
    benchmark.extra_info["prescribed_samples"] = prescribed
    benchmark.extra_info["exact"] = exact
    # Sample prescription depends on the number of clauses, not the width.
    assert prescribed <= karp_luby_sample_size(0.2, 0.1, CLAUSES)
    if exact:
        assert abs(result.estimate - exact) <= 0.6 * exact
