"""E20 — anytime serving: calibrated coverage and the latency SLA win.

Claims exercised:

* **Calibrated coverage** — a :class:`~repro.approx.ConformalCalibrator`
  fitted on held-out (estimate, exact) residuals from real Karp–Luby
  runs achieves **≥ 90% empirical coverage at α = 0.1** on a fresh
  holdout of ≥ 200 pairs, while its rescaling quantile tightens the
  distribution-free Hoeffding radius severalfold.
* **Latency SLA** — on a sampling-heavy FPRAS job, anytime serving with
  ``max_latency`` keeps the p99 job latency within the budget (plus the
  bounded one-chunk overshoot), while the fixed-(ε, δ) prescription for
  the same job blows through the budget by an order of magnitude.  The
  anytime results still carry an interval that brackets the estimate.
"""

import math
import random
import time

import pytest

from repro.approx import ConformalCalibrator, karp_luby_plan, run_plan
from repro.engine import CountJob, SolverPool
from repro.lams import Selector, count_union_of_boxes
from repro.workloads import InconsistentDatabaseSpec, random_inconsistent_database

_RELATIONS = {"R": 3, "S": 3}


# --------------------------------------------------------------------- #
# calibrated coverage on held-out estimator residuals
# --------------------------------------------------------------------- #
def karp_luby_pairs(count, seed):
    """(estimate, raw half-width, exact) triples from real estimator runs."""
    rng = random.Random(seed)
    pairs = []
    while len(pairs) < count:
        dims = rng.randint(3, 4)
        sizes = tuple(rng.randint(2, 5) for _ in range(dims))
        boxes = []
        for _ in range(rng.randint(1, 3)):
            pinned = rng.sample(range(dims), rng.randint(1, 2))
            boxes.append(
                Selector({dim: rng.randrange(sizes[dim]) for dim in pinned})
            )
        exact = count_union_of_boxes(sizes, boxes)
        plan = karp_luby_plan(
            sizes,
            boxes,
            epsilon=0.4,
            delta=0.2,
            rng=rng.randrange(2**32),
            max_samples=64,
        )
        if plan.samples == 0:
            continue
        trace = run_plan(plan)
        if not math.isfinite(trace.raw_half_width) or trace.raw_half_width <= 0:
            continue
        pairs.append((trace.estimate, trace.raw_half_width, float(exact)))
    return pairs


@pytest.mark.smoke
def test_calibrated_intervals_cover_at_alpha_10():
    """≥ 90% empirical coverage at α = 0.1 on ≥ 200 held-out pairs."""
    pairs = karp_luby_pairs(1000, seed=4)
    calibration, holdout = pairs[:750], pairs[750:]
    assert len(holdout) >= 200
    calibrator = ConformalCalibrator(calibration)
    assert not calibrator.is_conservative(0.1)
    coverage = calibrator.coverage(holdout, alpha=0.1)
    assert coverage >= 0.90
    # The point of calibrating: the conformal quantile is far below 1,
    # i.e. the calibrated radius is severalfold tighter than Hoeffding's.
    assert calibrator.quantile(0.1) < 0.5


# --------------------------------------------------------------------- #
# the latency SLA win over the fixed-(ε, δ) prescription
# --------------------------------------------------------------------- #
_BUDGET = 0.1  # seconds of max_latency per anytime job


@pytest.mark.smoke
def test_anytime_p99_meets_the_latency_budget_fixed_does_not():
    """Anytime p99 stays near the budget; the fixed path blows through it."""
    spec = InconsistentDatabaseSpec(
        relations=_RELATIONS,
        blocks_per_relation=40,
        conflict_rate=0.5,
        max_block_size=3,
        domain_size=50,
    )
    database, keys = random_inconsistent_database(spec, seed=7)
    pool = SolverPool()
    pool.register("heavy", database, keys)
    query = "EXISTS x, y, z, w. (R(x, 'v1', y) AND S(z, 'v1', w))"

    def run(job):
        began = time.perf_counter()
        result = pool.run_job(job)
        return time.perf_counter() - began, result

    # The fixed prescription for ε = 0.03 on this instance is sampling
    # heavy: well over the SLA whatever the hardware.
    fixed_elapsed, fixed = run(
        CountJob(
            database="heavy",
            query=query,
            method="fpras",
            epsilon=0.03,
            delta=0.05,
            seed=1,
        )
    )
    assert fixed.is_estimate
    assert fixed_elapsed > 4 * _BUDGET  # the SLA is unreachable this way

    latencies = []
    for seed in range(8):
        elapsed, result = run(
            CountJob(
                database="heavy",
                query=query,
                method="fpras",
                epsilon=0.03,
                delta=0.05,
                seed=seed,
                anytime=True,
                max_latency=_BUDGET,
            )
        )
        latencies.append(elapsed)
        assert result.stop_reason == "latency"
        assert result.interval_low <= result.satisfying <= result.interval_high
    p99 = sorted(latencies)[-1]  # max of 8 runs ≥ the p99
    # Budget plus the bounded overshoot of the chunk that crossed the
    # deadline (chunks are 1/32 of the full budget, measured here by the
    # fixed run on the *same* hardware), plus resolve overhead slack.
    assert p99 <= _BUDGET + fixed_elapsed / 8
    assert p99 < fixed_elapsed / 4  # and far under the fixed path
