"""E15 — the async serving layer: sharded throughput and warm restarts.

Claims exercised:

* **Sharded async throughput** — a 2-shard
  :class:`~repro.server.AsyncServer` (two warm worker processes, each
  owning one of two databases) serves a compute-heavy job stream at
  ≥1.5× the throughput of a single synchronous
  :class:`~repro.engine.SolverPool` on the same stream, while staying
  **bit-identical**.  The assertion needs real parallel hardware and is
  skipped on single-core machines (the measurement still runs and is
  recorded).
* **Equivalence** — the sharded async report of a mixed count/update
  stream equals a sequential ``run_stream`` of the same stream, count for
  count and digest for digest.
* **Cold restarts** — with a persistent cache directory, a restarted
  server re-registers the benchmark databases and serves the unchanged
  workload with **zero** selector *and* zero decomposition
  recomputations (decompositions are persisted alongside selectors as of
  this PR).
"""

import os
import time

import pytest

from repro.engine import CountJob, SolverPool
from repro.server import serve_stream
from repro.workloads import (
    InconsistentDatabaseSpec,
    random_inconsistent_database,
    serve_workload,
)

_RELATIONS = {"R": 3, "S": 3}


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def make_databases(count=2, blocks=12):
    """Small databases + sampling-heavy jobs: per-job CPU work dominates."""
    registry = {}
    for index in range(count):
        spec = InconsistentDatabaseSpec(
            relations=_RELATIONS,
            blocks_per_relation=blocks,
            conflict_rate=0.4,
            max_block_size=4,
            domain_size=200,
        )
        registry[f"db-{index}"] = random_inconsistent_database(spec, seed=index)
    return registry


def sampling_heavy_jobs(jobs=16, databases=2):
    """Estimator jobs alternating over the databases, one per shard."""
    stream = []
    for index in range(jobs):
        anchor = f"v{index % 10}"
        stream.append(
            CountJob(
                database=f"db-{index % databases}",
                query=(
                    f"EXISTS x, y, z, w. "
                    f"(R(x, '{anchor}', y) AND S(z, '{anchor}', w))"
                ),
                method=("fpras", "karp-luby")[index % 2],
                epsilon=0.05,
                delta=0.05,
                seed=index,
            )
        )
    return stream


# --------------------------------------------------------------------- #
# equivalence (runs meaningfully on any hardware)
# --------------------------------------------------------------------- #
@pytest.mark.smoke
def test_sharded_server_matches_sequential_stream():
    """A mixed count/update stream through 2 shards is bit-identical."""
    registry, stream = serve_workload(jobs=16, databases=2, update_every=4, seed=15)
    pool = SolverPool()
    for name, (database, keys) in registry.items():
        pool.register(name, database, keys)
    sequential = pool.run_stream(stream)
    served = serve_stream(registry, stream, shards=2, queue_limit=8)
    assert served.counts() == sequential.counts()
    assert [update.new_digest for update in served.updates] == [
        update.new_digest for update in sequential.updates
    ]


# --------------------------------------------------------------------- #
# sharded throughput (needs real cores to show a speedup)
# --------------------------------------------------------------------- #
@pytest.mark.smoke
def test_sharded_async_throughput_speedup():
    """2 shards ≥1.5× over a single synchronous pool (needs ≥2 cores)."""
    cores = _available_cores()
    registry = make_databases(count=2)
    jobs = sampling_heavy_jobs(jobs=16)

    pool = SolverPool()
    for name, (database, keys) in registry.items():
        pool.register(name, database, keys)
    pool.run(jobs)  # warm: steady-state caches, like a live service
    started = time.perf_counter()
    sequential = pool.run(jobs)
    sequential_elapsed = time.perf_counter() - started

    # serve_stream builds, warms (first pass) and times (second pass) a
    # fresh 2-shard server; shard workers stay warm between the passes.
    import asyncio

    from repro.server import AsyncServer

    async def timed_server_run():
        server = AsyncServer(shards=2, queue_limit=32)
        for name, (database, keys) in registry.items():
            server.register(name, database, keys)
        async with server:
            await server.run_stream(jobs)  # warm the shard caches
            begun = time.perf_counter()
            report = await server.run_stream(jobs)
            return report, time.perf_counter() - begun

    served, served_elapsed = asyncio.run(timed_server_run())

    assert served.counts() == sequential.counts()
    speedup = sequential_elapsed / served_elapsed
    if cores < 2:
        pytest.skip(
            f"only {cores} core(s) available; parallel speedup is not "
            f"measurable (observed {speedup:.2f}x)"
        )
    assert speedup >= 1.5, (
        f"expected >=1.5x with 2 shards on {cores} cores, got {speedup:.2f}x "
        f"(sequential {sequential_elapsed:.2f}s vs sharded {served_elapsed:.2f}s)"
    )


@pytest.mark.parametrize("shards", [1, 2])
def test_server_throughput(benchmark, shards):
    """Recorded throughput of the sharded server at 1 and 2 shards."""
    registry = make_databases(count=2)
    jobs = sampling_heavy_jobs(jobs=8)
    report = benchmark.pedantic(
        serve_stream, args=(registry, jobs), kwargs={"shards": shards}, rounds=2
    )
    benchmark.extra_info["shards"] = shards
    benchmark.extra_info["cores"] = _available_cores()
    benchmark.extra_info["jobs_per_second"] = round(report.jobs_per_second, 1)


# --------------------------------------------------------------------- #
# cold restarts against the persisted cache
# --------------------------------------------------------------------- #
@pytest.mark.smoke
def test_cold_restart_recomputes_nothing(tmp_path):
    """Restart + re-register: zero selector AND decomposition recomputes."""
    registry = make_databases(count=2, blocks=60)
    jobs = [
        CountJob(
            database=f"db-{index % 2}",
            query=(
                f"EXISTS x, y, z, w. "
                f"(R(x, 'v{index % 4}', y) AND S(z, 'v{index % 4}', w))"
            ),
            method="certificate",
        )
        for index in range(12)
    ]

    first = SolverPool(persist_dir=tmp_path / "cache")
    for name, (database, keys) in registry.items():
        first.register(name, database, keys)
    baseline = first.run(jobs)
    assert first.decomposition_recomputations == len(registry)
    assert first.selector_recomputations > 0

    restarted = SolverPool(persist_dir=tmp_path / "cache")
    for name, (database, keys) in registry.items():
        restarted.register(name, database, keys)
    replay = restarted.run(jobs)
    assert restarted.decomposition_recomputations == 0
    assert restarted.selector_recomputations == 0
    assert replay.counts() == baseline.counts()

    # The sharded server serves the same restarted state warm, too.
    served = serve_stream(
        registry, jobs, shards=2, persist_dir=tmp_path / "cache"
    )
    assert served.counts() == baseline.counts()
    for result in served.results:
        assert "selectors" not in result.cache_misses
        assert "decomposition" not in result.cache_misses
