"""E6 — the paper's FPRAS vs the Karp–Luby / Dalvi–Suciu-style baseline.

Claim exercised: for bounded keywidth both schemes reach comparable
accuracy; the natural-sample-space scheme is the conceptually simpler one
(its per-sample work is one uniform choice per block plus a membership
check), while the complex-sample-space baseline pays certificate-management
overhead per sample.  The benchmark reports wall-clock and accuracy for
both on the same instances; E11 shows where the trade-off reverses.
"""

import pytest

from repro.approx import CQAFpras, KarpLubyEstimator
from repro.lams import CQACompactor
from repro.repairs import count_repairs_satisfying
from conftest import join_query, make_database

CONFIGURATIONS = [(60, 1), (60, 2), (200, 2)]


def _instance(blocks, keywidth, seed=21):
    database, keys = make_database(blocks=blocks, conflict_rate=0.5, max_block=3, seed=seed)
    return database, keys, join_query(keywidth)


@pytest.mark.parametrize("blocks,keywidth", CONFIGURATIONS)
def test_fpras_natural_sample_space(benchmark, blocks, keywidth):
    database, keys, query = _instance(blocks, keywidth)
    exact = count_repairs_satisfying(database, keys, query).satisfying
    scheme = CQAFpras(query, keys)
    result = benchmark(scheme.estimate, database, 0.2, 0.1, rng=1)
    benchmark.extra_info["exact"] = exact
    benchmark.extra_info["estimate"] = round(result.estimate, 2)
    benchmark.extra_info["samples"] = result.samples
    if exact:
        assert abs(result.estimate - exact) <= 0.6 * exact


@pytest.mark.parametrize("blocks,keywidth", CONFIGURATIONS)
def test_karp_luby_complex_sample_space(benchmark, blocks, keywidth):
    database, keys, query = _instance(blocks, keywidth)
    exact = count_repairs_satisfying(database, keys, query).satisfying
    estimator = KarpLubyEstimator(CQACompactor(query, keys))
    result = benchmark(estimator.estimate, database, 0.2, 0.1, rng=1)
    benchmark.extra_info["exact"] = exact
    benchmark.extra_info["estimate"] = round(result.estimate, 2)
    benchmark.extra_info["samples"] = result.samples
    if exact:
        assert abs(result.estimate - exact) <= 0.6 * exact
