"""E18 — the HTTP network front under concurrent load.

Claims exercised:

* **Sustained concurrent throughput** — a 2-shard
  :class:`~repro.server.AsyncServer` behind the zero-dependency
  :class:`~repro.server.HttpServer` serves a cheap certificate workload
  driven by **200 concurrent keep-alive connections**
  (:func:`~repro.workloads.drive_http_load`) with every request answered
  (zero drops), bounded p99 latency, and a second measured wave that
  sustains the first wave's throughput — the front does not degrade as
  connections stay open.
* **Overload is loud, never silent** — under the ``"reject"`` policy
  with a tiny queue, a burst of one-shot clients (no retry budget) ends
  with every request either completed or holding a 429/503-mapped
  exception; ``completed + rejected == requests`` exactly, at least one
  rejection is observed, and the server keeps serving afterwards.  No
  request is dropped, no connection hangs (the whole burst runs under a
  hard timeout).
"""

import asyncio
import os

import pytest

from repro.engine import CountJob
from repro.errors import ServerOverloadedError
from repro.server import AsyncServer, HttpServer, ServeClient
from repro.workloads import (
    InconsistentDatabaseSpec,
    drive_http_load,
    random_inconsistent_database,
)

_RELATIONS = {"R": 3, "S": 3}


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def make_databases(count=2, blocks=8):
    """Small databases: the wire and the event loop dominate, not solving."""
    registry = {}
    for index in range(count):
        spec = InconsistentDatabaseSpec(
            relations=_RELATIONS,
            blocks_per_relation=blocks,
            conflict_rate=0.4,
            max_block_size=3,
            domain_size=50,
        )
        registry[f"db-{index}"] = random_inconsistent_database(spec, seed=index)
    return registry


def cheap_jobs(jobs, databases=2):
    """Cheap certificate counts alternating over the databases."""
    return [
        CountJob(
            database=f"db-{index % databases}",
            query=f"EXISTS x, y. R(x, 'v{index % 5}', y)",
            method="certificate",
        )
        for index in range(jobs)
    ]


# --------------------------------------------------------------------- #
# sustained throughput at 200 concurrent connections
# --------------------------------------------------------------------- #
@pytest.mark.smoke
def test_http_front_sustains_200_connections():
    """200 keep-alive connections: zero drops, bounded p99, sustained rate."""
    registry = make_databases(count=2)
    wave = cheap_jobs(jobs=400)

    async def run():
        server = AsyncServer(shards=2, queue_limit=64)
        for name, (database, keys) in registry.items():
            server.register(name, database, keys)
        async with server:
            async with HttpServer(server) as front:
                # Warm wave: shard caches and the interpreter settle.
                await drive_http_load(
                    front.host, front.port, cheap_jobs(jobs=100), connections=50
                )
                first = await drive_http_load(
                    front.host, front.port, wave, connections=200
                )
                second = await drive_http_load(
                    front.host, front.port, wave, connections=200
                )
                return first, second, front.requests

    first, second, http_requests = asyncio.run(asyncio.wait_for(run(), 300))

    # Total accounting: every request of both waves was answered.
    for report in (first, second):
        assert report.completed == report.requests, report
        assert report.rejected == 0 and report.errors == 0, report
    assert http_requests >= first.requests + second.requests

    assert first.throughput >= 20.0, f"throughput collapsed: {first}"
    assert first.latency_p99 <= 10.0, f"p99 unbounded: {first}"
    # Sustained: the second wave keeps at least 60% of the first wave's
    # rate (generous: CI machines jitter, but a leak or a connection
    # pile-up shows up far below this line).
    assert second.throughput >= 0.6 * first.throughput, (first, second)


# --------------------------------------------------------------------- #
# overload: 429/503, never a silent drop or a hung connection
# --------------------------------------------------------------------- #
@pytest.mark.smoke
def test_http_overload_answers_loudly():
    """A tiny reject-policy queue under a burst: every request accounted."""
    registry = make_databases(count=2, blocks=10)
    burst = cheap_jobs(jobs=250)

    async def run():
        server = AsyncServer(shards=2, queue_limit=2, policy="reject")
        for name, (database, keys) in registry.items():
            server.register(name, database, keys)
        async with server:
            async with HttpServer(server) as front:
                completed = rejected = 0

                async def one_shot(index, item):
                    nonlocal completed, rejected
                    # retries=0: the server's answer, not the backoff,
                    # is under test.
                    client = ServeClient(front.host, front.port, retries=0)
                    try:
                        await client.count(item.to_json(), index=index)
                    except ServerOverloadedError:
                        rejected += 1
                    else:
                        completed += 1
                    finally:
                        await client.close()

                await asyncio.gather(
                    *(one_shot(i, item) for i, item in enumerate(burst))
                )

                # The server survived the burst and still answers.
                async with ServeClient(front.host, front.port) as client:
                    result = await client.count(burst[0].to_json())
                assert result["satisfying"] >= 0

                return completed, rejected, front.rejected, server.rejected

    completed, rejected, http_rejected, server_rejected = asyncio.run(
        asyncio.wait_for(run(), 300)  # a hung connection fails, loudly
    )

    assert completed + rejected == len(burst), (completed, rejected)
    assert rejected >= 1, "a queue of 2 under a 250-burst must reject"
    assert completed >= 1, "some of the burst must get through"
    assert http_rejected >= rejected  # every client-seen 429 was counted
    assert server_rejected >= rejected


# --------------------------------------------------------------------- #
# recorded numbers (full tier only)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("connections", [50, 200])
def test_http_throughput(benchmark, connections):
    """Recorded HTTP throughput at 50 and 200 concurrent connections."""
    registry = make_databases(count=2)
    wave = cheap_jobs(jobs=200)

    async def serve_wave():
        server = AsyncServer(shards=2, queue_limit=64)
        for name, (database, keys) in registry.items():
            server.register(name, database, keys)
        async with server:
            async with HttpServer(server) as front:
                return await drive_http_load(
                    front.host, front.port, wave, connections=connections
                )

    report = benchmark.pedantic(lambda: asyncio.run(serve_wave()), rounds=2)
    benchmark.extra_info["connections"] = connections
    benchmark.extra_info["cores"] = _available_cores()
    benchmark.extra_info["throughput"] = round(report.throughput, 1)
    benchmark.extra_info["latency_p99_ms"] = round(report.latency_p99 * 1000, 1)
    assert report.completed == report.requests
