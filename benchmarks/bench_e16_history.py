"""E16 — snapshot lineage: time-travel correctness and warm-cache speed.

Claims exercised:

* **Lineage-replay correctness** — every ``as_of`` count of a
  :func:`~repro.workloads.history.history_workload` stream is
  **bit-identical** to registering that ancestor's database fresh and
  running the same job against its head.  The expected ancestor states
  are rebuilt *independently* of the lineage machinery (by replaying the
  stream's deltas directly), so the check would catch a corrupt chain,
  a wrong replay direction or a mis-resolved reference.
* **Warm time travel beats re-registration** — with a persistent store,
  answering a workload against an ancestor snapshot whose selector and
  decomposition entries are still on disk is ≥2× faster than the old way
  (registering the ancestor from scratch in a fresh pool), and performs
  **zero** selector and **zero** decomposition recomputations.  The
  assertion self-skips when the from-scratch baseline is too fast to time
  reliably; the zero-recomputation claim is asserted regardless.
* **The server path** serves the same ``as_of`` stream bit-identically to
  the sequential pool (`tests/test_time_travel.py` additionally pins the
  server's zero-recomputation behaviour).
"""

import time
from dataclasses import replace

import pytest

from bench_e14_incremental import small_s_delta
from repro.db import Database
from repro.engine import CountJob, SolverPool, UpdateJob
from repro.server import serve_stream
from repro.workloads import (
    InconsistentDatabaseSpec,
    history_workload,
    random_inconsistent_database,
)

_RELATIONS = {"R": 3, "S": 3}

#: Below this from-scratch baseline the speedup ratio is timer noise, not
#: signal; the perf assertion self-skips (correctness is still asserted).
_MIN_MEASURABLE_BASELINE = 0.02


def make_database(blocks=2000, seed=0, domain=1000):
    spec = InconsistentDatabaseSpec(
        relations=_RELATIONS,
        blocks_per_relation=blocks,
        conflict_rate=0.4,
        max_block_size=4,
        domain_size=domain,
    )
    return random_inconsistent_database(spec, seed=seed)


def anchored_jobs(name, queries=8, as_of=None):
    """Exact certificate jobs whose *preparation* dominates the cold path.

    Single-atom, constant-anchored queries over a large sparse domain:
    preparing one means rewriting it and scanning the whole relation for
    certificates (plus, cold, building the full block decomposition),
    while actually *counting* it touches only the handful of matching
    blocks — so the cold/warm ratio measures the preparation work the
    store saves, not the counting work both paths share.
    """
    jobs = []
    for index in range(queries):
        relation = ("R", "S")[index % 2]
        jobs.append(
            CountJob(
                database=name,
                query=f"EXISTS x, y. {relation}(x, 'v{index}', y)",
                method="certificate",
                as_of=as_of,
            )
        )
    return jobs


# --------------------------------------------------------------------- #
# lineage-replay correctness (runs meaningfully on any hardware)
# --------------------------------------------------------------------- #
@pytest.mark.smoke
def test_time_travel_counts_match_fresh_registration():
    """Every as_of count equals the same job against a fresh registration."""
    registry, stream = history_workload(jobs=24, update_every=4, seed=16)

    # Rebuild the expected state of every digest independently of the
    # lineage machinery, by replaying the stream's deltas directly.
    states = {}
    live = {}
    for name, (database, keys) in registry.items():
        live[name] = database
        states[database.content_digest()] = (database, keys, name)
    for item in stream:
        if isinstance(item, UpdateJob):
            _, keys = registry[item.database]
            live[item.database] = live[item.database].apply_delta(item.delta)
            states[live[item.database].content_digest()] = (
                live[item.database],
                keys,
                item.database,
            )

    pool = SolverPool()
    for name, (database, keys) in registry.items():
        pool.register(name, database, keys)
    report = pool.run_stream(stream)

    historical = [
        result for result in report.results if result.job.as_of is not None
    ]
    assert historical, "the workload must contain time-travel jobs"
    checked = 0
    for result in historical:
        reference = result.job.as_of
        if isinstance(reference, int):
            continue  # chain-index refs are pinned by tests/test_time_travel.py
        ancestor, keys, name = states[reference]
        # Register under the *same* name at the *same* stream index so the
        # derived per-job seeds match — "bit-identical" includes the
        # randomised estimators.
        fresh = SolverPool()
        fresh.register(name, Database(ancestor.facts()), keys)
        expected = fresh.run_job(
            replace(result.job, as_of=None), index=result.index
        )
        assert (result.satisfying, result.total, result.method) == (
            expected.satisfying,
            expected.total,
            expected.method,
        ), f"time travel diverged for {result.job.label!r}"
        checked += 1
    assert checked > 0

    # The server path is bit-identical to the sequential pool on the
    # same stream, time-travel jobs included.
    served = serve_stream(registry, stream, shards=2, queue_limit=8)
    assert served.counts() == report.counts()


# --------------------------------------------------------------------- #
# warm-cache time travel vs from-scratch re-registration
# --------------------------------------------------------------------- #
@pytest.mark.smoke
def test_warm_time_travel_beats_fresh_registration(tmp_path):
    """as_of on a warm store ≥2× over re-registering the ancestor cold."""
    database, keys = make_database(seed=21)
    jobs = anchored_jobs("live")

    pool = SolverPool(persist_dir=tmp_path / "store")
    pool.register("live", database, keys)
    pool.run(jobs)  # the ancestor's selectors/decomposition go to disk
    ancestor_digest = pool.snapshot_token("live")[0]

    pool.apply_delta("live", small_s_delta(database))
    pool.run(jobs)  # steady state against the new head

    # The old way: "as of yesterday" means registering yesterday's
    # database from scratch — every selector and the decomposition are
    # recomputed.
    fresh = SolverPool()
    fresh.register("ancestor", Database(database.facts()), keys)
    started = time.perf_counter()
    cold_report = fresh.run(anchored_jobs("ancestor"))
    cold_elapsed = time.perf_counter() - started

    # The new way: the same counts through the lineage and the warm store.
    historical_jobs = anchored_jobs("live", as_of=ancestor_digest)
    before_selectors = pool.selector_recomputations
    before_decompositions = pool.decomposition_recomputations
    started = time.perf_counter()
    warm_report = pool.run(historical_jobs)
    warm_elapsed = time.perf_counter() - started

    # Bit-identical counts and zero recomputation, on any machine.
    assert [r.count_fields()[1:] for r in warm_report.results] == [
        r.count_fields()[1:] for r in cold_report.results
    ]
    assert pool.selector_recomputations == before_selectors
    assert pool.decomposition_recomputations == before_decompositions

    if cold_elapsed < _MIN_MEASURABLE_BASELINE:
        pytest.skip(
            f"fresh registration took {cold_elapsed * 1000:.1f}ms — too fast "
            f"to measure a reliable speedup on this machine"
        )
    speedup = cold_elapsed / warm_elapsed
    assert speedup >= 2.0, (
        f"expected warm time travel to beat fresh registration ≥2×, got "
        f"{speedup:.2f}x (fresh {cold_elapsed:.3f}s vs warm {warm_elapsed:.3f}s)"
    )


@pytest.mark.parametrize("warm", [False, True])
def test_time_travel_throughput(benchmark, tmp_path, warm):
    """Recorded cost of historical counts, cold store vs warm store."""
    database, keys = make_database(blocks=400, seed=5, domain=200)
    directory = tmp_path / ("warm" if warm else "cold")
    pool = SolverPool(persist_dir=directory)
    pool.register("live", database, keys)
    if warm:
        pool.run(anchored_jobs("live", queries=4))
    ancestor = pool.snapshot_token("live")[0]

    pool.apply_delta("live", small_s_delta(database))
    jobs = anchored_jobs("live", queries=4, as_of=ancestor)

    def serve_historical():
        # A fresh pool each round: the steady state of a *restarted*
        # service answering about the past.
        replay = SolverPool(persist_dir=directory)
        replay.register(
            "live", pool.lookup("live")[0], pool.lookup("live")[1]
        )
        return replay.run(jobs)

    # One round only: a replay against the "cold" directory warms it as a
    # side effect, so repeated rounds would not measure a cold store.
    report = benchmark.pedantic(serve_historical, rounds=1)
    benchmark.extra_info["warm_store"] = warm
    benchmark.extra_info["jobs_per_second"] = round(report.jobs_per_second, 1)
