"""E14 — incremental updates: deltas vs full re-registration.

Claims exercised:

* **Incremental block maintenance** — updating a
  :class:`~repro.db.blocks.BlockDecomposition` through
  :meth:`~repro.db.blocks.BlockDecomposition.apply_delta` touches only the
  blocks the delta names, and is equal (block for block) to a full rebuild
  of the decomposition of the updated database.
* **Delta invalidation beats re-registration** — for a warm
  :class:`~repro.engine.SolverPool` serving queries over two relations, a
  delta touching a handful of blocks of *one* relation leaves every other
  selector entry warm (migrated, not recomputed).  Re-answering the
  workload after :meth:`SolverPool.apply_delta` must be ≥2× faster than
  the old path — full re-registration, which recomputes the decomposition
  and every selector from scratch.  Counts stay bit-identical between the
  two paths.  The assertion self-skips when the full path is too fast to
  time reliably (tiny/noisy machines).
* **Warm restarts** — a pool pointed at a persistent selector cache
  answers an unchanged workload after a restart with zero selector
  recomputations.
"""

import time

import pytest

from repro.db import BlockDecomposition, Database, Delta, Fact
from repro.engine import CountJob, SolverPool
from repro.workloads import InconsistentDatabaseSpec, random_inconsistent_database

_RELATIONS = {"R": 3, "S": 3}

#: Below this full-path baseline the speedup ratio is timer noise, not
#: signal; the perf assertion self-skips (correctness is still asserted).
_MIN_MEASURABLE_BASELINE = 0.02


def make_database(blocks=300, seed=0):
    spec = InconsistentDatabaseSpec(
        relations=_RELATIONS,
        blocks_per_relation=blocks,
        conflict_rate=0.4,
        max_block_size=4,
        domain_size=150,
    )
    return random_inconsistent_database(spec, seed=seed)


def anchored_jobs(name, r_queries=6, s_queries=2):
    """Exact certificate jobs over a single relation each.

    Single-relation queries are what makes delta invalidation visible: an
    S-only delta leaves every R-query's selector entry migratable.  The
    R-heavy mix mirrors the serving regime the tentpole targets — a delta
    touches the blocks of a *minority* of the query load, so dropping only
    those entries (instead of the whole name) saves most of the work.
    """
    jobs = []
    for relation, count in (("R", r_queries), ("S", s_queries)):
        for index in range(count):
            jobs.append(
                CountJob(
                    database=name,
                    query=(
                        f"EXISTS x, y, z, w. "
                        f"({relation}(x, 'v{index}', y) AND {relation}(z, 'v{index + 1}', w))"
                    ),
                    method="certificate",
                )
            )
    return jobs


def small_s_delta(database, blocks_touched=5):
    """Insert one conflicting fact into each of a few existing S blocks."""
    existing = sorted(database.relation("S"))
    inserted, seen = [], set()
    for item in existing:
        key = item.arguments[0]
        if key in seen:
            continue
        seen.add(key)
        inserted.append(Fact("S", (key, f"fresh{len(seen)}", "payload")))
        if len(inserted) == blocks_touched:
            break
    return Delta(inserted=inserted)


# --------------------------------------------------------------------- #
# incremental block maintenance
# --------------------------------------------------------------------- #
@pytest.mark.smoke
def test_incremental_decomposition_update(benchmark):
    """apply_delta on the decomposition; equality with a full rebuild."""
    database, keys = make_database(blocks=300, seed=7)
    database.freeze()
    decomposition = BlockDecomposition(database, keys)
    delta = small_s_delta(database)
    updated_database = database.apply_delta(delta)

    incremental = benchmark(decomposition.apply_delta, delta, updated_database)

    started = time.perf_counter()
    full = BlockDecomposition(updated_database, keys)
    benchmark.extra_info["full_rebuild_seconds"] = round(
        time.perf_counter() - started, 4
    )
    assert incremental.blocks == full.blocks
    assert incremental.total_repairs() == full.total_repairs()


# --------------------------------------------------------------------- #
# delta invalidation vs full re-registration
# --------------------------------------------------------------------- #
@pytest.mark.smoke
def test_incremental_update_beats_reregistration():
    """apply_delta + warm re-answer ≥2× over re-register + cold re-answer."""
    database, keys = make_database(blocks=300, seed=11)
    jobs = anchored_jobs("live")
    delta = small_s_delta(database)

    # The old path: a delta means a brand-new registration; everything is
    # recomputed (decomposition and all selector entries).
    cold_pool = SolverPool()
    cold_pool.register("live", database, keys)
    cold_pool.run(jobs)  # a warm serving pool...
    updated_database = database.apply_delta(delta)
    started = time.perf_counter()
    cold_pool.register("live", Database(updated_database.facts()), keys)
    cold_report = cold_pool.run(jobs)
    full_elapsed = time.perf_counter() - started

    # The new path: the same warm pool takes the delta in place.
    warm_pool = SolverPool()
    warm_pool.register("live", database, keys)
    warm_pool.run(jobs)
    started = time.perf_counter()
    update_report = warm_pool.apply_delta("live", delta)
    warm_report = warm_pool.run(jobs)
    incremental_elapsed = time.perf_counter() - started

    # Bit-identical results and block-level invalidation provenance first —
    # these must hold regardless of the machine.
    assert warm_report.counts() == cold_report.counts()
    assert update_report.selectors_migrated > 0
    assert update_report.selectors_dropped < len(jobs)

    if full_elapsed < _MIN_MEASURABLE_BASELINE:
        pytest.skip(
            f"full re-registration took {full_elapsed * 1000:.1f}ms — too fast "
            f"to measure a reliable speedup on this machine"
        )
    speedup = full_elapsed / incremental_elapsed
    assert speedup >= 2.0, (
        f"expected incremental update to beat full re-registration ≥2×, got "
        f"{speedup:.2f}x (full {full_elapsed:.3f}s vs incremental "
        f"{incremental_elapsed:.3f}s)"
    )


# --------------------------------------------------------------------- #
# warm restarts from the persistent cache
# --------------------------------------------------------------------- #
@pytest.mark.smoke
def test_persistent_cache_restart(tmp_path):
    """A restarted pool answers an unchanged workload with zero recomputes."""
    database, keys = make_database(blocks=120, seed=3)
    jobs = anchored_jobs("live")

    first = SolverPool(persist_dir=tmp_path / "selectors")
    first.register("live", database, keys)
    first_report = first.run(jobs)
    assert first.selector_recomputations == len(jobs)

    started = time.perf_counter()
    restarted = SolverPool(persist_dir=tmp_path / "selectors")
    restarted.register("live", database, keys)
    restart_report = restarted.run(jobs)
    restart_elapsed = time.perf_counter() - started

    assert restarted.selector_recomputations == 0
    assert restart_report.counts() == first_report.counts()
    assert all(
        "selectors-disk" in result.cache_hits for result in restart_report.results
    )
    assert restart_elapsed < 60  # sanity: warm restarts are never pathological
