"""E19 — elastic sharding: load-driven rebalancing with warm handoff.

Claims exercised:

* **Equivalence across handoffs** — a zipf-skewed
  :func:`~repro.workloads.serve_workload` stream served through an
  elastic server stays **bit-identical** to a sequential
  :meth:`~repro.engine.SolverPool.run_stream`, with at least one live
  ownership handoff landing mid-stream.
* **Warm handoff** — moving a name between shards over a shared
  persistent store costs **zero** selector and **zero** decomposition
  recomputations on the destination: the handoff primes the
  decomposition through the store and selector entries read through
  lazily.
* **Rebalanced throughput** — on parallel hardware, a skewed stream
  through a statically-placed fleet leaves most shards idle; after
  ``add_shard`` + greedy rebalancing the same stream's throughput closes
  most of the gap to a uniform-stream baseline on the same fleet.  The
  assertions need real cores and are skipped on smaller machines (the
  measurements still run and are recorded).
"""

import asyncio
import os
import random
import time

import pytest

from repro.engine import CountJob, SolverPool
from repro.server import AsyncServer, GreedyRebalancer
from repro.workloads import (
    InconsistentDatabaseSpec,
    random_inconsistent_database,
    serve_workload,
)

_RELATIONS = {"R": 3, "S": 3}


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def make_databases(count=4, blocks=12):
    """Small databases + sampling-heavy jobs: per-job CPU work dominates."""
    registry = {}
    for index in range(count):
        spec = InconsistentDatabaseSpec(
            relations=_RELATIONS,
            blocks_per_relation=blocks,
            conflict_rate=0.4,
            max_block_size=4,
            domain_size=200,
        )
        registry[f"db-{index}"] = random_inconsistent_database(spec, seed=index)
    return registry


def skewed_jobs(jobs=16, databases=4, zipf=2.0, seed=0):
    """Sampling-heavy estimator jobs, zipf-distributed over the databases.

    The same rank-``r`` popularity law as ``serve_workload(zipf=...)``,
    applied to compute-heavy jobs so shard busy-time — not dispatch
    bookkeeping — dominates the load signal.
    """
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** zipf for rank in range(databases)]
    total = sum(weights)
    stream = []
    for index in range(jobs):
        draw, rank = rng.random() * total, 0
        while rank < databases - 1 and draw > weights[rank]:
            draw -= weights[rank]
            rank += 1
        anchor = f"v{index % 10}"
        stream.append(
            CountJob(
                database=f"db-{rank}",
                query=(
                    f"EXISTS x, y, z, w. "
                    f"(R(x, '{anchor}', y) AND S(z, '{anchor}', w))"
                ),
                method=("fpras", "karp-luby")[index % 2],
                epsilon=0.05,
                delta=0.05,
                seed=index,
            )
        )
    return stream


def uniform_jobs(jobs=16, databases=4):
    """The ideal-balance control: the same jobs, round-robin placed."""
    stream = skewed_jobs(jobs=jobs, databases=databases)
    return [
        CountJob(
            database=f"db-{index % databases}",
            query=job.query,
            method=job.method,
            epsilon=job.epsilon,
            delta=job.delta,
            seed=job.seed,
        )
        for index, job in enumerate(stream)
    ]


# --------------------------------------------------------------------- #
# equivalence across a mid-stream handoff (runs on any hardware)
# --------------------------------------------------------------------- #
@pytest.mark.smoke
def test_rebalanced_stream_is_bit_identical_across_handoffs():
    """A zipf stream with live mid-stream handoffs matches sequential."""
    registry, stream = serve_workload(
        jobs=18, databases=3, update_every=5, seed=19, zipf=2.0
    )

    async def elastic():
        server = AsyncServer(shards=2, queue_limit=4)
        for name, (database, keys) in registry.items():
            server.register(name, database, keys)
        results = []
        async with server:
            third, names = len(stream) // 3, sorted(registry)
            for index, item in enumerate(stream):
                if index in (third, 2 * third):
                    # Bounce the hottest name between the shards while
                    # its own jobs are in the stream: the handoff must
                    # quiesce without perturbing a single count.
                    source = server.shard_of(names[0])
                    target = next(
                        s for s in server.shard_ids if s != source
                    )
                    assert await server.move(names[0], target)
                results.append(await server.submit(item, index))
            assert server.moves_completed >= 2
        return results

    moved = asyncio.run(elastic())

    pool = SolverPool()
    for name, (database, keys) in registry.items():
        pool.register(name, database, keys)
    sequential = pool.run_stream(stream)
    expected = {
        result.index: result.count_fields() for result in sequential.results
    }
    got = {
        result.index: result.count_fields()
        for result in moved
        if hasattr(result, "satisfying")
    }
    assert got == expected


# --------------------------------------------------------------------- #
# warm handoff over the shared persistent store
# --------------------------------------------------------------------- #
@pytest.mark.smoke
def test_handoff_over_a_warm_store_recomputes_nothing(tmp_path):
    """Moving a name costs zero selector/decomposition recomputations."""
    registry = make_databases(count=2, blocks=30)
    jobs = [
        CountJob(
            database="db-0",
            query=(
                f"EXISTS x, y, z, w. "
                f"(R(x, 'v{index % 4}', y) AND S(z, 'v{index % 4}', w))"
            ),
            method="certificate",
        )
        for index in range(8)
    ]

    async def run():
        server = AsyncServer(
            shards=2, queue_limit=8, persist_dir=tmp_path / "cache"
        )
        for name, (database, keys) in registry.items():
            server.register(name, database, keys)
        async with server:
            before = [
                await server.submit(job, index)
                for index, job in enumerate(jobs)
            ]
            source = server.shard_of("db-0")
            target = next(s for s in server.shard_ids if s != source)
            assert await server.move("db-0", target)
            after = [
                await server.submit(job, index + len(jobs))
                for index, job in enumerate(jobs)
            ]
            stats = await server.stats()
            return before, after, stats, target

    before, after, stats, target = asyncio.run(run())
    destination = stats["shards"][str(target)]
    assert destination["selector_recomputations"] == 0
    assert destination["decomposition_recomputations"] == 0
    assert destination["cache"]["handoff"]["warm_decompositions"] == 1
    for ours, theirs in zip(before, after):
        assert ours.count_fields()[1:] == theirs.count_fields()[1:]


# --------------------------------------------------------------------- #
# rebalanced throughput under skew (needs real cores)
# --------------------------------------------------------------------- #
@pytest.mark.smoke
def test_rebalancing_recovers_skewed_throughput():
    """Scale-out: rebalancing after ``add_shard`` closes the skew gap.

    The scenario every elastic system is judged on: a fleet that *grew*
    (``add_shard``) but whose ownership did not move ("static") serves
    the whole skewed stream from its original shard; greedy rebalancing
    spreads the same names by observed busy-time.  With enough databases
    and a mild zipf exponent the per-name loads pack well, so the
    rebalanced stream must land within 1.5x of a uniform-stream baseline
    on the same fleet — while the static placement pays the full
    serialisation gap (asserted at >=2.5x on a 4-shard fleet, where the
    ideal gap is ~4x; directionally on 2 shards).
    """
    cores = _available_cores()
    fleet = min(4, max(2, cores))
    databases = 8
    registry = make_databases(count=databases, blocks=10)
    skewed = skewed_jobs(jobs=16, databases=databases, zipf=0.8)
    uniform = uniform_jobs(jobs=16, databases=databases)

    async def timed(stream, grow, rebalance):
        server = AsyncServer(shards=fleet if not grow else 1, queue_limit=32)
        for name, (database, keys) in registry.items():
            server.register(name, database, keys)
        async with server:
            if grow:
                for _ in range(fleet - 1):
                    server.add_shard()
            await server.run_stream(stream)  # warm caches + load signal
            if rebalance:
                policy = GreedyRebalancer(max_imbalance=1.1)
                while await server.rebalance(policy):
                    pass
            begun = time.perf_counter()
            report = await server.run_stream(stream)
            return report, time.perf_counter() - begun, server.moves_completed

    # Static: the fleet grew, ownership never moved — everything serial.
    _, static_elapsed, _ = asyncio.run(
        timed(skewed, grow=True, rebalance=False)
    )
    # Rebalanced: the same grown fleet after greedy load-driven moves.
    _, elastic_elapsed, moves = asyncio.run(
        timed(skewed, grow=True, rebalance=True)
    )
    # Uniform baseline: the ideal-balance stream on an equal fleet.
    _, uniform_elapsed, _ = asyncio.run(
        timed(uniform, grow=False, rebalance=False)
    )

    if cores < 2:
        pytest.skip(
            f"only {cores} core(s) available; rebalancing gains are not "
            f"measurable (static {static_elapsed:.2f}s, rebalanced "
            f"{elastic_elapsed:.2f}s, uniform {uniform_elapsed:.2f}s)"
        )
    assert moves >= 1, "the skewed stream must trigger at least one move"
    # The rebalanced skewed stream lands within 1.5x of the uniform ideal.
    assert elastic_elapsed <= 1.5 * uniform_elapsed, (
        f"rebalanced {elastic_elapsed:.2f}s vs uniform "
        f"{uniform_elapsed:.2f}s on {fleet} shards / {cores} cores"
    )
    if fleet >= 4:
        assert static_elapsed >= 2.5 * uniform_elapsed, (
            f"static {static_elapsed:.2f}s vs uniform {uniform_elapsed:.2f}s"
        )
    else:
        assert elastic_elapsed < static_elapsed, (
            f"rebalanced {elastic_elapsed:.2f}s should beat static "
            f"{static_elapsed:.2f}s"
        )
