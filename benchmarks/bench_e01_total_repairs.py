"""E1 — total repair counting is polynomial (FP).

Claim exercised: computing ``|rep(D, Σ)|`` is easy — a single pass building
the block decomposition and a product of block sizes — so the time grows
linearly with the database, even though the *value* grows astronomically.
"""

import pytest

from repro.db import BlockDecomposition
from repro.repairs import count_total_repairs

from conftest import make_database

SIZES = [100, 400, 1600]


@pytest.mark.smoke
@pytest.mark.parametrize("blocks", SIZES)
def test_total_repair_counting_scales_linearly(benchmark, blocks):
    database, keys = make_database(blocks=blocks, seed=1)
    result = benchmark(count_total_repairs, database, keys)
    benchmark.extra_info["facts"] = len(database)
    benchmark.extra_info["repairs_digits"] = len(str(result))
    assert result >= 1


@pytest.mark.parametrize("blocks", SIZES)
def test_block_decomposition_construction(benchmark, blocks):
    database, keys = make_database(blocks=blocks, seed=2)
    decomposition = benchmark(BlockDecomposition, database, keys)
    benchmark.extra_info["blocks"] = len(decomposition)
    assert len(decomposition) == 2 * blocks
