"""E21 — self-tuning storage: cost-model checkpoints beat every fixed K.

E17 showed checkpoints every K deltas make deep ``as_of`` reads
O(distance to checkpoint) — but K is a knob nobody knows how to set.
K=1 answers everything from a snapshot yet hoards a snapshot per delta;
K=∞ stores nothing and replays whole chains; intermediate K's pay replay
*and* bytes at positions nobody reads.  This PR replaces the knob with a
cost model: an :class:`AdaptiveCheckpointPolicy` observes reads (decayed
frequency × replay distance × measured per-step cost) and materialises
checkpoints only where the modeled saving exceeds the byte cost, while
hit-rate-per-byte water-filling splits one global byte budget between
entry kinds, so a hoard of cold snapshots is what a budget squeezes out.

Claims exercised:

* **Self-tuned latency wins** — on a mixed workload (six hot deep
  positions plus near-head reads) over a 48-delta chain, with every
  store squeezed to the *same* global byte budget (what the self-tuned
  store actually uses), the total cold ``as_of`` *resolution* latency of
  the self-tuned store beats every fixed interval K ∈ {1, 4, 16, ∞}:
  the policy put snapshots exactly at the hot deep positions (distance
  0, one load, zero replay) while K=1's hoard is cut to a handful of
  snapshots by the budget, K=4 pays an off-grid load-plus-replay at
  every hot position, and K=16/K=∞ replay long tails.  Only the
  ``as_of`` resolution is timed — the counting on top is identical
  under every layout.  The perf assertion self-skips when the K=∞
  baseline is too fast to time reliably; correctness is asserted
  regardless.
* **Zero recomputation warm** — the self-tuned measurement run performs
  zero selector and zero decomposition recomputations: budget GC kept
  the small, hot per-token entries and only squeezed cold snapshots.
* **Bit-identical counts** — every store layout returns identical counts
  for the identical job list (checkpoint placement and GC change the
  cost of a count, never its value).
"""

import time

import pytest

from repro.engine import CountJob, SolverPool
from repro.store import AdaptiveCheckpointPolicy
from repro.workloads import InconsistentDatabaseSpec, random_inconsistent_database

_RELATIONS = {"R": 3, "S": 3}

#: Chain length and the fixed intervals the self-tuned store must beat.
_DELTAS = 48
_FIXED_INTERVALS = (1, 4, 16, None)  # None = no checkpoints (K = ∞)

#: The mixed workload: hot deep chain positions (two deltas off K=4's
#: grid, so no fixed interval lands a checkpoint exactly on them) plus
#: near-head reads that no policy should waste a snapshot on.
_DEEP_SEQUENCES = (6, 14, 22, 30, 38, 46)
_RECENT_SEQUENCES = (_DELTAS - 1, _DELTAS - 2, _DELTAS - 3)

#: Below this K=∞ deep-replay baseline the latency comparison is timer
#: noise, not signal; the perf assertion self-skips.
_MIN_MEASURABLE_BASELINE = 0.02


def make_database(blocks=2000, seed=21, domain=1000):
    spec = InconsistentDatabaseSpec(
        relations=_RELATIONS,
        blocks_per_relation=blocks,
        conflict_rate=0.4,
        max_block_size=4,
        domain_size=domain,
    )
    return random_inconsistent_database(spec, seed=seed)


def wide_delta(step, edits=12):
    """An insert-only delta touching ``edits`` fresh R blocks."""
    from repro.db import Delta, Fact

    return Delta(
        inserted=[
            Fact("R", (f"zz_step{step:03d}_{offset:02d}", f"step{step}", "p"))
            for offset in range(edits)
        ]
    )


def mixed_jobs(digests, queries=2):
    """Certificate jobs anchored at every hot deep and near-head digest."""
    jobs = []
    sequences = tuple(_DEEP_SEQUENCES) + tuple(_RECENT_SEQUENCES)
    for position, sequence in enumerate(sequences):
        for index in range(queries):
            relation = ("R", "S")[(position + index) % 2]
            jobs.append(
                CountJob(
                    database="live",
                    query=f"EXISTS x, y. {relation}(x, 'v{index}', y)",
                    method="certificate",
                    as_of=digests[sequence],
                )
            )
    return jobs


def _build_history(directory, database, keys, checkpoint_every):
    """Record the 48-delta chain, cutting fixed checkpoints while building."""
    pool = SolverPool(persist_dir=directory, checkpoint_every=checkpoint_every)
    pool.register("live", database, keys)
    digests = [pool.snapshot_token("live")[0]]
    for step in range(_DELTAS):
        pool.apply_delta("live", wide_delta(step))
        digests.append(pool.snapshot_token("live")[0])
    return pool, digests


def _reopen(directory, source_pool, keys, **kwargs):
    """A fresh pool over a built store — reads actually replay."""
    pool = SolverPool(persist_dir=directory, **kwargs)
    pool.register("live", source_pool.lookup("live")[0], keys)
    return pool


def _disk_bytes(pool):
    return sum(
        layer["bytes"]
        for name, layer in pool.cache_stats().items()
        if name.endswith("-disk")
    )


@pytest.mark.smoke
def test_self_tuned_store_beats_every_fixed_interval(tmp_path):
    """Equal byte budget, mixed workload: the cost model wins end to end."""
    database, keys = make_database()
    configs = {f"K{every}" if every else "Kinf": every for every in _FIXED_INTERVALS}

    built = {}
    for label, every in configs.items():
        built[label] = _build_history(
            tmp_path / label, database, keys, checkpoint_every=every
        )
    built["tuned"] = _build_history(
        tmp_path / "tuned", database, keys, checkpoint_every=None
    )
    digests = built["tuned"][1]
    for label, (_, chain_digests) in built.items():
        assert chain_digests == digests  # same deterministic chain everywhere
    jobs = mixed_jobs(digests)

    # Observation passes: two restarted pools per store run the mixed
    # workload — the first cold (the self-tuned store's policy watches
    # the replays and cuts checkpoints at the hot deep positions), the
    # second warm, so every per-token disk entry the workload relies on
    # has a recorded *hit*, not just a store.
    first = _reopen(
        tmp_path / "tuned",
        built["tuned"][0],
        keys,
        checkpoint_policy=AdaptiveCheckpointPolicy(byte_cost=0.0, min_distance=4),
    )
    first.run(jobs)
    placed = {record.sequence for record in first.checkpoints("live")}
    assert placed == set(_DEEP_SEQUENCES) - {46}  # 46 is 2 from the head
    observers = {}
    for label in list(configs) + ["tuned"]:
        _reopen(tmp_path / label, built[label][0], keys).run(jobs)
        observers[label] = _reopen(tmp_path / label, built[label][0], keys)
        observers[label].run(jobs)

    # One global byte budget for every store: exactly what the self-tuned
    # store chose to use.  Hit-rate-per-byte water-filling keeps the
    # small hot selector/decomposition entries everywhere and squeezes
    # cold snapshots — K=1's 48-snapshot hoard most of all.
    budget = _disk_bytes(observers["tuned"]) + 1
    snapshots_kept = {}
    for label, observer in observers.items():
        observer.collect_garbage(max_bytes=budget)
        snapshots_kept[label] = observer.cache_stats()["snapshots-disk"]["entries"]
        assert _disk_bytes(observer) <= budget, label
    assert snapshots_kept["tuned"] == len(placed)  # the budget fits the policy
    assert snapshots_kept["K1"] < _DELTAS  # the hoard did not survive

    # Measurement pass: a restarted pool per store — cold memory, warm
    # disk, no further GC — resolves every ``as_of`` position in the
    # workload.  Only the resolution is timed: the counting work on top
    # is identical under every layout and would just add noise.
    elapsed = {}
    reports = {}
    sequences = tuple(_DEEP_SEQUENCES) + tuple(_RECENT_SEQUENCES)
    for label in list(configs) + ["tuned"]:
        pool = _reopen(tmp_path / label, built[label][0], keys)
        started = time.perf_counter()
        for sequence in sequences:
            pool.materialise("live", digests[sequence])
        elapsed[label] = time.perf_counter() - started
        reports[label] = pool.run(jobs)
        if label == "tuned":
            # Budget GC never cost the hot path a recomputation.
            assert pool.selector_recomputations == 0
            assert pool.decomposition_recomputations == 0

    # Bit-identical counts under every layout, on any machine.
    reference = [r.count_fields()[1:] for r in reports["Kinf"].results]
    for label, report in reports.items():
        assert [r.count_fields()[1:] for r in report.results] == reference, label

    if elapsed["Kinf"] < _MIN_MEASURABLE_BASELINE:
        pytest.skip(
            f"K=∞ replay took {elapsed['Kinf'] * 1000:.1f}ms — too fast to "
            f"measure a reliable comparison on this machine"
        )
    losers = {label: elapsed[label] for label in configs}
    slowest = max(losers, key=losers.get)
    assert all(elapsed["tuned"] < cost for cost in losers.values()), (
        f"expected the self-tuned store to beat every fixed interval, got "
        f"tuned {elapsed['tuned']:.3f}s vs "
        + ", ".join(f"{label} {cost:.3f}s" for label, cost in sorted(losers.items()))
        + f" (slowest {slowest})"
    )


@pytest.mark.parametrize("tuned", [False, True])
def test_mixed_workload_throughput(benchmark, tmp_path, tuned):
    """Recorded cost of the mixed workload, fixed K=16 vs self-tuned."""
    database, keys = make_database(blocks=400, seed=5, domain=200)
    directory = tmp_path / ("tuned" if tuned else "fixed")
    pool, digests = _build_history(
        directory, database, keys, checkpoint_every=None if tuned else 16
    )
    jobs = mixed_jobs(digests)
    if tuned:
        observer = _reopen(
            directory,
            pool,
            keys,
            checkpoint_policy=AdaptiveCheckpointPolicy(byte_cost=0.0, min_distance=4),
        )
        observer.run(jobs)

    def serve_mixed_workload():
        replay = _reopen(directory, pool, keys)
        return replay.run(jobs)

    report = benchmark.pedantic(serve_mixed_workload, rounds=3)
    benchmark.extra_info["self_tuned"] = tuned
    benchmark.extra_info["jobs_per_second"] = round(report.jobs_per_second, 1)
