"""E9 — Theorem 7.1: #DisjPoskDNF exact, brute force and FPRAS.

Claims exercised: the compactor-based exact counter matches the brute-force
oracle (asserted where the oracle is feasible), scales far beyond it, and
the Λ[k] FPRAS estimates it within ε.
"""

import pytest

from repro.approx import LambdaFPRAS
from repro.problems import DisjointPositiveDNFCompactor, count_disjoint_positive_dnf
from repro.workloads import random_disjoint_positive_dnf

SMALL = [(6, 3, 8, 2)]
LARGE = [(40, 4, 18, 2), (60, 4, 16, 3)]


@pytest.mark.parametrize("parts,part_size,clauses,width", SMALL)
def test_bruteforce_oracle_small(benchmark, parts, part_size, clauses, width):
    formula = random_disjoint_positive_dnf(parts, part_size, clauses, width, seed=1)
    count = benchmark(formula.count_bruteforce)
    assert count == count_disjoint_positive_dnf(formula)


@pytest.mark.parametrize("parts,part_size,clauses,width", SMALL + LARGE)
def test_exact_union_of_boxes(benchmark, parts, part_size, clauses, width):
    formula = random_disjoint_positive_dnf(parts, part_size, clauses, width, seed=2)
    count = benchmark(count_disjoint_positive_dnf, formula)
    benchmark.extra_info["parts"] = parts
    benchmark.extra_info["count"] = count
    assert 0 <= count <= formula.total_p_assignments()


@pytest.mark.parametrize("parts,part_size,clauses,width", LARGE)
def test_fpras_estimate(benchmark, parts, part_size, clauses, width):
    formula = random_disjoint_positive_dnf(parts, part_size, clauses, width, seed=3)
    exact = count_disjoint_positive_dnf(formula)
    scheme = LambdaFPRAS(DisjointPositiveDNFCompactor(k=width), max_samples=50_000)
    result = benchmark(scheme.estimate, formula, 0.2, 0.1, rng=4)
    benchmark.extra_info["exact"] = exact
    benchmark.extra_info["estimate"] = round(result.estimate, 1)
    if exact and not result.capped:
        assert abs(result.estimate - exact) <= 0.6 * exact
