"""E8 — the Theorem 5.1 hardness reduction, executed.

Claim exercised: for a compactor-defined function (here: #DisjPoskDNF
compactors of width k), the database ``D_x`` built by the reduction
satisfies ``#CQA(Q_k, Σ_k)(D_x) = unfold_M(x)`` — asserted on every run —
and the reduction itself is cheap (its cost is dominated by listing the
compactor's certificates and domains).
"""

import pytest

from repro.problems import DisjointPositiveDNFCompactor
from repro.reductions import lambda_to_cqa
from repro.repairs import count_repairs_satisfying
from repro.workloads import random_disjoint_positive_dnf

CONFIGURATIONS = [(6, 3, 8, 1), (8, 3, 10, 2), (8, 3, 10, 3)]


@pytest.mark.parametrize("parts,part_size,clauses,width", CONFIGURATIONS)
def test_reduction_construction(benchmark, parts, part_size, clauses, width):
    formula = random_disjoint_positive_dnf(parts, part_size, clauses, width, seed=width)
    compactor = DisjointPositiveDNFCompactor(k=width)
    reduction = benchmark(lambda_to_cqa, compactor, formula)
    benchmark.extra_info["k"] = width
    benchmark.extra_info["facts"] = len(reduction.database)


@pytest.mark.parametrize("parts,part_size,clauses,width", CONFIGURATIONS)
def test_count_on_the_reduced_instance_matches_unfold(benchmark, parts, part_size, clauses, width):
    formula = random_disjoint_positive_dnf(parts, part_size, clauses, width, seed=width)
    compactor = DisjointPositiveDNFCompactor(k=width)
    reduction = lambda_to_cqa(compactor, formula)
    expected = compactor.unfold_count(formula)

    report = benchmark(
        count_repairs_satisfying, reduction.database, reduction.keys, reduction.query
    )
    benchmark.extra_info["k"] = width
    benchmark.extra_info["unfold"] = expected
    assert report.satisfying == expected
