"""E4 — Algorithm 1 ≡ Algorithm 2: span of the transducer = unfold of the compactor.

Claim exercised: the guess–check–expand transducer (which materialises the
distinct accepted outputs, i.e. the entailing repairs) and the compactor
(which counts them through the union-of-boxes engine without materialising
anything) compute the same number, at very different costs.  This is the
executable content of the Λ ⊆ SpanL direction of Theorem 4.3 and of the
membership proof of Theorem 5.1.
"""

import pytest

from repro.lams import CQACompactor, GuessCheckExpandTransducer
from conftest import join_query, make_database


def _setup(blocks, seed):
    database, keys = make_database(blocks=blocks, conflict_rate=0.6, max_block=3, seed=seed)
    return database, keys, join_query(2)


@pytest.mark.parametrize("blocks", [4, 6])
def test_transducer_span_materialised(benchmark, blocks):
    database, keys, query = _setup(blocks, seed=6)
    compactor = CQACompactor(query, keys)
    transducer = GuessCheckExpandTransducer(compactor)
    span = benchmark(transducer.span, database)
    assert span == compactor.unfold_count(database)
    benchmark.extra_info["span"] = span


@pytest.mark.parametrize("blocks", [4, 6, 200])
def test_compactor_unfold_count(benchmark, blocks):
    database, keys, query = _setup(blocks, seed=6)
    compactor = CQACompactor(query, keys)
    count = benchmark(compactor.unfold_count, database)
    benchmark.extra_info["count"] = count
    assert count >= 0
