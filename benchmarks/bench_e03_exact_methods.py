"""E3 — exact counting: certificate expansion vs naive repair enumeration.

Claim exercised: the naive counter's cost is the total number of repairs
(exponential in the number of conflicting blocks), while the
certificate-based union-of-boxes counter only pays for the blocks the
query's certificates actually touch.  The expected shape is a crossover at
tiny databases followed by an exponential blow-up of the naive method —
which is why it is benchmarked only on the small configuration.
"""

import pytest

from repro.repairs import (
    count_repairs_satisfying_certificates,
    count_repairs_satisfying_naive,
)
from conftest import join_query, make_database

#: Small instances (few conflicting blocks) where the naive method is feasible.
SMALL = [3, 4, 5]
#: Larger instances where only the certificate method is run.
LARGE = [50, 200, 600]


def _query(keys, seed=11):
    return join_query(2)


@pytest.mark.parametrize("blocks", SMALL)
def test_naive_enumeration_small(benchmark, blocks):
    database, keys = make_database(blocks=blocks, conflict_rate=0.7, max_block=3, seed=4)
    query = _query(keys)
    count = benchmark(count_repairs_satisfying_naive, database, keys, query)
    benchmark.extra_info["blocks"] = 2 * blocks
    benchmark.extra_info["count"] = count


@pytest.mark.parametrize("blocks", SMALL)
def test_certificate_counter_small(benchmark, blocks):
    database, keys = make_database(blocks=blocks, conflict_rate=0.7, max_block=3, seed=4)
    query = _query(keys)
    count, certificates = benchmark(
        count_repairs_satisfying_certificates, database, keys, query
    )
    benchmark.extra_info["certificates"] = certificates
    # Cross-validate against the naive oracle on the small configurations.
    assert count == count_repairs_satisfying_naive(database, keys, query)


@pytest.mark.parametrize("blocks", LARGE)
def test_certificate_counter_large(benchmark, blocks):
    database, keys = make_database(blocks=blocks, conflict_rate=0.4, max_block=4, seed=5)
    query = _query(keys)
    count, certificates = benchmark(
        count_repairs_satisfying_certificates, database, keys, query
    )
    benchmark.extra_info["facts"] = len(database)
    benchmark.extra_info["certificates"] = certificates
    assert count >= 0
