"""Shared workloads for the benchmark suite (experiments E1-E12).

Each benchmark module corresponds to one experiment of DESIGN.md's
experiment index.  Workload sizes are chosen so the whole suite runs in a
few minutes on a laptop while still exhibiting the asymptotic shapes the
experiments are about (exponential vs polynomial, m^k scaling, etc.).
"""

from __future__ import annotations

import pytest

from repro.workloads import (
    InconsistentDatabaseSpec,
    employee_example,
    hr_analytics,
    random_inconsistent_database,
    sensor_fusion,
)


def make_database(blocks: int, conflict_rate: float = 0.4, max_block: int = 4, seed: int = 0):
    """A two-relation synthetic inconsistent database with ``blocks`` blocks per relation."""
    spec = InconsistentDatabaseSpec(
        relations={"R": 3, "S": 3},
        blocks_per_relation=blocks,
        conflict_rate=conflict_rate,
        max_block_size=max_block,
        domain_size=max(20, blocks // 2),
    )
    return random_inconsistent_database(spec, seed=seed)


def join_query(target_keywidth: int, anchor: str = "v3"):
    """A fixed Boolean join query with the requested keywidth over the R/S schema.

    The atoms are anchored on the constant ``anchor`` (a domain value the
    generators use), so the number of certificates — and therefore the
    support of the union-of-boxes computation — stays small and predictable
    while the repair space stays astronomically large.  This is the regime
    the paper's bounded-keywidth results are about; un-anchored joins over a
    small domain connect every block transitively and make *exact* counting
    (which is #P-hard in general) infeasible, which is precisely what E3
    demonstrates with the naive counter.
    """
    from repro.query import Atom, Variable, conjunctive_query

    extra = Variable("extra")
    atoms = [Atom("R", (Variable("a1"), anchor, extra))]
    if target_keywidth >= 2:
        atoms.append(Atom("S", (Variable("a2"), anchor, Variable("b2"))))
    if target_keywidth >= 3:
        atoms.append(Atom("R", (Variable("a3"), extra, Variable("b3"))))
    if target_keywidth >= 4:
        atoms.append(Atom("S", (Variable("a4"), extra, Variable("b4"))))
    return conjunctive_query(atoms[:target_keywidth], name=f"join-kw{target_keywidth}")


@pytest.fixture(scope="session")
def employee_scenario():
    return employee_example()


@pytest.fixture(scope="session")
def hr_scenario():
    return hr_analytics(employees=30)


@pytest.fixture(scope="session")
def sensor_scenario():
    return sensor_fusion(sensors=25)
