"""E17 — checkpoint compaction: deep time travel in O(distance to checkpoint).

PR 4 made any recorded ancestor reachable, but resolution replays the
delta chain from whatever snapshot the engine holds — the live head — so
a reference *deep* in a long chain costs O(chain length) delta
applications.  Checkpoint compaction (this PR) persists full snapshots
every K effective deltas; `Lineage.materialise` then replays from the
**nearest** checkpoint instead, making deep references O(distance to the
nearest checkpoint).

Claims exercised:

* **Compaction speedup** — on a chain of ≥64 deltas with checkpoints
  every 8, resolving the deepest reference (the chain origin, the far
  end from the live head) is **≥2×** faster than the pure replay a
  checkpoint-free store performs, with **zero** selector and **zero**
  decomposition recomputations on a warm store (the materialised
  ancestor's token hits the same content-addressed entries either way).
  The perf assertion self-skips when the pure-replay baseline is too
  fast to time reliably; correctness and zero-recomputation are asserted
  regardless.
* **Bit-identical counts** — the checkpointed path and the pure-replay
  path produce identical results (replay is digest-verified; a
  checkpoint can change the cost of a count, never its value).
* **Bounded replay** — the replay-distance cost model: with checkpoints
  every 8 the promised replay never exceeds 8 edges wherever the
  reference lands, while the checkpoint-free distance grows with depth.
"""

import time

import pytest

from repro.db import Database
from repro.engine import CountJob, SolverPool
from repro.workloads import InconsistentDatabaseSpec, random_inconsistent_database

_RELATIONS = {"R": 3, "S": 3}

#: Chain length (effective deltas) and compaction interval under test.
_DELTAS = 64
_EVERY = 8

#: Below this pure-replay baseline the speedup ratio is timer noise, not
#: signal; the perf assertion self-skips (correctness is still asserted).
_MIN_MEASURABLE_BASELINE = 0.02


def make_database(blocks=2000, seed=17, domain=1000):
    spec = InconsistentDatabaseSpec(
        relations=_RELATIONS,
        blocks_per_relation=blocks,
        conflict_rate=0.4,
        max_block_size=4,
        domain_size=domain,
    )
    return random_inconsistent_database(spec, seed=seed)


def wide_delta(step, edits=12):
    """An insert-only delta touching ``edits`` fresh R blocks.

    Inserts use step-unique keys, so every delta is effective and the
    chain's replay work grows linearly with its length — the regime
    compaction is for.
    """
    from repro.db import Delta, Fact

    return Delta(
        inserted=[
            Fact("R", (f"zz_step{step:03d}_{offset:02d}", f"step{step}", "p"))
            for offset in range(edits)
        ]
    )


def anchored_jobs(name, queries=6, as_of=None):
    """Cheap-to-count, expensive-to-prepare certificate jobs (as in E16)."""
    jobs = []
    for index in range(queries):
        relation = ("R", "S")[index % 2]
        jobs.append(
            CountJob(
                database=name,
                query=f"EXISTS x, y. {relation}(x, 'v{index}', y)",
                method="certificate",
                as_of=as_of,
            )
        )
    return jobs


def _build_history(directory, database, keys, checkpoint_every):
    """Register, warm the origin's entries, then record the delta chain."""
    pool = SolverPool(persist_dir=directory, checkpoint_every=checkpoint_every)
    pool.register("live", database, keys)
    pool.run(anchored_jobs("live"))  # origin selectors/decomposition -> disk
    origin_digest = pool.snapshot_token("live")[0]
    for step in range(_DELTAS):
        pool.apply_delta("live", wide_delta(step))
    return pool, origin_digest


@pytest.mark.smoke
def test_deep_as_of_with_checkpoints_beats_pure_origin_replay(tmp_path):
    """≥2× over pure replay on a 64-delta chain; zero recomputations."""
    database, keys = make_database()

    plain_pool, origin = _build_history(
        tmp_path / "plain", database, keys, checkpoint_every=None
    )
    ckpt_pool, ckpt_origin = _build_history(
        tmp_path / "compacted", database, keys, checkpoint_every=_EVERY
    )
    assert origin == ckpt_origin  # same deterministic chain in both stores
    assert len(ckpt_pool.checkpoints("live")) == _DELTAS // _EVERY

    jobs = anchored_jobs("live", as_of=origin)

    # Pure replay: a restarted checkpoint-free pool materialises the
    # origin by walking all 64 deltas back from the head.
    baseline = SolverPool(persist_dir=tmp_path / "plain")
    baseline.register("live", plain_pool.lookup("live")[0], keys)
    started = time.perf_counter()
    pure_report = baseline.run(jobs)
    pure_elapsed = time.perf_counter() - started

    # Compacted replay: a restarted checkpointed pool loads the snapshot
    # of the nearest checkpoint and replays at most 8 deltas.
    compacted = SolverPool(persist_dir=tmp_path / "compacted")
    compacted.register("live", ckpt_pool.lookup("live")[0], keys)
    started = time.perf_counter()
    ckpt_report = compacted.run(jobs)
    ckpt_elapsed = time.perf_counter() - started

    # Bit-identical counts and zero recomputation, on any machine.
    assert [r.count_fields()[1:] for r in ckpt_report.results] == [
        r.count_fields()[1:] for r in pure_report.results
    ]
    assert compacted.selector_recomputations == 0
    assert compacted.decomposition_recomputations == 0
    for result in ckpt_report.results:
        assert "selectors" not in result.cache_misses
        assert "decomposition" not in result.cache_misses

    if pure_elapsed < _MIN_MEASURABLE_BASELINE:
        pytest.skip(
            f"pure origin replay took {pure_elapsed * 1000:.1f}ms — too fast "
            f"to measure a reliable speedup on this machine"
        )
    speedup = pure_elapsed / ckpt_elapsed
    assert speedup >= 2.0, (
        f"expected checkpointed deep as_of to beat pure replay ≥2×, got "
        f"{speedup:.2f}x (pure {pure_elapsed:.3f}s vs "
        f"compacted {ckpt_elapsed:.3f}s)"
    )


@pytest.mark.smoke
def test_promised_replay_is_bounded_by_the_compaction_interval(tmp_path):
    """The cost model: replay distance ≤ K at every depth, vs O(depth)."""
    database, keys = make_database(blocks=200, domain=100)
    pool, _ = _build_history(
        tmp_path / "store", database, keys, checkpoint_every=_EVERY
    )
    chain = pool.lineage("live")
    head_digest = chain.head.digest
    loaders = {record.digest: (lambda: None) for record in chain}
    checkpointed = {record.digest for record in pool.checkpoints("live")}

    for depth, record in enumerate(reversed(chain.records)):
        plain = chain.replay_distance(head_digest, record.digest)
        compacted = chain.replay_distance(
            head_digest,
            record.digest,
            checkpoints={digest: loaders[digest] for digest in checkpointed},
        )
        assert plain == depth  # pure replay walks all the way back
        assert compacted <= min(depth, _EVERY // 2 + _EVERY % 2 + _EVERY)
        assert compacted <= _EVERY  # never further than one interval


@pytest.mark.parametrize("compacted", [False, True])
def test_deep_history_throughput(benchmark, tmp_path, compacted):
    """Recorded cost of serving the deepest ancestor, by store layout."""
    database, keys = make_database(blocks=400, seed=5, domain=200)
    directory = tmp_path / ("compacted" if compacted else "plain")
    pool, origin = _build_history(
        directory, database, keys, checkpoint_every=_EVERY if compacted else None
    )
    jobs = anchored_jobs("live", queries=4, as_of=origin)

    def serve_deep_history():
        replay = SolverPool(persist_dir=directory)
        replay.register("live", pool.lookup("live")[0], keys)
        return replay.run(jobs)

    report = benchmark.pedantic(serve_deep_history, rounds=3)
    benchmark.extra_info["compacted_store"] = compacted
    benchmark.extra_info["jobs_per_second"] = round(report.jobs_per_second, 1)
