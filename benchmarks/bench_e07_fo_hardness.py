"""E7 — Theorems 3.2/3.3: the 3SAT reduction and the cost of FO counting.

Claims exercised:

* the reduction is parsimonious — #CQA on the reduced database equals
  #3SAT of the source formula (asserted on every run), and
* counting for arbitrary FO queries has no certificate shortcut: the only
  exact route is repair enumeration, whose cost doubles with every added
  variable (the 2^n repair space).
"""

import pytest

from repro.problems import count_satisfying_assignments
from repro.reductions import sat_to_cqa
from repro.repairs import count_repairs_satisfying_naive
from repro.workloads import random_cnf

VARIABLE_COUNTS = [4, 6, 8]


@pytest.mark.parametrize("variables", VARIABLE_COUNTS)
def test_fo_counting_via_the_sat_reduction(benchmark, variables):
    formula = random_cnf(variables=variables, clauses=variables + 2, clause_width=3, seed=variables)
    reduction = sat_to_cqa(formula)
    expected = count_satisfying_assignments(formula)

    counted = benchmark(
        count_repairs_satisfying_naive, reduction.database, reduction.keys, reduction.query
    )
    benchmark.extra_info["variables"] = variables
    benchmark.extra_info["assignments"] = 2 ** variables
    benchmark.extra_info["count"] = counted
    assert counted == expected


@pytest.mark.parametrize("variables", VARIABLE_COUNTS)
def test_reduction_construction_is_cheap(benchmark, variables):
    formula = random_cnf(variables=variables, clauses=variables + 2, clause_width=3, seed=variables)
    reduction = benchmark(sat_to_cqa, formula)
    benchmark.extra_info["facts"] = len(reduction.database)
