"""E5 — the Theorem 6.2 FPRAS: accuracy and the m^k sample-size effect.

Claims exercised:

* the measured relative error stays within ε with frequency at least 1−δ
  (checked on instances whose exact count is known), and
* the prescribed sample size grows as ``m^k`` with the keywidth ``k``, which
  is the price of sampling from the natural sample space.
"""

import pytest

from repro.approx import CQAFpras, sample_size
from repro.repairs import count_repairs_satisfying
from conftest import join_query, make_database

EPSILONS = [0.5, 0.2, 0.1]


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_fpras_accuracy_vs_epsilon(benchmark, epsilon):
    database, keys = make_database(blocks=60, conflict_rate=0.5, max_block=3, seed=8)
    query = join_query(2)
    exact = count_repairs_satisfying(database, keys, query).satisfying
    scheme = CQAFpras(query, keys)

    result = benchmark(scheme.estimate, database, epsilon, 0.05, rng=epsilon and 17)
    benchmark.extra_info["exact"] = exact
    benchmark.extra_info["samples"] = result.samples
    if exact:
        error = abs(result.estimate - exact) / exact
        benchmark.extra_info["relative_error"] = round(error, 4)
        # A single run can exceed epsilon with probability <= delta; allow slack.
        assert error <= 3 * epsilon


@pytest.mark.parametrize("keywidth", [1, 2, 3])
def test_sample_size_grows_as_m_to_the_k(benchmark, keywidth):
    database, keys = make_database(blocks=60, conflict_rate=0.5, max_block=4, seed=9)
    query = join_query(keywidth)
    scheme = CQAFpras(query, keys, max_samples=20_000)
    result = benchmark(scheme.estimate, database, 0.2, 0.05, rng=3)
    prescribed = sample_size(0.2, 0.05, result.max_block_size, result.keywidth)
    benchmark.extra_info["keywidth"] = result.keywidth
    benchmark.extra_info["prescribed_samples"] = prescribed
    # The m^k effect: one more unit of keywidth multiplies the bound by m.
    if result.keywidth >= 1 and result.max_block_size > 1:
        smaller = sample_size(0.2, 0.05, result.max_block_size, result.keywidth - 1)
        assert prescribed == pytest.approx(smaller * result.max_block_size, rel=0.01)
