"""E12 — end-to-end relative-frequency CQA on realistic scenarios.

Claim exercised: the motivating use case of Section 1.1 — ranking candidate
answers by how often they hold across repairs — runs end to end (blocks →
certificates → exact counts → ranking) at interactive speed on scenario-
sized inconsistent databases, and the FPRAS provides the same ranking
signal when exactness is not required.
"""

import pytest

from repro.core import CQASolver


@pytest.mark.smoke
def test_employee_example_frequency(benchmark, employee_scenario):
    solver = CQASolver(employee_scenario.database, employee_scenario.keys, rng=0)
    query = employee_scenario.queries["same-department"]
    result = benchmark(solver.count, query)
    assert result.satisfying == 2 and result.total == 4


def test_hr_answer_ranking(benchmark, hr_scenario):
    solver = CQASolver(hr_scenario.database, hr_scenario.keys, rng=0)
    query = hr_scenario.queries["department-of-emp1"]
    ranking = benchmark(solver.answer_ranking, query)
    benchmark.extra_info["answers"] = len(ranking)
    assert ranking
    assert all(0 <= float(entry.frequency) <= 1 for entry in ranking)


def test_sensor_alarm_frequency_exact(benchmark, sensor_scenario):
    solver = CQASolver(sensor_scenario.database, sensor_scenario.keys, rng=0)
    query = sensor_scenario.queries["any-critical"]
    result = benchmark(solver.count, query)
    benchmark.extra_info["frequency"] = round(float(result.frequency), 4)


def test_sensor_alarm_frequency_fpras(benchmark, sensor_scenario):
    solver = CQASolver(sensor_scenario.database, sensor_scenario.keys, rng=0)
    query = sensor_scenario.queries["any-critical"]
    exact = solver.count(query)
    result = benchmark(solver.count, query, method="fpras", epsilon=0.15, delta=0.1)
    if exact.satisfying:
        assert abs(result.frequency - float(exact.frequency)) <= 0.3
