"""E2 — the decision problem #CQA>0(∃FO+) is easy (Theorem 3.4).

Claim exercised: deciding whether *some* repair entails the query needs only
a certificate search (Lemma 3.5) — no repairs are ever materialised — so it
stays fast as the database (and the number of repairs) grows, for any
keywidth.
"""

import pytest

from repro.db import PrimaryKeySet
from repro.repairs import has_entailing_repair
from conftest import join_query, make_database

SIZES = [100, 400, 800]


@pytest.mark.parametrize("blocks", SIZES)
@pytest.mark.parametrize("target_keywidth", [1, 2, 3])
def test_decision_never_enumerates_repairs(benchmark, blocks, target_keywidth):
    database, keys = make_database(blocks=blocks, seed=3)
    query = join_query(target_keywidth)
    answer = benchmark(has_entailing_repair, database, keys, query)
    benchmark.extra_info["keywidth"] = target_keywidth
    benchmark.extra_info["facts"] = len(database)
    assert answer in (True, False)
