"""E10 — Theorem 7.2: #kForbColoring exact, brute force, FPRAS and reduction.

Claims exercised: the compactor-based exact counter matches the brute-force
oracle, the Λ[k] FPRAS tracks it, and the parsimonious reduction to
#DisjPoskDNF preserves the count (asserted on every run).
"""

import pytest

from repro.approx import LambdaFPRAS
from repro.problems import (
    ForbiddenColoringCompactor,
    count_disjoint_positive_dnf,
    count_forbidden_colorings,
)
from repro.reductions import coloring_to_disjoint_dnf
from repro.workloads import random_forbidden_coloring

SMALL = [(7, 6, 2)]
LARGE = [(40, 10, 2), (40, 9, 3)]


@pytest.mark.parametrize("nodes,edges,uniformity", SMALL)
def test_bruteforce_oracle_small(benchmark, nodes, edges, uniformity):
    instance = random_forbidden_coloring(nodes, edges, uniformity, 3, 2, seed=1)
    count = benchmark(instance.count_bruteforce)
    assert count == count_forbidden_colorings(instance)


@pytest.mark.parametrize("nodes,edges,uniformity", SMALL + LARGE)
def test_exact_union_of_boxes(benchmark, nodes, edges, uniformity):
    instance = random_forbidden_coloring(nodes, edges, uniformity, 3, 2, seed=2)
    count = benchmark(count_forbidden_colorings, instance)
    benchmark.extra_info["nodes"] = nodes
    benchmark.extra_info["count"] = count


@pytest.mark.parametrize("nodes,edges,uniformity", LARGE)
def test_reduction_to_disjoint_dnf(benchmark, nodes, edges, uniformity):
    instance = random_forbidden_coloring(nodes, edges, uniformity, 3, 2, seed=3)
    formula = benchmark(coloring_to_disjoint_dnf, instance)
    assert count_disjoint_positive_dnf(formula) == count_forbidden_colorings(instance)


@pytest.mark.parametrize("nodes,edges,uniformity", LARGE)
def test_fpras_estimate(benchmark, nodes, edges, uniformity):
    instance = random_forbidden_coloring(nodes, edges, uniformity, 3, 2, seed=4)
    exact = count_forbidden_colorings(instance)
    scheme = LambdaFPRAS(ForbiddenColoringCompactor(k=uniformity), max_samples=50_000)
    result = benchmark(scheme.estimate, instance, 0.2, 0.1, rng=5)
    benchmark.extra_info["exact"] = exact
    if exact and not result.capped:
        assert abs(result.estimate - exact) <= 0.6 * exact
