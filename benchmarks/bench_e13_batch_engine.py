"""E13 — batch engine: shared caches and process-pool throughput.

Claims exercised:

* **Cache amortisation** — a :class:`repro.engine.SolverPool` serving a
  mixed stream of repeated (database, query) jobs beats a fresh
  :class:`repro.core.CQASolver` per job, because the block decomposition
  and the certificate selectors are computed once per distinct key instead
  of once per job.  Target: ≥1.5× throughput on the repeated-query exact
  workload (asserted with margin at 1.3× to absorb timer noise).
* **Process-pool scaling** — with ≥2 CPU cores, fanning a compute-heavy
  mixed batch out to 2 workers yields ≥1.5× the sequential throughput
  while staying bit-identical.  The assertion is skipped on single-core
  machines, where no parallel speedup is physically possible; the
  measurement itself still runs and is recorded in ``extra_info``.
"""

import os
import time

import pytest

from repro.core import CQASolver
from repro.engine import CountJob, SolverPool
from repro.query import parse_query
from repro.workloads import (
    InconsistentDatabaseSpec,
    batch_workload,
    random_inconsistent_database,
)

_RELATIONS = {"R": 3, "S": 3}


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def make_large_database(seed, blocks=400):
    """A database large enough that preparation dominates one exact count."""
    spec = InconsistentDatabaseSpec(
        relations=_RELATIONS,
        blocks_per_relation=blocks,
        conflict_rate=0.4,
        max_block_size=4,
        domain_size=200,
    )
    return random_inconsistent_database(spec, seed=seed)


def repeated_query_jobs(jobs=40, databases=2, distinct_queries=4):
    """The cache-amortisation workload: few hot (db, query) pairs, many jobs."""
    stream = []
    for index in range(jobs):
        anchor = f"v{index % distinct_queries}"
        stream.append(
            CountJob(
                database=f"db-{index % databases}",
                query=(
                    f"EXISTS x, y, z, w. "
                    f"(R(x, '{anchor}', y) AND S(z, '{anchor}', w))"
                ),
                method="certificate",
            )
        )
    return stream


def sampling_heavy_jobs(jobs=16):
    """The scaling workload: estimator jobs whose sampling loops dominate."""
    stream = []
    for index in range(jobs):
        anchor = f"v{index % 10}"
        stream.append(
            CountJob(
                database=f"db-{index % 2}",
                query=(
                    f"EXISTS x, y, z, w. "
                    f"(R(x, '{anchor}', y) AND S(z, '{anchor}', w))"
                ),
                method=("fpras", "karp-luby")[index % 2],
                epsilon=0.05,
                delta=0.05,
                seed=index,
            )
        )
    return stream


def fresh_pool(databases=2, blocks=400):
    pool = SolverPool()
    for index in range(databases):
        database, keys = make_large_database(index, blocks=blocks)
        pool.register(f"db-{index}", database, keys)
    return pool


# --------------------------------------------------------------------- #
# cache amortisation (runs meaningfully on any hardware)
# --------------------------------------------------------------------- #
@pytest.mark.smoke
def test_fresh_solver_baseline(benchmark):
    """One CQASolver per job: every job pays decomposition + certificates."""
    databases = {f"db-{index}": make_large_database(index, blocks=200) for index in range(2)}
    jobs = repeated_query_jobs(jobs=20)
    parsed = {job.query: parse_query(job.query) for job in jobs}

    def run():
        results = []
        for job in jobs:
            database, keys = databases[job.database]
            solver = CQASolver(database, keys)
            results.append(solver.count(parsed[job.query], method=job.method).satisfying)
        return results

    results = benchmark(run)
    benchmark.extra_info["jobs"] = len(jobs)
    assert len(results) == len(jobs)


@pytest.mark.smoke
def test_cached_batch_throughput(benchmark):
    """The same workload through a warm SolverPool."""
    pool = fresh_pool(blocks=200)
    jobs = repeated_query_jobs(jobs=20)
    pool.run(jobs)  # warm the caches; the steady state is what serving sees

    report = benchmark(pool.run, jobs)
    benchmark.extra_info["jobs"] = len(jobs)
    benchmark.extra_info["jobs_per_second"] = round(report.jobs_per_second, 1)
    assert all(result.cache_misses == () for result in report.results)


@pytest.mark.smoke
def test_cache_amortisation_speedup():
    """SolverPool ≥ 1.3× over fresh per-job solvers on repeated queries."""
    databases = {f"db-{index}": make_large_database(index) for index in range(2)}
    jobs = repeated_query_jobs(jobs=40)

    started = time.perf_counter()
    baseline = []
    for job in jobs:
        database, keys = databases[job.database]
        solver = CQASolver(database, keys)
        baseline.append(solver.count(parse_query(job.query), method=job.method).satisfying)
    fresh_elapsed = time.perf_counter() - started

    pool = SolverPool()
    for name, (database, keys) in databases.items():
        pool.register(name, database, keys)
    started = time.perf_counter()
    report = pool.run(jobs)
    pooled_elapsed = time.perf_counter() - started

    assert [result.satisfying for result in report.results] == baseline
    speedup = fresh_elapsed / pooled_elapsed
    assert speedup >= 1.3, (
        f"expected the shared caches to amortise preparation, got {speedup:.2f}x "
        f"(fresh {fresh_elapsed:.2f}s vs pooled {pooled_elapsed:.2f}s)"
    )


# --------------------------------------------------------------------- #
# process-pool scaling (needs real cores to show a speedup)
# --------------------------------------------------------------------- #
@pytest.mark.smoke
def test_pooled_run_matches_sequential_on_mixed_workload():
    """batch_workload through 2 workers is bit-identical to sequential."""
    databases, jobs = batch_workload(jobs=20, seed=13)
    pool = SolverPool()
    for name, (database, keys) in databases.items():
        pool.register(name, database, keys)
    sequential = pool.run(jobs)
    pooled = pool.run(jobs, workers=2)
    assert pooled.counts() == sequential.counts()


@pytest.mark.parametrize("workers", [1, 2])
def test_estimator_batch_throughput(benchmark, workers):
    """Throughput of the sampling-heavy batch at 1 and 2 workers."""
    pool = fresh_pool(blocks=12)
    jobs = sampling_heavy_jobs(jobs=16)
    report = benchmark.pedantic(pool.run, args=(jobs,), kwargs={"workers": workers}, rounds=2)
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["cores"] = _available_cores()
    benchmark.extra_info["jobs_per_second"] = round(report.jobs_per_second, 1)


@pytest.mark.smoke
def test_pooled_speedup_with_two_workers():
    """≥1.5× throughput over sequential with 2 workers (needs ≥2 cores)."""
    cores = _available_cores()
    pool = fresh_pool(blocks=12)
    jobs = sampling_heavy_jobs(jobs=16)

    started = time.perf_counter()
    sequential = pool.run(jobs)
    sequential_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    pooled = pool.run(jobs, workers=2)
    pooled_elapsed = time.perf_counter() - started

    assert pooled.counts() == sequential.counts()
    speedup = sequential_elapsed / pooled_elapsed
    if cores < 2:
        pytest.skip(
            f"only {cores} core(s) available; parallel speedup is not "
            f"measurable (observed {speedup:.2f}x)"
        )
    assert speedup >= 1.5, (
        f"expected >=1.5x with 2 workers on {cores} cores, got {speedup:.2f}x "
        f"(sequential {sequential_elapsed:.2f}s vs pooled {pooled_elapsed:.2f}s)"
    )
