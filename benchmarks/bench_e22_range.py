"""E22 — range materialisation: one shared walk vs N independent replays.

Claims exercised:

* **Shared-walk speedup** — on a 200-version chain with no persistent
  store, answering a 32-version ``as_of_range`` through
  :meth:`~repro.engine.SolverPool.run_range` is **≥3× faster** than the
  old way (32 independent ``as_of`` jobs, each paying its own BFS and
  its own head-to-target replay), because the range replays the chain
  segment **once** and yields every version as the walk passes it.
* **Bit-identical** — the range's per-version results carry exactly the
  counts, methods and resolved digests of the independent jobs; the
  shared walk must not perturb replay order, derived seeds or snapshot
  identity.
* **Warm ranges recompute nothing** — with a persistent store, a
  restarted pool answering the same range performs **zero** selector and
  **zero** decomposition recomputations: every version's prepared state
  comes from the token-keyed caches the first pass fed.

The speedup assertion self-skips when the independent baseline is too
fast to time reliably; both correctness claims are asserted regardless.
"""

import time
from dataclasses import replace

import pytest

from bench_e16_history import _MIN_MEASURABLE_BASELINE, make_database
from repro.db import Database, Delta, fact
from repro.engine import CountJob, RangeFailure, SolverPool

_CHAIN_VERSIONS = 200
_WINDOW = 32
#: First chain position of the measured window: deep enough that every
#: independent replay walks most of the chain, exactly the regime the
#: shared walk amortises.
_WINDOW_START = 20

_RANGE_QUERY = "EXISTS x, y. R(x, 'v3', y)"


def _grow_chain(pool, name, versions=_CHAIN_VERSIONS):
    """Append effective single-fact deltas until ``name`` has ``versions``."""
    for step in range(versions - 1):
        pool.apply_delta(
            name, Delta(inserted=[fact("S", f"s_grown{step}", f"w{step}", "x")])
        )


def _versioned_pool(database, keys, **pool_kwargs):
    pool = SolverPool(**pool_kwargs)
    pool.register("live", Database(database.facts()), keys)
    _grow_chain(pool, "live")
    return pool


def _range_job(ref_lo, ref_hi):
    return CountJob(
        database="live",
        query=_RANGE_QUERY,
        method="certificate",
        as_of_range=(ref_lo, ref_hi),
    )


# --------------------------------------------------------------------- #
# shared walk vs independent replays (the headline claim)
# --------------------------------------------------------------------- #
@pytest.mark.smoke
def test_range_beats_independent_as_of_jobs():
    """A 32-version range ≥3× over 32 independent as_of jobs, cold."""
    database, keys = make_database(blocks=150, seed=22, domain=400)

    # The old way: one job per version, each resolved and replayed on its
    # own.  ``run_job`` (not ``run``) keeps the jobs genuinely
    # independent — the batch path would share the walk itself.
    independent_pool = _versioned_pool(database, keys)
    digests = [record.digest for record in independent_pool.lineage("live")]
    window = digests[_WINDOW_START:_WINDOW_START + _WINDOW]
    assert len(window) == _WINDOW
    template = CountJob(
        database="live", query=_RANGE_QUERY, method="certificate"
    )
    started = time.perf_counter()
    independent = [
        independent_pool.run_job(replace(template, as_of=digest), index=index)
        for index, digest in enumerate(window)
    ]
    independent_elapsed = time.perf_counter() - started

    # The new way: the same window as one range through a fresh pool.
    range_pool = _versioned_pool(database, keys)
    started = time.perf_counter()
    outcomes = range_pool.run_range(_range_job(window[0], window[-1]))
    range_elapsed = time.perf_counter() - started

    assert not any(isinstance(outcome, RangeFailure) for outcome in outcomes)
    assert [outcome.job.as_of for outcome in outcomes] == window
    assert [outcome.count_fields() for outcome in outcomes] == [
        result.count_fields() for result in independent
    ]

    if independent_elapsed < _MIN_MEASURABLE_BASELINE:
        pytest.skip(
            f"independent replays took {independent_elapsed * 1000:.1f}ms — "
            f"too fast to measure a reliable speedup on this machine"
        )
    speedup = independent_elapsed / range_elapsed
    assert speedup >= 3.0, (
        f"expected the shared walk to beat {_WINDOW} independent as_of "
        f"jobs ≥3×, got {speedup:.2f}x (independent "
        f"{independent_elapsed:.3f}s vs range {range_elapsed:.3f}s)"
    )


# --------------------------------------------------------------------- #
# warm store: a restarted pool recomputes nothing for the same range
# --------------------------------------------------------------------- #
@pytest.mark.smoke
def test_warm_range_recomputes_nothing(tmp_path):
    database, keys = make_database(blocks=100, seed=23, domain=300)
    pool = SolverPool(persist_dir=tmp_path / "store")
    pool.register("live", Database(database.facts()), keys)
    _grow_chain(pool, "live", versions=60)
    digests = [record.digest for record in pool.lineage("live")]
    window = digests[10:26]
    cold = pool.run_range(_range_job(window[0], window[-1]))
    assert not any(isinstance(outcome, RangeFailure) for outcome in cold)

    # A restarted service: only the head is registered, history comes
    # from the catalog, prepared state from the store.
    restarted = SolverPool(persist_dir=tmp_path / "store")
    restarted.register("live", pool.lookup("live")[0], keys)
    warm = restarted.run_range(_range_job(window[0], window[-1]))
    assert restarted.selector_recomputations == 0
    assert restarted.decomposition_recomputations == 0
    assert [outcome.count_fields() for outcome in warm] == [
        outcome.count_fields() for outcome in cold
    ]
    assert [outcome.job.as_of for outcome in warm] == window


# --------------------------------------------------------------------- #
# recorded throughput, independent vs shared walk
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("mode", ["independent", "range"])
def test_range_throughput(benchmark, mode):
    """Recorded cost of a 16-version window, both strategies."""
    database, keys = make_database(blocks=120, seed=24, domain=300)
    pool = _versioned_pool(database, keys)
    digests = [record.digest for record in pool.lineage("live")]
    window = digests[30:46]
    template = CountJob(
        database="live", query=_RANGE_QUERY, method="certificate"
    )

    def independent():
        return [
            pool.run_job(replace(template, as_of=digest), index=index)
            for index, digest in enumerate(window)
        ]

    def shared():
        return pool.run_range(_range_job(window[0], window[-1]))

    run = independent if mode == "independent" else shared
    # One round only: repeated rounds would coalesce onto the snapshots
    # the first round materialised and stop measuring the replay.
    results = benchmark.pedantic(run, rounds=1)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["versions"] = len(results)
