"""Unit and property tests for exact #CQA counting.

The load-bearing invariant: every exact strategy (naive enumeration,
certificate/union-of-boxes with all three box methods, the PDB route, the
#DisjPoskDNF route) computes the same number on the same instance.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.db import Database, PrimaryKeySet, fact
from repro.errors import FragmentError
from repro.problems import count_disjoint_positive_dnf
from repro.query import parse_query, to_ucq
from repro.reductions import count_via_pdb, cqa_to_disjoint_dnf
from repro.repairs import (
    count_repairs_satisfying,
    count_repairs_satisfying_certificates,
    count_repairs_satisfying_naive,
    iter_certificates,
)
from repro.workloads import random_conjunctive_query
from tests.conftest import small_random_instance


class TestEmployeeExample:
    def test_paper_value(self, employee_db, employee_keys, same_department_query):
        report = count_repairs_satisfying(
            employee_db, employee_keys, same_department_query
        )
        assert report.satisfying == 2
        assert report.total == 4
        assert report.relative_frequency == pytest.approx(0.5)
        assert report.certificates == 2

    def test_all_methods_agree(self, employee_db, employee_keys, same_department_query):
        values = {
            method: count_repairs_satisfying(
                employee_db, employee_keys, same_department_query, method=method
            ).satisfying
            for method in ("auto", "naive", "certificate", "inclusion-exclusion", "enumeration")
        }
        assert set(values.values()) == {2}

    def test_non_boolean_query_with_answer(self, employee_db, employee_keys):
        query = parse_query("Employee(1, x, y)", answer_variables=["x", "y"])
        hr = count_repairs_satisfying(employee_db, employee_keys, query, ("Bob", "HR"))
        it = count_repairs_satisfying(employee_db, employee_keys, query, ("Bob", "IT"))
        nothing = count_repairs_satisfying(employee_db, employee_keys, query, ("Bob", "X"))
        assert (hr.satisfying, it.satisfying, nothing.satisfying) == (2, 2, 0)

    def test_trivially_true_and_false_queries(self, employee_db, employee_keys):
        assert (
            count_repairs_satisfying(employee_db, employee_keys, parse_query("TRUE")).satisfying
            == 4
        )
        assert (
            count_repairs_satisfying(employee_db, employee_keys, parse_query("FALSE")).satisfying
            == 0
        )

    def test_fo_query_requires_naive(self, employee_db, employee_keys):
        query = parse_query("NOT Employee(1, 'Bob', 'HR')")
        report = count_repairs_satisfying(employee_db, employee_keys, query)
        assert report.method == "naive"
        assert report.satisfying == 2  # the two repairs with Employee(1, Bob, IT)
        with pytest.raises(FragmentError):
            count_repairs_satisfying_certificates(employee_db, employee_keys, query)

    def test_certificates_of_the_employee_query(
        self, employee_db, employee_keys, same_department_query
    ):
        certificates = list(
            iter_certificates(employee_db, employee_keys, to_ucq(same_department_query))
        )
        assert len(certificates) == 2
        for certificate in certificates:
            assert employee_keys.is_consistent(certificate.image)


class TestCrossValidationOnRandomInstances:
    @pytest.mark.parametrize("seed", range(8))
    def test_certificate_equals_naive(self, seed):
        database, keys = small_random_instance(seed=seed, blocks=5, max_block=3)
        query = random_conjunctive_query({"R": 2, "S": 2}, keys, target_keywidth=2, seed=seed)
        naive = count_repairs_satisfying_naive(database, keys, query)
        certificate, _ = count_repairs_satisfying_certificates(database, keys, query)
        assert certificate == naive

    @pytest.mark.parametrize("seed", range(4))
    def test_all_exact_routes_agree(self, seed):
        database, keys = small_random_instance(seed=seed + 100, blocks=5, max_block=3)
        query = random_conjunctive_query({"R": 2, "S": 2}, keys, target_keywidth=2, seed=seed)
        reference = count_repairs_satisfying_naive(database, keys, query)
        for method in ("certificate", "inclusion-exclusion", "enumeration"):
            report = count_repairs_satisfying(database, keys, query, method=method)
            assert report.satisfying == reference
        assert count_via_pdb(database, keys, query) == reference
        assert count_disjoint_positive_dnf(cqa_to_disjoint_dnf(database, keys, query)) == reference

    @pytest.mark.parametrize("seed", range(3))
    def test_union_query_counting(self, seed):
        database, keys = small_random_instance(seed=seed + 50, blocks=4, max_block=3)
        query = parse_query("R(x, y) OR S(x, y)")
        naive = count_repairs_satisfying_naive(database, keys, query)
        certificate, _ = count_repairs_satisfying_certificates(database, keys, query)
        assert certificate == naive


# --------------------------------------------------------------------------- #
# property-based: counts agree on tiny random databases and queries
# --------------------------------------------------------------------------- #
_r_fact = st.builds(lambda k, v: fact("R", k, v), st.integers(0, 2), st.integers(0, 2))
_s_fact = st.builds(lambda k, v: fact("S", k, v), st.integers(0, 2), st.integers(0, 2))
_query_text = st.sampled_from(
    [
        "R(x, y) AND S(y, z)",
        "R(x, y) AND S(x, y)",
        "R(x, x)",
        "R(x, y) OR S(x, y)",
        "R(x, y) AND (S(y, z) OR S(z, y))",
        "R(1, x) AND S(x, y)",
    ]
)


@given(st.lists(_r_fact, max_size=7), st.lists(_s_fact, max_size=7), _query_text)
@settings(max_examples=60, deadline=None)
def test_certificate_counter_matches_naive_enumeration(r_facts, s_facts, text):
    database = Database(r_facts + s_facts)
    keys = PrimaryKeySet.from_dict({"R": [1], "S": [1]})
    query = parse_query(text)
    naive = count_repairs_satisfying_naive(database, keys, query)
    certificate, _ = count_repairs_satisfying_certificates(database, keys, query)
    assert certificate == naive


@given(st.lists(_r_fact, max_size=6), _query_text)
@settings(max_examples=40, deadline=None)
def test_satisfying_count_never_exceeds_total(r_facts, text):
    database = Database(r_facts)
    keys = PrimaryKeySet.from_dict({"R": [1], "S": [1]})
    report = count_repairs_satisfying(database, keys, parse_query(text))
    assert 0 <= report.satisfying <= report.total
