"""Tests for time-travel queries across engine, server and CLI.

What is pinned here:

* a ``CountJob`` with ``as_of`` (ancestor digest, unique prefix or
  negative chain index) is bit-identical to registering that ancestor
  fresh — including randomised estimators, whose derived seeds ignore
  ``as_of`` by design;
* historical snapshots are served through the ordinary token-keyed
  caches: with a warm persistent store, an ``as_of`` job recomputes zero
  selectors and zero decompositions — sequentially, fanned out, and
  through the sharded async server (the acceptance path);
* ``SolverPool.rollback`` re-registers an ancestor as the head,
  append-only: every pre-rollback state stays reachable via ``as_of``;
* lineage survives restarts through the snapshot catalog, and bad
  references fail loudly (:class:`LineageError`), never silently;
* the ``repro history`` / ``repro rollback`` commands and ``as_of`` job
  entries in ``repro batch`` round-trip through the CLI.
"""

import asyncio
import json
from dataclasses import replace

import pytest

from repro.cli import main
from repro.db import Database, Delta, Fact, PrimaryKeySet, database_to_json, fact
from repro.engine import CountJob, SolverPool, UpdateJob
from repro.errors import BatchSpecError, LineageError
from repro.server import AsyncServer, serve_stream
from repro.workloads import history_workload

_R_QUERY = "EXISTS x, y. R(x, 'v1', y)"


def _versioned_instance():
    """A small instance plus two deltas: three recorded versions."""
    database = Database(
        [
            fact("R", 1, "v1", "a"),
            fact("R", 1, "v2", "b"),
            fact("R", 2, "v1", "c"),
            fact("S", 1, "v1", "d"),
        ]
    )
    keys = PrimaryKeySet.from_dict({"R": [1], "S": [1]})
    first = Delta(inserted=[fact("R", 3, "v1", "e")])
    second = Delta(deleted=[fact("R", 1, "v2", "b")])
    return database, keys, first, second


def _versioned_pool(**pool_kwargs):
    database, keys, first, second = _versioned_instance()
    pool = SolverPool(**pool_kwargs)
    pool.register("live", database, keys)
    pool.apply_delta("live", first)
    pool.apply_delta("live", second)
    return pool, database, keys


class TestJobValidation:
    def test_as_of_round_trips_through_json(self):
        job = CountJob(database="live", query=_R_QUERY, as_of="a" * 64)
        assert CountJob.from_json(job.to_json()) == job
        relative = CountJob(database="live", query=_R_QUERY, as_of=-2)
        assert CountJob.from_json(relative.to_json()) == relative
        assert "as_of" not in CountJob(database="live", query=_R_QUERY).to_json()

    def test_bad_as_of_is_rejected(self):
        with pytest.raises(BatchSpecError, match="<= 0"):
            CountJob(database="live", query=_R_QUERY, as_of=3)
        with pytest.raises(BatchSpecError, match="at least 8"):
            CountJob(database="live", query=_R_QUERY, as_of="abc")
        with pytest.raises(BatchSpecError, match="digest string or a chain"):
            CountJob(database="live", query=_R_QUERY, as_of=True)

    def test_as_of_does_not_perturb_derived_seeds(self):
        plain = CountJob(database="live", query=_R_QUERY, method="fpras")
        historical = replace(plain, as_of="a" * 64)
        assert plain.effective_seed(7) == historical.effective_seed(7)


class TestPoolTimeTravel:
    def test_every_recorded_version_counts_like_a_fresh_registration(self):
        pool, database, keys = _versioned_pool()
        chain = pool.lineage("live")
        assert [record.kind for record in chain] == ["register", "delta", "delta"]

        for record in chain:
            snapshot, _, _ = pool.materialise("live", record.digest)
            fresh = SolverPool()
            fresh.register("live", Database(snapshot.facts()), keys)
            for method in ("certificate", "fpras"):
                job = CountJob(
                    database="live", query=_R_QUERY, method=method,
                    epsilon=0.3, delta=0.2,
                )
                historical = pool.run_job(replace(job, as_of=record.digest))
                expected = fresh.run_job(job)
                assert (historical.satisfying, historical.total) == (
                    expected.satisfying,
                    expected.total,
                )

    def test_reference_forms_agree(self):
        pool, _, _ = _versioned_pool()
        chain = pool.lineage("live")
        root = chain.records[0].digest
        by_digest = pool.run_job(
            CountJob(database="live", query=_R_QUERY, as_of=root)
        )
        by_prefix = pool.run_job(
            CountJob(database="live", query=_R_QUERY, as_of=root[:12])
        )
        by_index = pool.run_job(
            CountJob(database="live", query=_R_QUERY, as_of=-2)
        )
        head_like = pool.run_job(
            CountJob(database="live", query=_R_QUERY, as_of=0)
        )
        plain = pool.run_job(CountJob(database="live", query=_R_QUERY))
        assert (
            by_digest.count_fields()
            == by_prefix.count_fields()
            == by_index.count_fields()
        )
        assert head_like.count_fields() == plain.count_fields()

    def test_unknown_and_out_of_range_references_fail_loudly(self):
        pool, _, _ = _versioned_pool()
        with pytest.raises(LineageError, match="no recorded snapshot"):
            pool.run_job(
                CountJob(database="live", query=_R_QUERY, as_of="f" * 64)
            )
        with pytest.raises(LineageError, match="cannot go back"):
            pool.run_job(CountJob(database="live", query=_R_QUERY, as_of=-50))

    def test_streams_interleave_updates_and_history(self):
        database, keys, first, second = _versioned_instance()
        pool = SolverPool()
        pool.register("live", database, keys)
        stream = [
            CountJob(database="live", query=_R_QUERY),
            UpdateJob(database="live", delta=first),
            CountJob(database="live", query=_R_QUERY),
            UpdateJob(database="live", delta=second),
            CountJob(database="live", query=_R_QUERY, as_of=-2),
        ]
        report = pool.run_stream(stream)
        # The final job counts "two versions ago" — the pre-update root.
        assert report.results[-1].count_fields()[1:] == report.results[0].count_fields()[1:]

    def test_pooled_runs_resolve_as_of_like_sequential_ones(self):
        registry, stream = history_workload(jobs=12, update_every=3, seed=4)
        updates = [item for item in stream if isinstance(item, UpdateJob)]
        counts = [item for item in stream if isinstance(item, CountJob)]
        assert any(job.as_of is not None for job in counts)

        def build_pool():
            pool = SolverPool()
            for name, (database, keys) in registry.items():
                pool.register(name, database, keys)
            for update in updates:
                pool.apply_delta(update.database, update.delta)
            return pool

        sequential = build_pool().run(counts, workers=1)
        pooled = build_pool().run(counts, workers=2)
        assert pooled.counts() == sequential.counts()

    def test_warm_store_time_travel_recomputes_nothing(self, tmp_path):
        database, keys, first, second = _versioned_instance()
        jobs = [
            CountJob(database="live", query=_R_QUERY, method="certificate"),
            CountJob(
                database="live",
                query="EXISTS x, y. S(x, 'v1', y)",
                method="certificate",
            ),
        ]
        warm = SolverPool(persist_dir=tmp_path)
        warm.register("live", database, keys)
        baseline = warm.run(jobs)
        warm.apply_delta("live", first)
        warm.apply_delta("live", second)
        root = warm.lineage("live").records[0].digest

        # A *restarted* pool: only the head is registered, history comes
        # from the catalog, entries from the store.
        restarted = SolverPool(persist_dir=tmp_path)
        restarted.register("live", warm.lookup("live")[0], keys)
        historical = restarted.run(
            [replace(job, as_of=root) for job in jobs]
        )
        assert restarted.selector_recomputations == 0
        assert restarted.decomposition_recomputations == 0
        assert [r.count_fields()[1:] for r in historical.results] == [
            r.count_fields()[1:] for r in baseline.results
        ]
        for result in historical.results:
            assert "selectors-disk" in result.cache_hits
            assert "decomposition" not in result.cache_misses
        # The first job rehydrated the ancestor's decomposition from disk;
        # the second found it already in memory.
        assert "decomposition-disk" in historical.results[0].cache_hits


class TestRollback:
    def test_rollback_restores_ancestor_and_keeps_history(self):
        pool, database, keys = _versioned_pool()
        chain = pool.lineage("live")
        old_head = chain.head.digest
        root = chain.records[0].digest

        record = pool.rollback("live", root)
        assert record.kind == "rollback"
        assert pool.snapshot_token("live")[0] == root
        assert pool.lookup("live")[0] == database
        # History is append-only: the rolled-over head stays reachable.
        assert [r.kind for r in pool.lineage("live")] == [
            "register", "delta", "delta", "rollback",
        ]
        onward = pool.run_job(
            CountJob(database="live", query=_R_QUERY, as_of=old_head)
        )
        fresh = SolverPool()
        fresh.register("live", pool.materialise("live", old_head)[0], keys)
        assert (
            onward.count_fields()[1:]
            == fresh.run_job(CountJob(database="live", query=_R_QUERY)).count_fields()[1:]
        )

    def test_rollback_to_head_is_a_noop(self):
        pool, _, _ = _versioned_pool()
        before = pool.lineage("live").records
        record = pool.rollback("live", 0)
        assert pool.lineage("live").records == before
        assert record == before[-1]

    def test_rollback_is_recorded_in_the_catalog(self, tmp_path):
        pool, database, keys = _versioned_pool(persist_dir=tmp_path)
        root = pool.lineage("live").records[0].digest
        pool.rollback("live", root)

        restarted = SolverPool(persist_dir=tmp_path)
        restarted.register("live", database, keys)  # the rolled-back head
        assert [r.kind for r in restarted.lineage("live")] == [
            "register", "delta", "delta", "rollback",
        ]
        # ... and can still travel to the rolled-over head.
        old_head = restarted.lineage("live").records[2].digest
        result = restarted.run_job(
            CountJob(database="live", query=_R_QUERY, as_of=old_head)
        )
        assert result.total > 0


class TestLineageGuards:
    def test_changed_keys_refuse_historical_replay(self):
        pool, database, keys = _versioned_pool()
        # A digest recorded only under the *old* keys (the intermediate
        # version; the root's digest gets re-recorded by the
        # re-registration below and resolves to the new-keys record).
        middle = pool.lineage("live").records[1].digest
        pool.register("live", database, PrimaryKeySet.from_dict({"R": [1]}))
        with pytest.raises(LineageError, match="different key constraints"):
            pool.materialise("live", middle)

    def test_adopt_lineage_validates_the_head(self):
        pool, _, keys = _versioned_pool()
        other = SolverPool()
        other.register("live", Database([fact("R", 9, "v9", "z")]), keys)
        from repro.errors import EngineError

        with pytest.raises(EngineError, match="ends at"):
            other.adopt_lineage("live", pool.lineage("live"))


class TestServerTimeTravel:
    def test_served_history_stream_is_bit_identical(self):
        registry, stream = history_workload(jobs=16, update_every=4, seed=9)
        pool = SolverPool()
        for name, (database, keys) in registry.items():
            pool.register(name, database, keys)
        sequential = pool.run_stream(stream)
        served = serve_stream(registry, stream, shards=2, queue_limit=8)
        assert served.counts() == sequential.counts()

    def test_server_history_probe_reports_the_chain(self):
        database, keys, first, _ = _versioned_instance()

        async def run():
            server = AsyncServer(shards=1, queue_limit=4)
            server.register("live", database, keys)
            async with server:
                await server.submit(UpdateJob(database="live", delta=first), 0)
                chain = await server.history("live")
                return [record.kind for record in chain]

        assert asyncio.run(run()) == ["register", "delta"]

    def test_server_path_time_travel_recomputes_nothing(self, tmp_path):
        """The acceptance path: as_of through the server, warm store."""
        database, keys, first, second = _versioned_instance()
        jobs = [
            CountJob(database="live", query=_R_QUERY, method="certificate"),
            CountJob(
                database="live",
                query="EXISTS x, y. S(x, 'v1', y)",
                method="certificate",
            ),
        ]

        async def warm_phase():
            server = AsyncServer(shards=2, persist_dir=tmp_path / "store")
            server.register("live", database, keys)
            async with server:
                report = await server.run_stream(jobs)
                await server.submit(UpdateJob(database="live", delta=first), 0)
                await server.submit(UpdateJob(database="live", delta=second), 1)
                chain = await server.history("live")
                head = await server.history("live")
            return report, chain.records[0].digest, head.head

        baseline, root, _ = asyncio.run(warm_phase())
        head_database = database.apply_delta(first).apply_delta(second)

        async def restarted_phase():
            server = AsyncServer(shards=2, persist_dir=tmp_path / "store")
            server.register("live", Database(head_database.facts()), keys)
            async with server:
                report = await server.run_stream(
                    [replace(job, as_of=root) for job in jobs]
                )
                stats = await server.stats()
            return report, stats

        historical, stats = asyncio.run(restarted_phase())
        assert [r.count_fields()[1:] for r in historical.results] == [
            r.count_fields()[1:] for r in baseline.results
        ]
        for shard_stats in stats["shards"].values():
            assert shard_stats["selector_recomputations"] == 0
            assert shard_stats["decomposition_recomputations"] == 0
        for result in historical.results:
            assert "selectors" not in result.cache_misses
            assert "decomposition" not in result.cache_misses


class TestTimeTravelCLI:
    @pytest.fixture
    def instance_files(self, tmp_path):
        database, keys, first, second = _versioned_instance()
        db_path = tmp_path / "db.json"
        db_path.write_text(json.dumps(database_to_json(database, keys)))
        jobs = {
            "databases": {"live": {"path": "db.json"}},
            "jobs": [
                {"database": "live", "query": _R_QUERY},
                {"update": "live", **first.to_json()},
                {"update": "live", **second.to_json()},
                {"database": "live", "query": _R_QUERY},
                {"database": "live", "query": _R_QUERY, "as_of": -2},
            ],
        }
        jobs_path = tmp_path / "jobs.json"
        jobs_path.write_text(json.dumps(jobs))
        return tmp_path, db_path, jobs_path

    def test_batch_as_of_and_history_command(self, instance_files, capsys):
        tmp_path, _, jobs_path = instance_files
        cache = tmp_path / "cache"
        assert main(["batch", "--jobs", str(jobs_path),
                     "--persist-cache", str(cache)]) == 0
        report = json.loads(capsys.readouterr().out)
        results = {entry["index"]: entry for entry in report["jobs"]}
        # The as_of=-2 job (index 4) sees the pre-update snapshot (index 0).
        assert results[4]["satisfying"] == results[0]["satisfying"]
        assert results[4]["job"]["as_of"] == -2

        assert main(["history", "live", "--persist-cache", str(cache)]) == 0
        output = capsys.readouterr().out
        assert output.count("delta") == 2
        assert "register" in output and "head:" in output

        assert main(["history", "live", "--persist-cache", str(cache),
                     "--json-lines", "--limit", "1"]) == 0
        (line, _head) = capsys.readouterr().out.strip().splitlines()
        assert json.loads(line)["kind"] == "delta"

    def test_history_without_a_catalog_exits_2(self, tmp_path, capsys):
        assert main(["history", "ghost", "--persist-cache", str(tmp_path)]) == 2
        assert "no recorded lineage" in capsys.readouterr().err

    def test_rollback_command_round_trip(self, instance_files, capsys):
        tmp_path, db_path, jobs_path = instance_files
        cache = tmp_path / "cache"
        assert main(["batch", "--jobs", str(jobs_path),
                     "--persist-cache", str(cache)]) == 0
        capsys.readouterr()

        # Materialise the post-update head on disk via `repro update`.
        database, keys, first, second = _versioned_instance()
        head = database.apply_delta(first).apply_delta(second)
        head_path = tmp_path / "head.json"
        head_path.write_text(json.dumps(database_to_json(head, keys)))
        root_digest = database.content_digest()

        rolled_path = tmp_path / "rolled.json"
        assert main([
            "rollback", "live", root_digest[:16],
            "--json", str(head_path),
            "--persist-cache", str(cache),
            "--output", str(rolled_path),
        ]) == 0
        output = capsys.readouterr().out
        assert f"new head: {root_digest}" in output
        assert "(rollback)" in output

        from repro.db import load_json

        rolled, _ = load_json(rolled_path)
        assert rolled.content_digest() == root_digest

        assert main(["history", "live", "--persist-cache", str(cache)]) == 0
        assert "rollback" in capsys.readouterr().out

    def test_rollback_with_unknown_digest_exits_2(self, instance_files, capsys):
        tmp_path, db_path, jobs_path = instance_files
        cache = tmp_path / "cache"
        assert main(["batch", "--jobs", str(jobs_path),
                     "--persist-cache", str(cache)]) == 0
        capsys.readouterr()
        assert main([
            "rollback", "live", "f" * 64,
            "--json", str(db_path),
            "--persist-cache", str(cache),
            "--output", str(tmp_path / "out.json"),
        ]) == 2
        assert "no recorded snapshot" in capsys.readouterr().err

    def test_failed_rollback_never_moves_the_catalog(self, instance_files, capsys):
        """Regression: a rejected rollback (unknown reference, or a stale
        input file that is not the recorded head) must leave the
        persisted lineage byte-for-byte untouched."""
        from repro.store import SnapshotCatalog

        tmp_path, db_path, jobs_path = instance_files
        cache = tmp_path / "cache"
        assert main(["batch", "--jobs", str(jobs_path),
                     "--persist-cache", str(cache)]) == 0
        capsys.readouterr()
        before = SnapshotCatalog(cache).lineage("live").digests()

        # Unknown reference: rejected before the catalog is opened for
        # writing.  db_path is also *not* the head — doubly invalid.
        assert main([
            "rollback", "live", "f" * 64,
            "--json", str(db_path),
            "--persist-cache", str(cache),
            "--output", str(tmp_path / "out.json"),
        ]) == 2
        capsys.readouterr()
        assert SnapshotCatalog(cache).lineage("live").digests() == before

        # Valid reference but a stale (non-head) input file: same story.
        root_digest = before[0]
        assert main([
            "rollback", "live", root_digest[:16],
            "--json", str(db_path),
            "--persist-cache", str(cache),
            "--output", str(tmp_path / "out.json"),
        ]) == 2
        assert "not the recorded head" in capsys.readouterr().err
        assert SnapshotCatalog(cache).lineage("live").digests() == before
