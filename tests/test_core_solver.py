"""Tests for the public façade (CQASolver)."""

from fractions import Fraction

import pytest

from repro.core import CQASolver
from repro.db import Database, fact
from repro.errors import FragmentError
from repro.query import QueryClass, parse_query


@pytest.fixture
def solver(employee_db, employee_keys):
    return CQASolver(employee_db, employee_keys, rng=0)


class TestStructure:
    def test_total_repairs_and_consistency(self, solver):
        assert solver.total_repairs() == 4
        assert not solver.is_consistent()

    def test_repair_enumeration_and_sampling(self, solver):
        repairs = list(solver.repairs())
        assert len(repairs) == 4
        sampled = solver.sample_repair()
        assert solver.decomposition.is_repair(sampled)

    def test_consistent_database(self, employee_keys):
        database = Database([fact("Employee", 1, "Bob", "HR")])
        solver = CQASolver(database, employee_keys)
        assert solver.is_consistent()
        assert solver.total_repairs() == 1


class TestCounting:
    def test_count_accepts_strings_and_queries(self, solver, same_department_query):
        from_string = solver.count("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)")
        from_query = solver.count(same_department_query)
        assert from_string.satisfying == from_query.satisfying == 2
        assert from_query.exact_frequency == Fraction(1, 2)
        assert not from_query.is_estimate

    def test_count_with_answer_tuple(self, solver):
        result = solver.count(
            parse_query("Employee(1, x, y)", answer_variables=["x", "y"]),
            answer=("Bob", "HR"),
        )
        assert result.satisfying == 2 and result.answer == ("Bob", "HR")

    def test_every_method_is_available(self, solver, same_department_query):
        for method in ("auto", "naive", "certificate", "inclusion-exclusion", "enumeration"):
            assert solver.count(same_department_query, method=method).satisfying == 2
        for method in ("fpras", "karp-luby"):
            result = solver.count(same_department_query, method=method, epsilon=0.1, delta=0.05)
            assert result.is_estimate
            assert abs(result.satisfying - 2) <= 0.4
            with pytest.raises(ValueError):
                result.exact_frequency  # noqa: B018 - property access must raise

    def test_fo_query_falls_back_to_naive(self, solver):
        result = solver.count("NOT Employee(1, 'Bob', 'HR')")
        assert result.method == "naive" and result.satisfying == 2

    def test_randomised_methods_reject_fo_queries(self, solver):
        with pytest.raises(FragmentError):
            solver.count("NOT Employee(1, 'Bob', 'HR')", method="fpras")
        with pytest.raises(FragmentError):
            solver.count("NOT Employee(1, 'Bob', 'HR')", method="karp-luby")

    def test_unknown_method(self, solver, same_department_query):
        with pytest.raises(ValueError):
            solver.count(same_department_query, method="wrong")


class TestFrequenciesAndAnswers:
    def test_frequency(self, solver, same_department_query):
        assert solver.frequency(same_department_query) == Fraction(1, 2)

    def test_answer_ranking_certain_and_possible(self, solver):
        query = "Employee(x, y, 'IT')"
        parsed = parse_query(query, answer_variables=["x"])
        ranking = solver.answer_ranking(parsed)
        assert [entry.answer for entry in ranking][0] == (2,)
        assert solver.certain_answers(parsed) == [(2,)]
        assert set(solver.possible_answers(parsed)) == {(1,), (2,)}

    def test_entails_some_repair(self, solver):
        assert solver.entails_some_repair("Employee(1, x, 'HR')")
        assert not solver.entails_some_repair("Employee(3, x, y)")
        assert solver.entails_some_repair(
            parse_query("Employee(1, x, y)", answer_variables=["x", "y"]), ("Bob", "HR")
        )


class TestDiagnostics:
    def test_positive_query_diagnostics(self, solver, same_department_query):
        diagnostics = solver.diagnostics(same_department_query)
        assert diagnostics.query_class is QueryClass.CQ
        assert diagnostics.keywidth == 2
        assert diagnostics.lambda_level == 2
        assert diagnostics.admits_fpras
        assert diagnostics.disjuncts == 1
        assert "Λ[2]" in str(diagnostics)

    def test_fo_query_diagnostics(self, solver):
        diagnostics = solver.diagnostics("NOT Employee(1, x, y)")
        assert diagnostics.query_class is QueryClass.FIRST_ORDER
        assert diagnostics.lambda_level is None
        assert not diagnostics.admits_fpras

    def test_result_string_rendering(self, solver, same_department_query):
        exact = solver.count(same_department_query)
        estimate = solver.count(same_department_query, method="fpras")
        assert "=" in str(exact) and "≈" in str(estimate)
