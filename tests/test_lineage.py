"""Tests for snapshot lineage (``repro.db.lineage``).

What is pinned here:

* record and chain validation reject malformed histories loudly;
* ``resolve`` handles digests, unique prefixes and negative chain
  indices, and rejects unknown/ambiguous/out-of-range references;
* ``materialise`` replays recorded effective deltas forwards *and*
  backwards (``Delta.inverse``), finds paths across rollbacks, verifies
  the result against the recorded content digest, and refuses corrupt or
  disconnected histories instead of fabricating data.
"""

import pytest

from repro.db import Database, Delta, Lineage, LineageRecord, fact
from repro.errors import LineageError

_KEYS_DIGEST = "k" * 64


def _record(sequence, digest, parent=None, kind="register", delta=None):
    return LineageRecord(
        name="live",
        sequence=sequence,
        digest=digest,
        keys_digest=_KEYS_DIGEST,
        parent_digest=parent,
        kind=kind,
        delta=delta,
        wall_time=float(sequence),
    )


def _chain_of(*databases_and_deltas):
    """Build (databases, lineage) from a root database and deltas."""
    root, *deltas = databases_and_deltas
    databases = [root]
    records = [_record(0, root.content_digest())]
    for sequence, delta in enumerate(deltas, start=1):
        inserted, deleted = delta.effective_against(databases[-1])
        effective = Delta(inserted=inserted, deleted=deleted)
        nxt = databases[-1].apply_delta(effective)
        records.append(
            _record(
                sequence,
                nxt.content_digest(),
                parent=databases[-1].content_digest(),
                kind="delta",
                delta=effective,
            )
        )
        databases.append(nxt)
    return databases, Lineage("live", tuple(records))


def _three_version_chain():
    root = Database([fact("R", 1, "a"), fact("R", 2, "b")]).freeze()
    return _chain_of(
        root,
        Delta(inserted=[fact("R", 3, "c")]),
        Delta(deleted=[fact("R", 1, "a")], inserted=[fact("R", 4, "d")]),
    )


class TestValidation:
    def test_delta_records_need_delta_and_parent(self):
        with pytest.raises(LineageError, match="delta record"):
            _record(0, "a" * 64, kind="delta")
        with pytest.raises(LineageError, match="must not carry"):
            _record(0, "a" * 64, kind="register", delta=Delta())

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(LineageError, match="kind"):
            _record(0, "a" * 64, kind="time-machine")

    def test_chain_must_be_contiguous_and_single_name(self):
        with pytest.raises(LineageError, match="contiguous"):
            Lineage("live", (_record(1, "a" * 64),))
        record = LineageRecord(
            "other", 0, "a" * 64, _KEYS_DIGEST, None, "register", None, 0.0
        )
        with pytest.raises(LineageError, match="cannot join"):
            Lineage("live", (record,))

    def test_append_returns_a_new_chain(self):
        chain = Lineage("live").append(_record(0, "a" * 64))
        longer = chain.append(
            _record(1, "b" * 64, parent="a" * 64, kind="delta", delta=Delta(
                inserted=[fact("R", 1, "x")]))
        )
        assert len(chain) == 1 and len(longer) == 2
        assert longer.head.sequence == 1

    def test_record_json_shape(self):
        payload = _record(
            2,
            "a" * 64,
            parent="b" * 64,
            kind="delta",
            delta=Delta(inserted=[fact("R", 1, "x")]),
        ).to_json()
        assert payload["sequence"] == 2
        assert payload["kind"] == "delta"
        assert (payload["inserted"], payload["deleted"]) == (1, 0)


class TestResolve:
    def test_by_digest_prefix_and_chain_index(self):
        databases, chain = _three_version_chain()
        digests = [database.content_digest() for database in databases]
        assert chain.resolve(digests[1]).sequence == 1
        assert chain.resolve(digests[0][:12]).sequence == 0
        assert chain.resolve(0).digest == digests[2]  # the head
        assert chain.resolve(-2).digest == digests[0]  # two versions ago

    def test_rejects_bad_references(self):
        _, chain = _three_version_chain()
        with pytest.raises(LineageError, match="no recorded snapshot"):
            chain.resolve("f" * 64)
        with pytest.raises(LineageError, match="at least 8 hex"):
            chain.resolve("abc")
        with pytest.raises(LineageError, match="cannot go back"):
            chain.resolve(-99)
        with pytest.raises(LineageError, match="must be <= 0"):
            chain.resolve(3)
        with pytest.raises(LineageError, match="digest or a chain index"):
            chain.resolve(None)
        with pytest.raises(LineageError, match="empty"):
            Lineage("live").resolve(0)

    def test_duplicate_digest_resolves_to_the_latest_record(self):
        databases, chain = _three_version_chain()
        root_digest = databases[0].content_digest()
        rolled = chain.append(
            _record(
                3,
                root_digest,
                parent=databases[2].content_digest(),
                kind="rollback",
            )
        )
        assert rolled.resolve(root_digest).sequence == 3

    def test_ambiguous_prefix_is_rejected(self):
        first = _record(0, "ab" * 32)
        second = _record(
            1,
            "ab" * 4 + "c" * 56,  # shares the first 8 characters
            parent="ab" * 32,
            kind="delta",
            delta=Delta(inserted=[fact("R", 1, "x")]),
        )
        chain = Lineage("live", (first, second))
        with pytest.raises(LineageError, match="ambiguous"):
            chain.resolve("ab" * 4)


class TestMaterialise:
    def test_backwards_from_the_head(self):
        databases, chain = _three_version_chain()
        head = databases[-1]
        for ancestor in databases[:-1]:
            replayed = chain.materialise(head, ancestor.content_digest())
            assert replayed == ancestor
            assert replayed.content_digest() == ancestor.content_digest()

    def test_forwards_from_the_root(self):
        databases, chain = _three_version_chain()
        replayed = chain.materialise(
            databases[0], databases[-1].content_digest()
        )
        assert replayed == databases[-1]

    def test_across_a_rollback_record(self):
        databases, chain = _three_version_chain()
        root, middle, head = databases
        rolled = chain.append(
            _record(
                3,
                root.content_digest(),
                parent=head.content_digest(),
                kind="rollback",
            )
        )
        # The post-rollback head *is* the root state; middle and old head
        # are still reachable through the recorded delta edges.
        assert rolled.materialise(root, middle.content_digest()) == middle
        assert rolled.materialise(root, head.content_digest()) == head

    def test_same_digest_is_identity(self):
        databases, chain = _three_version_chain()
        assert (
            chain.materialise(databases[0], databases[0].content_digest())
            is databases[0]
        )

    def test_disconnected_roots_refuse_to_replay(self):
        databases, chain = _three_version_chain()
        stranger = Database([fact("S", 1, "zzz")]).freeze()
        rerooted = chain.append(
            _record(3, stranger.content_digest(), kind="register")
        )
        with pytest.raises(LineageError, match="no recorded delta chain"):
            rerooted.materialise(stranger, databases[0].content_digest())

    def test_corrupt_chain_fails_the_digest_check(self):
        databases, chain = _three_version_chain()
        records = list(chain.records)
        # Corrupt the recorded delta of step 1 (wrong inserted fact): BFS
        # still finds the "path", but the replay cannot reproduce the
        # recorded digest and must refuse.
        bad = Delta(inserted=[fact("R", 3, "WRONG")])
        records[1] = LineageRecord(
            "live",
            1,
            records[1].digest,
            _KEYS_DIGEST,
            records[1].parent_digest,
            "delta",
            bad,
            1.0,
        )
        corrupt = Lineage("live", tuple(records))
        with pytest.raises(LineageError, match="corrupt"):
            corrupt.materialise(databases[0], databases[1].content_digest())
