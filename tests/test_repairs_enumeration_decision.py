"""Unit tests for repair enumeration, sampling and the decision problem."""

import random

import pytest

from repro.db import BlockDecomposition, Database, PrimaryKeySet, fact
from repro.query import parse_query
from repro.repairs import (
    count_total_repairs,
    decide,
    enumerate_repairs,
    has_entailing_repair,
    has_entailing_repair_bruteforce,
    is_repair,
    sample_repair,
)


class TestEnumeration:
    def test_employee_repairs(self, employee_db, employee_keys):
        repairs = list(enumerate_repairs(employee_db, employee_keys))
        assert len(repairs) == 4
        assert count_total_repairs(employee_db, employee_keys) == 4
        # Repairs are pairwise distinct and each is a genuine repair.
        assert len({frozenset(repair.facts()) for repair in repairs}) == 4
        for repair in repairs:
            assert is_repair(repair, employee_db, employee_keys)
            assert employee_keys.is_consistent(repair)

    def test_limit(self, employee_db, employee_keys):
        assert len(list(enumerate_repairs(employee_db, employee_keys, limit=2))) == 2

    def test_consistent_database_has_one_repair(self, employee_keys):
        database = Database([fact("Employee", 1, "Bob", "HR")])
        repairs = list(enumerate_repairs(database, employee_keys))
        assert len(repairs) == 1
        assert repairs[0] == database

    def test_empty_database_has_one_empty_repair(self, employee_keys):
        repairs = list(enumerate_repairs(Database(), employee_keys))
        assert len(repairs) == 1
        assert len(repairs[0]) == 0

    def test_sampled_repairs_are_repairs(self, employee_db, employee_keys):
        rng = random.Random(5)
        for _ in range(20):
            repair = sample_repair(employee_db, employee_keys, rng=rng)
            assert is_repair(repair, employee_db, employee_keys)

    def test_sampling_is_roughly_uniform(self, employee_db, employee_keys):
        rng = random.Random(11)
        decomposition = BlockDecomposition(employee_db, employee_keys)
        counts = {}
        for _ in range(2000):
            repair = sample_repair(
                employee_db, employee_keys, rng=rng, decomposition=decomposition
            )
            counts[frozenset(repair.facts())] = counts.get(frozenset(repair.facts()), 0) + 1
        assert len(counts) == 4
        for value in counts.values():
            assert 350 < value < 650  # expectation 500, generous tolerance


class TestDecision:
    def test_lemma_3_5_on_the_employee_example(
        self, employee_db, employee_keys, same_department_query
    ):
        assert has_entailing_repair(employee_db, employee_keys, same_department_query)
        assert has_entailing_repair_bruteforce(
            employee_db, employee_keys, same_department_query
        )

    def test_unsatisfiable_query(self, employee_db, employee_keys):
        query = parse_query("Employee(3, x, y)")
        assert not has_entailing_repair(employee_db, employee_keys, query)
        assert not has_entailing_repair_bruteforce(employee_db, employee_keys, query)

    def test_certificate_requires_consistent_image(self, employee_keys):
        # The query needs two facts from the same block: no repair can hold both.
        database = Database(
            [fact("Employee", 1, "Bob", "HR"), fact("Employee", 1, "Bob", "IT")]
        )
        query = parse_query(
            "EXISTS x, y . Employee(1, x, 'HR') AND Employee(1, y, 'IT')"
        )
        assert not has_entailing_repair(database, employee_keys, query)
        assert not has_entailing_repair_bruteforce(database, employee_keys, query)

    def test_decide_dispatches_on_fragment(self, employee_db, employee_keys):
        positive = parse_query("Employee(1, x, y)")
        negative = parse_query("NOT Employee(1, 'Bob', 'HR')")
        assert decide(employee_db, employee_keys, positive)
        assert decide(employee_db, employee_keys, negative)  # some repair drops HR

    def test_decision_agreement_on_random_instances(self, employee_keys):
        from tests.conftest import small_random_instance
        from repro.workloads import random_conjunctive_query

        for seed in range(5):
            database, keys = small_random_instance(seed=seed, blocks=5)
            query = random_conjunctive_query({"R": 2, "S": 2}, keys, 2, seed=seed)
            fast = has_entailing_repair(database, keys, query)
            slow = has_entailing_repair_bruteforce(database, keys, query)
            assert fast == slow
