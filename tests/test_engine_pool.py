"""Unit tests for the batch engine: caches, jobs, job files, SolverPool."""

from __future__ import annotations

import json

import pytest

from repro.db import Database, PrimaryKeySet, database_to_json, fact
from repro.engine import (
    BatchReport,
    CountJob,
    LRUCache,
    SolverPool,
    aggregate_cache_stats,
    load_job_file,
    parse_job_document,
)
from repro.errors import BatchSpecError, EngineError
from repro.workloads import batch_workload, employee_example

_SAME_DEPARTMENT = "EXISTS x, y, z. (Employee(1, x, y) AND Employee(2, z, y))"


class TestLRUCache:
    def test_get_or_compute_hits_and_misses(self):
        cache = LRUCache(4)
        value, hit = cache.get_or_compute("a", lambda: 1)
        assert (value, hit) == (1, False)
        value, hit = cache.get_or_compute("a", lambda: 2)
        assert (value, hit) == (1, True)
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get_or_compute("a", lambda: -1)  # refresh a
        cache.put("c", 3)  # evicts b
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats()["evictions"] == 1

    def test_zero_maxsize_disables_caching(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert "a" not in cache
        _, hit = cache.get_or_compute("a", lambda: 1)
        assert not hit
        assert len(cache) == 0

    def test_discard_where_drops_matching_prefix(self):
        cache = LRUCache(8)
        cache.put(("db1", "q1"), 1)
        cache.put(("db1", "q2"), 2)
        cache.put(("db2", "q1"), 3)
        dropped = cache.discard_where(lambda key: key[0] == "db1")
        assert dropped == 2
        assert ("db2", "q1") in cache and len(cache) == 1

    def test_clear_drops_entries_but_keeps_lifetime_counters(self):
        cache = LRUCache(4)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("a", lambda: 1)
        cache.clear()
        assert len(cache) == 0 and "a" not in cache
        stats = cache.stats()
        assert stats == {
            "size": 0,
            "maxsize": 4,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
        }

    def test_items_does_not_touch_recency_or_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.items() == (("a", 1), ("b", 2))
        cache.put("c", 3)  # "a" is still the LRU entry: items must not refresh
        assert "a" not in cache and "b" in cache
        assert cache.stats()["hits"] == 0

    def test_pool_cache_stats_come_from_the_cache_layers(self):
        pool = SolverPool()
        pool.register_scenario(employee_example())
        pool.run_job(CountJob(database="employee-example", query=_SAME_DEPARTMENT))
        stats = pool.cache_stats()
        assert set(stats) == {"query", "decomposition", "selectors"}
        for layer in stats.values():
            assert set(layer) == {"size", "maxsize", "hits", "misses", "evictions"}


class TestCountJob:
    def test_rejects_unknown_method(self):
        with pytest.raises(BatchSpecError):
            CountJob(database="d", query="R(x)", method="magic")

    def test_rejects_empty_database_and_query(self):
        with pytest.raises(BatchSpecError):
            CountJob(database="", query="R(x)")
        with pytest.raises(BatchSpecError):
            CountJob(database="d", query="")

    def test_from_json_rejects_unknown_and_missing_fields(self):
        with pytest.raises(BatchSpecError):
            CountJob.from_json({"database": "d", "query": "R(x)", "surprise": 1})
        with pytest.raises(BatchSpecError):
            CountJob.from_json({"database": "d"})
        with pytest.raises(BatchSpecError):
            CountJob.from_json({"database": "d", "query": "R(x)", "seed": "yes"})
        with pytest.raises(BatchSpecError):
            CountJob.from_json([1, 2])

    def test_json_round_trip(self):
        job = CountJob(
            database="hr",
            query="Employee(1, x, y)",
            answer_variables=("x", "y"),
            answer=("Bob", "HR"),
            method="fpras",
            epsilon=0.2,
            delta=0.1,
            seed=9,
            label="demo",
        )
        assert CountJob.from_json(job.to_json()) == job

    def test_effective_seed_explicit_wins_and_derived_is_stable(self):
        explicit = CountJob(database="d", query="R(x)", seed=5)
        assert explicit.effective_seed(0) == explicit.effective_seed(99) == 5
        derived = CountJob(database="d", query="R(x)", method="fpras")
        assert derived.effective_seed(3) == derived.effective_seed(3)
        assert derived.effective_seed(3) != derived.effective_seed(4)


class TestSolverPool:
    @pytest.fixture
    def pool(self):
        pool = SolverPool()
        pool.register_scenario(employee_example())
        return pool

    def test_unknown_database_raises(self, pool):
        with pytest.raises(EngineError, match="unknown database"):
            pool.run_job(CountJob(database="nope", query="R(x)"))

    def test_invalid_worker_count_raises(self, pool):
        with pytest.raises(EngineError):
            pool.run(
                [CountJob(database="employee-example", query=_SAME_DEPARTMENT)],
                workers=0,
            )

    def test_cache_provenance_cold_then_warm(self, pool):
        job = CountJob(database="employee-example", query=_SAME_DEPARTMENT)
        cold = pool.run_job(job)
        assert set(cold.cache_misses) == {"query", "decomposition", "selectors"}
        assert cold.cache_hits == ()
        warm = pool.run_job(job)
        assert set(warm.cache_hits) == {"query", "decomposition", "selectors"}
        assert warm.cache_misses == ()
        assert (cold.satisfying, cold.total) == (warm.satisfying, warm.total) == (2, 4)

    def test_naive_jobs_skip_the_selector_layer(self, pool):
        job = CountJob(database="employee-example", query=_SAME_DEPARTMENT, method="naive")
        result = pool.run_job(job)
        assert "selectors" not in result.cache_hits + result.cache_misses
        assert result.satisfying == 2

    def test_reregistering_a_name_invalidates_its_state(self, pool):
        job = CountJob(database="employee-example", query=_SAME_DEPARTMENT)
        assert pool.run_job(job).satisfying == 2
        # Replace the snapshot with a consistent single-fact database.
        pool.register(
            "employee-example",
            Database([fact("Employee", 1, "Bob", "HR")]),
            PrimaryKeySet.from_dict({"Employee": [1]}),
        )
        fresh = pool.run_job(job)
        assert fresh.total == 1
        assert fresh.satisfying == 0
        assert "decomposition" in fresh.cache_misses
        assert "selectors" in fresh.cache_misses

    def test_answer_bound_jobs(self, pool):
        job = CountJob(
            database="employee-example",
            query="Employee(1, x, y)",
            answer_variables=("x", "y"),
            answer=("Bob", "HR"),
        )
        result = pool.run_job(job)
        assert (result.satisfying, result.total) == (2, 4)

    def test_report_shape_and_stats(self, pool):
        jobs = [
            CountJob(database="employee-example", query=_SAME_DEPARTMENT),
            CountJob(
                database="employee-example",
                query=_SAME_DEPARTMENT,
                method="fpras",
                epsilon=0.3,
                delta=0.2,
            ),
        ]
        report = pool.run(jobs)
        assert isinstance(report, BatchReport)
        assert len(report) == 2 and report.workers == 1
        assert report.jobs_per_second > 0
        payload = report.to_json()
        assert set(payload) == {"jobs", "summary"}
        assert payload["summary"]["jobs"] == 2
        assert set(payload["summary"]["cache"]) == {
            "query",
            "decomposition",
            "decomposition-disk",
            "selectors",
            "selectors-disk",
            "exact",
        }
        json.dumps(payload)  # must be JSON-serialisable as-is
        stats = aggregate_cache_stats(report.results)
        assert stats["query"]["hits"] == 1  # second job reuses the parsed query


class TestJobFiles:
    def test_parse_rejects_non_object_documents(self):
        for document in ([], "x", 3, {"jobs": []}, {"databases": {}}):
            with pytest.raises(BatchSpecError):
                parse_job_document(document)

    def test_parse_rejects_unknown_sections_and_bad_databases(self):
        with pytest.raises(BatchSpecError, match="unknown job-file sections"):
            parse_job_document({"databases": {"d": {}}, "jobs": [{}], "extra": 1})
        with pytest.raises(BatchSpecError, match="could not be loaded"):
            parse_job_document(
                {"databases": {"d": {"path": "/nonexistent/db.json"}}, "jobs": [{"database": "d", "query": "R(x)"}]}
            )

    def test_parse_rejects_jobs_referencing_unknown_databases(self):
        scenario = employee_example()
        document = {
            "databases": {"emp": database_to_json(scenario.database, scenario.keys)},
            "jobs": [{"database": "ghost", "query": _SAME_DEPARTMENT}],
        }
        with pytest.raises(BatchSpecError, match="unknown database"):
            parse_job_document(document)

    def test_load_job_file_with_path_reference(self, tmp_path):
        scenario = employee_example()
        db_path = tmp_path / "emp.json"
        db_path.write_text(
            json.dumps(database_to_json(scenario.database, scenario.keys))
        )
        job_path = tmp_path / "jobs.json"
        job_path.write_text(
            json.dumps(
                {
                    "databases": {"emp": {"path": "emp.json"}},
                    "jobs": [{"database": "emp", "query": _SAME_DEPARTMENT}],
                }
            )
        )
        databases, jobs = load_job_file(job_path)
        assert sorted(databases) == ["emp"]
        assert len(databases["emp"][0]) == 4
        assert jobs[0].method == "auto"

    def test_load_job_file_missing_or_invalid(self, tmp_path):
        with pytest.raises(BatchSpecError, match="cannot read"):
            load_job_file(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all")
        with pytest.raises(BatchSpecError, match="not valid JSON"):
            load_job_file(bad)


class TestBatchWorkload:
    def test_generator_is_deterministic_and_runnable(self):
        databases_a, jobs_a = batch_workload(jobs=10, seed=4)
        databases_b, jobs_b = batch_workload(jobs=10, seed=4)
        assert jobs_a == jobs_b
        assert sorted(databases_a) == sorted(databases_b)
        pool = SolverPool()
        for name, (database, keys) in databases_a.items():
            pool.register(name, database, keys)
        report = pool.run(jobs_a)
        assert len(report) == 10
        rerun = pool.run(jobs_a)
        assert rerun.counts() == report.counts()

    def test_different_seeds_differ(self):
        _, jobs_a = batch_workload(jobs=10, seed=1)
        _, jobs_b = batch_workload(jobs=10, seed=2)
        assert jobs_a != jobs_b
