"""Unit and property tests for UCQ rewriting and answer substitution."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.db import Database, fact
from repro.errors import FragmentError
from repro.query import (
    bind_answer,
    holds,
    parse_query,
    to_ucq,
    ucq_to_query,
)


class TestUcqRewriting:
    def test_cq_is_single_disjunct(self):
        ucq = to_ucq(parse_query("R(x, y) AND S(y)"))
        assert len(ucq) == 1
        assert len(ucq.disjuncts[0].atoms) == 2

    def test_disjunction_splits(self):
        ucq = to_ucq(parse_query("R(x) OR S(x)"))
        assert len(ucq) == 2

    def test_distribution_of_and_over_or(self):
        ucq = to_ucq(parse_query("R(x) AND (S(x) OR T(x))"))
        assert len(ucq) == 2
        for disjunct in ucq:
            relations = {a.relation for a in disjunct.atoms}
            assert "R" in relations

    def test_duplicate_disjuncts_collapse(self):
        ucq = to_ucq(parse_query("R(x) OR R(y)"))
        assert len(ucq) == 1

    def test_equality_elimination_grounds_variables(self):
        ucq = to_ucq(parse_query("EXISTS x . R(x) AND x = 1"))
        assert len(ucq) == 1
        assert ucq.disjuncts[0].atoms[0].terms == (1,)

    def test_contradictory_equalities_drop_the_disjunct(self):
        ucq = to_ucq(parse_query("(R(x) AND 1 = 2) OR S(x)"))
        assert len(ucq) == 1
        assert ucq.disjuncts[0].atoms[0].relation == "S"

    def test_true_disjunct_subsumes_everything(self):
        ucq = to_ucq(parse_query("TRUE OR R(x)"))
        assert ucq.is_trivially_true
        assert len(ucq) == 1

    def test_false_query_is_unsatisfiable(self):
        ucq = to_ucq(parse_query("FALSE"))
        assert ucq.is_unsatisfiable

    def test_negation_is_rejected(self):
        with pytest.raises(FragmentError):
            to_ucq(parse_query("NOT R(x)"))

    def test_round_trip_preserves_semantics(self):
        database = Database(
            [fact("R", 1, 2), fact("S", 2), fact("T", 3), fact("R", 3, 3)]
        )
        texts = [
            "R(x, y) AND S(y)",
            "R(x, y) AND (S(y) OR T(x))",
            "R(x, x) OR S(x)",
            "EXISTS x . R(x, x) AND (S(x) OR T(x))",
        ]
        for text in texts:
            query = parse_query(text)
            rewritten = ucq_to_query(to_ucq(query))
            assert holds(query, database) == holds(rewritten, database)

    def test_answer_bindings_on_non_boolean_disjunct(self):
        query = parse_query("R(x) AND x = 1", answer_variables=["x"])
        ucq = to_ucq(query)
        assert ucq.disjuncts[0].answer_bindings == ((query.answer_variables[0], 1),)


class TestBindAnswer:
    def test_binding_makes_the_query_boolean(self):
        query = parse_query("Employee(1, x, y)", answer_variables=["x", "y"])
        bound = bind_answer(query, ("Bob", "HR"))
        assert bound.is_boolean
        assert bound.atoms()[0].terms == (1, "Bob", "HR")

    def test_binding_respects_arity(self):
        query = parse_query("Employee(1, x, y)", answer_variables=["x", "y"])
        with pytest.raises(Exception):
            bind_answer(query, ("Bob",))

    def test_bound_query_evaluates_like_membership(self, employee_db):
        query = parse_query("Employee(1, x, y)", answer_variables=["x", "y"])
        assert holds(bind_answer(query, ("Bob", "HR")), employee_db)
        assert not holds(bind_answer(query, ("Bob", "Sales")), employee_db)

    def test_shadowed_variables_are_not_substituted(self):
        query = parse_query("EXISTS x . R(x) AND S(y)", answer_variables=["y"], auto_close=False)
        bound = bind_answer(query, (7,))
        # The bound variable x must remain a variable.
        atoms = {a.relation: a for a in bound.atoms()}
        assert atoms["S"].terms == (7,)
        assert atoms["R"].variables()


# --------------------------------------------------------------------------- #
# property: rewriting preserves truth on random small databases
# --------------------------------------------------------------------------- #
_r_fact = st.builds(lambda a, b: fact("R", a, b), st.integers(0, 3), st.integers(0, 3))
_s_fact = st.builds(lambda a: fact("S", a), st.integers(0, 3))


@given(st.lists(_r_fact, max_size=8), st.lists(_s_fact, max_size=4))
@settings(max_examples=50, deadline=None)
def test_rewriting_preserves_truth(r_facts, s_facts):
    database = Database(r_facts + s_facts)
    if not len(database):
        return
    for text in ("R(x, y) AND S(y)", "R(x, x) OR S(x)", "R(x, y) AND (S(x) OR S(y))"):
        query = parse_query(text)
        assert holds(query, database) == holds(ucq_to_query(to_ucq(query)), database)
