"""Regression tests for the serving path's failure-handling bugs.

Each test here reproduces a bug this PR fixed — against the old code
every one of them fails:

* :meth:`AsyncServer.run_stream` used to abandon already-dispatched
  futures when a mid-stream ``dispatch`` raised (overload under
  ``"reject"``, unknown database): their slots never settled and their
  exceptions died as "exception was never retrieved".  Now the futures
  are cancelled-or-drained before the error propagates, and a job
  failure surfaces deterministically (lowest stream index) after every
  other job ran to completion.
* :meth:`AsyncServer.results` had the same abandonment on early exit and
  could not report a failing element without tearing the stream down;
  ``on_error="yield"`` now emits :class:`StreamFailure` in band.
* :meth:`AsyncServer.stop` dropped the queue semaphore while completion
  callbacks were still queued on the loop, so ``in_flight``/``completed``
  drifted permanently after a stop with in-flight jobs.
* :meth:`Shard.stop` skipped clearing ``_pending_registrations`` when a
  failed late registration raised, so a *second* ``stop`` re-raised the
  same stale error; and a failed registration behind an unfinished one
  was never surfaced at all.
"""

import asyncio
import concurrent.futures

import pytest

from repro.engine import CountJob
from repro.errors import (
    EngineError,
    LineageError,
    ServerError,
    ServerOverloadedError,
)
from repro.server import AsyncServer, Shard, StreamFailure
from repro.workloads import employee_example

_EMPLOYEE_QUERY = "EXISTS x, y, z . (Employee(1, x, y) AND Employee(2, z, y))"


def _employee_server(**kwargs) -> AsyncServer:
    scenario = employee_example()
    server = AsyncServer(**kwargs)
    server.register("emp", scenario.database, scenario.keys)
    return server


def _job(**kwargs) -> CountJob:
    return CountJob(database="emp", query=_EMPLOYEE_QUERY, **kwargs)


#: An as_of reference that parses but names no recorded snapshot: the job
#: dispatches fine and fails at execution time with LineageError.
_UNKNOWN_AS_OF = "0" * 12


class TestRunStreamDrainsOnDispatchFailure:
    def test_overload_mid_stream_drains_dispatched_futures(self):
        async def run():
            server = _employee_server(shards=1, queue_limit=1, policy="reject")
            async with server:
                with pytest.raises(ServerOverloadedError):
                    # Job 0 takes the only slot; dispatching job 1 raises
                    # mid-stream.  The old code left job 0's future
                    # abandoned: its slot never released, in_flight stuck
                    # at 1, its exception unretrieved.
                    await server.run_stream([_job(), _job()])
                assert server.in_flight == 0
                # Job 0 was cancelled-or-drained: completed if the worker
                # had already picked it up, cleanly cancelled otherwise —
                # either way its slot settled and nothing leaked.
                assert server.completed in (0, 1)
                # The slot is free again: the server still serves.
                result = await server.submit(_job())
                assert (result.satisfying, result.total) == (2, 4)

        asyncio.run(run())

    def test_unknown_database_mid_stream_drains_dispatched_futures(self):
        async def run():
            server = _employee_server(shards=1, queue_limit=4)
            async with server:
                with pytest.raises(EngineError, match="ghost"):
                    await server.run_stream(
                        [_job(), CountJob(database="ghost", query="R(x)")]
                    )
                assert server.in_flight == 0
                assert server.completed in (0, 1)  # drained, never leaked
                result = await server.submit(_job())
                assert result.satisfying == 2

        asyncio.run(run())

    def test_job_failure_surfaces_lowest_index_after_full_drain(self):
        async def run():
            server = _employee_server(shards=1, queue_limit=4)
            async with server:
                # Index 1 fails at execution; indexes 0 and 2 succeed.
                with pytest.raises(LineageError):
                    await server.run_stream(
                        [_job(), _job(as_of=_UNKNOWN_AS_OF), _job()]
                    )
                # Deterministic drain: every job finished, nothing in flight.
                assert server.in_flight == 0
                assert server.completed == 2

        asyncio.run(run())


class TestResultsFailureModes:
    def test_raise_mode_drains_pending_on_first_failure(self):
        async def run():
            server = _employee_server(shards=1, queue_limit=4)
            async with server:
                consumed = []
                with pytest.raises(LineageError):
                    async for outcome in server.results(
                        [_job(as_of=_UNKNOWN_AS_OF), _job(), _job()]
                    ):
                        consumed.append(outcome)
                assert server.in_flight == 0  # pending futures were drained
                # The failure struck before any result was surfaced (the
                # failing element has the lowest stream index).
                assert consumed == []

        asyncio.run(run())

    def test_yield_mode_reports_failure_in_band_and_keeps_flowing(self):
        async def run():
            server = _employee_server(shards=1, queue_limit=4)
            async with server:
                outcomes = [
                    outcome
                    async for outcome in server.results(
                        [_job(), _job(as_of=_UNKNOWN_AS_OF), _job()],
                        on_error="yield",
                    )
                ]
                failures = [o for o in outcomes if isinstance(o, StreamFailure)]
                results = [o for o in outcomes if not isinstance(o, StreamFailure)]
                assert len(outcomes) == 3  # nothing dropped, nothing extra
                assert [f.index for f in failures] == [1]
                assert isinstance(failures[0].error, LineageError)
                assert sorted(r.index for r in results) == [0, 2]
                assert server.in_flight == 0

        asyncio.run(run())

    def test_yield_mode_reports_dispatch_failures_in_band(self):
        async def run():
            server = _employee_server(shards=1, queue_limit=4)
            async with server:
                outcomes = [
                    outcome
                    async for outcome in server.results(
                        [_job(), CountJob(database="ghost", query="R(x)")],
                        on_error="yield",
                    )
                ]
                failures = [o for o in outcomes if isinstance(o, StreamFailure)]
                assert [f.index for f in failures] == [1]
                assert isinstance(failures[0].error, EngineError)
                assert server.in_flight == 0

        asyncio.run(run())

    def test_abandoned_iterator_drains_pending(self):
        async def run():
            server = _employee_server(shards=1, queue_limit=4)
            async with server:
                iterator = server.results([_job(), _job(), _job()])
                async for _ in iterator:
                    break  # the consumer walks away mid-stream
                await iterator.aclose()
                assert server.in_flight == 0
                # The server still serves after the abandonment.
                result = await server.submit(_job())
                assert result.satisfying == 2

        asyncio.run(run())

    def test_rejects_unknown_on_error_mode(self):
        async def run():
            async with _employee_server(shards=1) as server:
                with pytest.raises(ServerError, match="on_error"):
                    async for _ in server.results([_job()], on_error="ignore"):
                        pass

        asyncio.run(run())


class TestStopCounterConsistency:
    def test_stop_settles_counters_before_returning(self):
        async def run():
            server = _employee_server(shards=1, queue_limit=8)
            await server.start()
            futures = [await server.dispatch(_job(), i) for i in range(4)]
            # Stop without awaiting the futures: the old code dropped the
            # semaphore while completion callbacks were still queued, so
            # in_flight stayed >0 and completed undercounted forever.
            await server.stop()
            assert server.in_flight == 0
            assert server.completed == 4
            for future in futures:
                assert future.done() and future.exception() is None

        asyncio.run(run())


class TestRejectBoundary:
    def test_reject_fires_exactly_at_full_queue_and_recovers(self):
        async def run():
            server = _employee_server(shards=1, queue_limit=2, policy="reject")
            async with server:
                first = await server.dispatch(_job(), 0)
                second = await server.dispatch(_job(), 1)  # exactly full: accepted
                with pytest.raises(ServerOverloadedError):
                    await server.dispatch(_job(), 2)  # one past full: rejected
                assert server.rejected == 1
                await asyncio.gather(first, second)
                # Slots freed: the boundary resets.
                result = await server.submit(_job())
                assert result.satisfying == 2
                assert server.rejected == 1  # no spurious rejections

        asyncio.run(run())


class TestStaleRegistrationErrors:
    def _failed_future(self, message: str) -> "concurrent.futures.Future":
        future: "concurrent.futures.Future" = concurrent.futures.Future()
        future.set_exception(RuntimeError(message))
        return future

    def test_failure_behind_unfinished_registration_still_surfaces(self):
        shard = Shard(0)
        unfinished: "concurrent.futures.Future" = concurrent.futures.Future()
        shard._pending_registrations.extend(
            [unfinished, self._failed_future("bad keys")]
        )
        # The old head-only loop stopped at the unfinished future and let
        # the completed failure behind it pass silently.
        with pytest.raises(ServerError, match="bad keys"):
            shard._raise_failed_registrations()
        # The unfinished future is still tracked; the failed one is gone.
        assert shard._pending_registrations == [unfinished]
        unfinished.set_result(None)

    def test_second_stop_does_not_rereaise_stale_error(self):
        shard = Shard(0)
        shard._pending_registrations.append(self._failed_future("bad keys"))
        with pytest.raises(ServerError, match="bad keys"):
            shard.stop()
        # The old code skipped the clear when the raise fired, so a
        # second stop re-raised the same stale error.
        shard.stop()  # must be clean
        assert shard._pending_registrations == []

    def test_error_is_raised_exactly_once_across_probes(self):
        shard = Shard(0)
        shard._pending_registrations.append(self._failed_future("bad keys"))
        with pytest.raises(ServerError, match="bad keys"):
            shard._raise_failed_registrations()
        shard._raise_failed_registrations()  # consumed: no re-raise
