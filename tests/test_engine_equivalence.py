"""Cross-method equivalence harness for the counting engine.

The library implements the same quantity — #CQA(Q, Σ) — four exact ways
(naive repair enumeration, certificate/union-of-boxes with the decomposed,
inclusion-exclusion and enumeration strategies) and two randomised ways
(the paper's FPRAS and the Karp–Luby baseline).  That redundancy is a free
metamorphic oracle: on random instances all exact methods must agree
exactly, the randomised ones must land in their (ε, δ) band, and the batch
engine must reproduce the sequential results bit for bit, cached or pooled.
"""

from __future__ import annotations

import pytest

from repro.core.solver import count_query
from repro.engine import CountJob, SolverPool
from repro.query import parse_query
from repro.workloads import InconsistentDatabaseSpec, random_inconsistent_database

EXACT_METHODS = ("naive", "certificate", "inclusion-exclusion", "enumeration")
INSTANCE_SEEDS = tuple(range(30))
EPSILON = 0.3
DELTA = 0.1

_RELATIONS = {"R": 2, "S": 3}


def make_instance(seed: int):
    """One seeded random inconsistent database, small enough for ``naive``."""
    spec = InconsistentDatabaseSpec(
        relations=_RELATIONS,
        blocks_per_relation=5,
        conflict_rate=0.5,
        max_block_size=3,
        domain_size=5,
    )
    return random_inconsistent_database(spec, seed=seed)


def make_query(seed: int):
    """A constant-anchored ∃FO+ query (anchoring keeps certificates sparse)."""
    anchor = f"v{seed % 5}"
    other = f"v{(seed + 2) % 5}"
    texts = (
        f"EXISTS x. R(x, '{anchor}')",
        f"EXISTS x, y, z. (R(x, '{anchor}') AND S(y, '{other}', z))",
        f"(EXISTS x. R(x, '{anchor}') OR EXISTS y, z. S(y, z, '{other}'))",
    )
    return texts[seed % len(texts)]


def exact_counts(seed: int):
    """The per-method CQAResults of instance ``seed`` (exact methods only)."""
    database, keys = make_instance(seed)
    query = parse_query(make_query(seed))
    return {
        method: count_query(database, keys, query, method=method)
        for method in EXACT_METHODS
    }


@pytest.mark.parametrize("seed", INSTANCE_SEEDS)
def test_exact_methods_agree(seed):
    """naive == certificate == inclusion-exclusion == enumeration, exactly."""
    results = exact_counts(seed)
    counts = {method: result.satisfying for method, result in results.items()}
    assert len(set(counts.values())) == 1, f"seed {seed}: methods disagree: {counts}"
    totals = {result.total for result in results.values()}
    assert len(totals) == 1


@pytest.mark.parametrize("seed", INSTANCE_SEEDS)
@pytest.mark.parametrize("method", ("fpras", "karp-luby"))
def test_randomised_methods_land_in_band(seed, method):
    """Seeded estimates respect |est − exact| ≤ ε·exact (0 stays 0 exactly).

    Each single run fails its band with probability at most δ; the seeds
    here are pinned, so these are deterministic regression checks that the
    estimators keep drawing the samples that (verifiably) satisfy the
    guarantee.
    """
    database, keys = make_instance(seed)
    query = parse_query(make_query(seed))
    truth = count_query(database, keys, query, method="naive").satisfying
    estimate = count_query(
        database, keys, query, method=method, epsilon=EPSILON, delta=DELTA, rng=seed
    )
    assert estimate.is_estimate
    if truth == 0:
        assert estimate.satisfying == 0
    else:
        assert abs(estimate.satisfying - truth) <= EPSILON * truth, (
            f"seed {seed} {method}: {estimate.satisfying} vs exact {truth}"
        )


# --------------------------------------------------------------------- #
# the same suite through the batch engine
# --------------------------------------------------------------------- #
def _suite_jobs():
    """Every (instance, method) pair of the suite as engine jobs."""
    jobs = []
    for seed in INSTANCE_SEEDS:
        for method in EXACT_METHODS + ("fpras", "karp-luby"):
            jobs.append(
                CountJob(
                    database=f"inst-{seed}",
                    query=make_query(seed),
                    method=method,
                    epsilon=EPSILON,
                    delta=DELTA,
                    seed=seed,
                )
            )
    return jobs


@pytest.fixture(scope="module")
def suite_pool():
    pool = SolverPool()
    for seed in INSTANCE_SEEDS:
        database, keys = make_instance(seed)
        pool.register(f"inst-{seed}", database, keys)
    return pool


def test_pool_matches_direct_calls(suite_pool):
    """Batch results are bit-identical to direct count_query calls."""
    jobs = _suite_jobs()
    report = suite_pool.run(jobs)
    assert len(report) == len(jobs)
    for index, (job, result) in enumerate(zip(jobs, report.results)):
        database, keys = make_instance(int(job.database.split("-")[1]))
        direct = count_query(
            database,
            keys,
            parse_query(job.query),
            method=job.method,
            epsilon=job.epsilon,
            delta=job.delta,
            rng=job.effective_seed(index),
        )
        assert result.satisfying == direct.satisfying, (index, job)
        assert result.total == direct.total
        assert result.method == direct.method
        assert result.is_estimate == direct.is_estimate


def test_pooled_run_bit_identical_to_sequential(suite_pool):
    """workers=2 produces exactly the sequential counts, in order."""
    jobs = _suite_jobs()
    sequential = suite_pool.run(jobs)
    pooled = suite_pool.run(jobs, workers=2)
    assert pooled.workers == 2
    assert {result.worker for result in pooled.results} != {"sequential"}
    assert pooled.counts() == sequential.counts()


def test_cached_rerun_bit_identical(suite_pool):
    """A warm-cache rerun changes provenance, never counts."""
    jobs = _suite_jobs()[:40]
    first = suite_pool.run(jobs)
    second = suite_pool.run(jobs)
    assert second.counts() == first.counts()
    # The second pass must be fully warm: every layer hit on every job.
    for result in second.results:
        assert result.cache_misses == ()
