"""Tests for forbidden colourings and the guess-check-expand graph problems."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.problems import (
    ForbiddenColoringCompactor,
    ForbiddenColoringInstance,
    Graph,
    count_forbidden_colorings,
    count_non_colorings,
    count_non_independent_sets,
    count_non_vertex_covers,
    non_proper_coloring_instance,
)
from repro.workloads import random_forbidden_coloring, random_graph


class TestForbiddenColoring:
    def test_simple_instance(self):
        instance = ForbiddenColoringInstance(
            colors={"u": ["r", "g"], "v": ["r", "g"]},
            edges=[("u", "v")],
            forbidden=[[{"u": "r", "v": "r"}]],
        )
        assert instance.total_colorings() == 4
        assert count_forbidden_colorings(instance) == 1
        assert instance.count_bruteforce() == 1

    def test_non_proper_colorings_of_a_triangle(self):
        instance = non_proper_coloring_instance(
            ["a", "b", "c"], [("a", "b"), ("b", "c"), ("a", "c")]
        )
        # 3^3 = 27 colourings, 6 proper 3-colourings of a triangle -> 21 improper.
        assert count_forbidden_colorings(instance) == 21
        assert instance.count_bruteforce() == 21

    def test_validation_errors(self):
        with pytest.raises(ReproError):
            ForbiddenColoringInstance(
                colors={"u": []}, edges=[], forbidden=[]
            )
        with pytest.raises(ReproError):
            ForbiddenColoringInstance(
                colors={"u": ["r"]},
                edges=[("u",)],
                forbidden=[[{"u": "blue"}]],  # colour not in the list
            )
        with pytest.raises(ReproError):
            ForbiddenColoringInstance(
                colors={"u": ["r"], "v": ["r"]},
                edges=[("u", "v")],
                forbidden=[[{"u": "r"}]],  # does not cover the edge
            )

    def test_uniformity_and_compactor_verify(self):
        instance = random_forbidden_coloring(6, 5, 3, 3, 2, seed=4)
        assert instance.uniformity == 3
        assert instance.is_uniform()
        ForbiddenColoringCompactor(k=instance.uniformity).verify(instance)

    @pytest.mark.parametrize("seed", range(5))
    def test_exact_matches_bruteforce_random(self, seed):
        instance = random_forbidden_coloring(6, 5, 2, 3, 2, seed=seed)
        assert count_forbidden_colorings(instance) == instance.count_bruteforce()


class TestGraphProblems:
    def _path(self):
        return Graph(["a", "b", "c", "d"], [("a", "b"), ("b", "c"), ("c", "d")])

    def test_graph_validation(self):
        with pytest.raises(ReproError):
            Graph(["a"], [("a", "a")])
        with pytest.raises(ReproError):
            Graph(["a"], [("a", "b")])
        with pytest.raises(ReproError):
            Graph(["a", "a"], [])

    def test_edges_are_normalised(self):
        graph = Graph(["a", "b"], [("b", "a"), ("a", "b")])
        assert graph.edges == (("a", "b"),)

    def test_non_independent_sets_on_a_path(self):
        graph = self._path()
        expected = sum(1 for subset in graph.subsets() if not graph.is_independent(subset))
        assert count_non_independent_sets(graph) == expected == 8

    def test_non_vertex_covers_on_a_path(self):
        graph = self._path()
        expected = sum(1 for subset in graph.subsets() if not graph.is_vertex_cover(subset))
        assert count_non_vertex_covers(graph) == expected

    def test_non_3_colorings_of_a_triangle(self):
        triangle = Graph(["a", "b", "c"], [("a", "b"), ("b", "c"), ("a", "c")])
        assert count_non_colorings(triangle, colors=3) == 21

    def test_graph_without_edges_has_no_bad_objects(self):
        graph = Graph(["a", "b"], [])
        assert count_non_independent_sets(graph) == 0
        assert count_non_vertex_covers(graph) == 0
        assert count_non_colorings(graph) == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs_match_bruteforce(self, seed):
        graph = random_graph(6, 0.4, seed=seed)
        import itertools

        expected_non_independent = sum(
            1 for subset in graph.subsets() if not graph.is_independent(subset)
        )
        expected_non_cover = sum(
            1 for subset in graph.subsets() if not graph.is_vertex_cover(subset)
        )
        colorings = itertools.product(range(3), repeat=len(graph.vertices))
        expected_non_coloring = sum(
            1
            for combination in colorings
            if not graph.is_proper_coloring(dict(zip(graph.vertices, combination)))
        )
        assert count_non_independent_sets(graph) == expected_non_independent
        assert count_non_vertex_covers(graph) == expected_non_cover
        assert count_non_colorings(graph, 3) == expected_non_coloring

    def test_complement_identity(self):
        """#non-independent + #independent = 2^n (a sanity identity)."""
        graph = random_graph(7, 0.35, seed=9)
        independent = sum(1 for subset in graph.subsets() if graph.is_independent(subset))
        assert count_non_independent_sets(graph) + independent == 2 ** graph.vertex_count
