"""Tests for the workload generators and named scenarios."""

import pytest

from repro.db import BlockDecomposition
from repro.query import classify, is_existential_positive, keywidth, QueryClass
from repro.repairs import count_total_repairs
from repro.workloads import (
    InconsistentDatabaseSpec,
    election_registry,
    employee_example,
    hr_analytics,
    random_conjunctive_query,
    random_inconsistent_database,
    random_ucq,
    sensor_fusion,
    star_join_query,
)


class TestGenerators:
    def test_random_database_is_reproducible(self):
        spec = InconsistentDatabaseSpec(relations={"R": 3}, blocks_per_relation=20)
        first, _ = random_inconsistent_database(spec, seed=5)
        second, _ = random_inconsistent_database(spec, seed=5)
        third, _ = random_inconsistent_database(spec, seed=6)
        assert first.facts() == second.facts()
        assert first.facts() != third.facts()

    def test_block_structure_matches_the_spec(self):
        spec = InconsistentDatabaseSpec(
            relations={"R": 2, "S": 3},
            blocks_per_relation=30,
            conflict_rate=0.5,
            max_block_size=4,
        )
        database, keys = random_inconsistent_database(spec, seed=1)
        decomposition = BlockDecomposition(database, keys)
        assert len(decomposition) == 60
        assert decomposition.max_block_size() <= 4
        assert keys.has_key("R") and keys.has_key("S")
        # With conflict_rate 0.5 over 60 blocks, some but not all conflict.
        conflicting = len(decomposition.conflicting_blocks())
        assert 5 < conflicting < 55

    def test_arity_one_relations_are_rejected(self):
        spec = InconsistentDatabaseSpec(relations={"R": 1})
        with pytest.raises(ValueError):
            random_inconsistent_database(spec, seed=0)

    def test_random_cq_has_the_requested_keywidth(self):
        spec = InconsistentDatabaseSpec(relations={"R": 2, "S": 2})
        _, keys = random_inconsistent_database(spec, seed=0)
        for target in range(4):
            query = random_conjunctive_query({"R": 2, "S": 2}, keys, target, seed=target)
            assert keywidth(query, keys) == target
            assert classify(query) is QueryClass.CQ

    def test_random_ucq_is_positive(self):
        spec = InconsistentDatabaseSpec(relations={"R": 2, "S": 2})
        _, keys = random_inconsistent_database(spec, seed=0)
        query = random_ucq({"R": 2, "S": 2}, keys, disjuncts=3, keywidth_per_disjunct=2, seed=1)
        assert is_existential_positive(query)

    def test_star_join_query_keywidth(self):
        from repro.db import PrimaryKeySet

        keys = PrimaryKeySet.from_dict({"R0": [1], "R1": [1], "R2": [1]})
        query = star_join_query(["R0", "R1", "R2"])
        assert keywidth(query, keys) == 3


class TestScenarios:
    def test_employee_example_matches_the_paper(self):
        scenario = employee_example()
        assert len(scenario.database) == 4
        assert count_total_repairs(scenario.database, scenario.keys) == 4
        assert "same-department" in scenario.queries

    @pytest.mark.parametrize(
        "factory", [hr_analytics, sensor_fusion, election_registry]
    )
    def test_scenarios_are_inconsistent_and_queryable(self, factory):
        scenario = factory()
        decomposition = BlockDecomposition(scenario.database, scenario.keys)
        assert not decomposition.is_consistent()
        assert decomposition.total_repairs() > 1
        assert scenario.queries
        for query in scenario.queries.values():
            assert is_existential_positive(query)

    def test_scenarios_are_reproducible(self):
        assert hr_analytics(seed=3).database.facts() == hr_analytics(seed=3).database.facts()
        assert str(employee_example())  # __str__ smoke check


class TestServeWorkload:
    def test_shape_and_determinism(self):
        from repro.engine import CountJob, UpdateJob
        from repro.workloads import serve_workload

        registry, stream = serve_workload(
            jobs=20, databases=4, update_every=5, seed=8
        )
        assert sorted(registry) == [f"served-{index}" for index in range(4)]
        counts = [item for item in stream if isinstance(item, CountJob)]
        updates = [item for item in stream if isinstance(item, UpdateJob)]
        assert len(counts) == 20
        assert updates  # the stream actually interleaves deltas
        assert all(item.database in registry for item in stream)
        assert stream == serve_workload(
            jobs=20, databases=4, update_every=5, seed=8
        )[1]

    def test_popularity_is_skewed_toward_hot_databases(self):
        from repro.engine import CountJob
        from repro.workloads import serve_workload

        _, stream = serve_workload(
            jobs=120, databases=5, update_every=1000, seed=0, hot_fraction=0.7
        )
        hot = sum(
            1
            for item in stream
            if isinstance(item, CountJob)
            and item.database in ("served-0", "served-1")
        )
        assert hot > 60  # the two hot names take well over half the counts

    def test_zipf_stream_is_deterministic_under_a_fixed_seed(self):
        from repro.workloads import serve_workload

        registry, stream = serve_workload(
            jobs=30, databases=4, seed=6, zipf=1.3
        )
        assert sorted(registry) == [f"served-{index}" for index in range(4)]
        assert stream == serve_workload(
            jobs=30, databases=4, seed=6, zipf=1.3
        )[1]
        # A different exponent is a genuinely different stream.
        assert stream != serve_workload(
            jobs=30, databases=4, seed=6, zipf=3.0
        )[1]

    def test_zipf_mass_follows_the_requested_exponent(self):
        from collections import Counter

        from repro.engine import CountJob
        from repro.workloads import serve_workload

        def mass(zipf):
            _, stream = serve_workload(
                jobs=400, databases=4, update_every=10_000, seed=1, zipf=zipf
            )
            counts = Counter(
                item.database
                for item in stream
                if isinstance(item, CountJob)
            )
            return [counts[f"served-{rank}"] for rank in range(4)]

        gentle, steep = mass(1.0), mass(2.5)
        # Popularity decreases with rank under either exponent...
        assert gentle == sorted(gentle, reverse=True)
        assert steep == sorted(steep, reverse=True)
        # ...the head mass tracks the analytic Zipf share (±10 points)...
        for observed, exponent in ((gentle, 1.0), (steep, 2.5)):
            share = sum(1 / (r + 1) ** exponent for r in range(1)) / sum(
                1 / (r + 1) ** exponent for r in range(4)
            )
            assert abs(observed[0] / 400 - share) < 0.10
        # ...and a steeper exponent concentrates more mass on rank 0.
        assert steep[0] > gentle[0]

    def test_zipf_exponent_must_be_positive(self):
        from repro.workloads import serve_workload

        with pytest.raises(ValueError, match="zipf"):
            serve_workload(jobs=2, databases=2, zipf=0.0)

    def test_stream_replays_identically_through_a_pool(self):
        from repro.engine import SolverPool
        from repro.workloads import serve_workload

        registry, stream = serve_workload(jobs=10, databases=2, seed=5)
        pool = SolverPool()
        for name, (database, keys) in registry.items():
            pool.register(name, database, keys)
        first = pool.run_stream(stream)

        replay_pool = SolverPool()
        registry2, stream2 = serve_workload(jobs=10, databases=2, seed=5)
        for name, (database, keys) in registry2.items():
            replay_pool.register(name, database, keys)
        assert replay_pool.run_stream(stream2).counts() == first.counts()


class TestHistoryWorkloadAncestorBias:
    def test_uniform_bias_is_the_backward_compatible_default(self):
        from repro.workloads import history_workload

        plain = history_workload(jobs=16, update_every=3, seed=2)[1]
        explicit = history_workload(
            jobs=16, update_every=3, seed=2, ancestor_bias="uniform"
        )[1]
        assert plain == explicit  # same rng consumption, bit-identical

    def test_biases_pick_the_intended_end_of_the_chain(self):
        from repro.engine import CountJob, SolverPool, UpdateJob
        from repro.workloads import history_workload

        def ancestor_picks(bias):
            """(depth from root, distance from head) of historical counts."""
            registry, stream = history_workload(
                jobs=40, update_every=2, seed=3, history_fraction=0.9,
                ancestor_bias=bias,
            )
            digests = {
                name: [database.content_digest()]
                for name, (database, _) in registry.items()
            }
            live = {name: database for name, (database, _) in registry.items()}
            picks = []
            for item in stream:
                if isinstance(item, UpdateJob):
                    live[item.database] = live[item.database].apply_delta(item.delta)
                    digests[item.database].append(live[item.database].content_digest())
                elif isinstance(item, CountJob) and item.as_of is not None:
                    chain = digests[item.database]
                    if isinstance(item.as_of, int):
                        depth = len(chain) - 1 + item.as_of
                    else:
                        depth = chain.index(item.as_of)
                    picks.append((depth, len(chain) - 1 - depth))
            return picks

        deep = ancestor_picks("deep")
        recent = ancestor_picks("recent")
        assert deep and recent
        # "deep" always lands among the four oldest versions...
        assert max(depth for depth, _ in deep) <= 3
        # ...and "recent" within four versions of the then-current head.
        assert max(distance for _, distance in recent) <= 4
        # On a long chain the two regimes actually diverge.
        assert max(distance for _, distance in deep) > 4

    def test_unknown_bias_fails_loudly(self):
        from repro.workloads import history_workload

        with pytest.raises(ValueError, match="ancestor_bias"):
            history_workload(jobs=4, ancestor_bias="sideways")

    def test_biased_streams_replay_identically_through_a_pool(self):
        from repro.engine import SolverPool
        from repro.workloads import history_workload

        registry, stream = history_workload(
            jobs=14, update_every=3, seed=6, ancestor_bias="deep"
        )
        pool = SolverPool()
        for name, (database, keys) in registry.items():
            pool.register(name, database, keys)
        first = pool.run_stream(stream)

        replay = SolverPool()
        registry2, stream2 = history_workload(
            jobs=14, update_every=3, seed=6, ancestor_bias="deep"
        )
        for name, (database, keys) in registry2.items():
            replay.register(name, database, keys)
        assert replay.run_stream(stream2).counts() == first.counts()
