"""Tests for the executable reductions: they must preserve counts exactly."""

import pytest

from repro.errors import ReductionError
from repro.lams import TabularCompactor, Selector
from repro.problems import (
    count_disjoint_positive_dnf,
    count_forbidden_colorings,
    count_satisfying_assignments,
    DisjointPositiveDNFCompactor,
)
from repro.query import keywidth
from repro.reductions import (
    coloring_to_disjoint_dnf,
    count_via_pdb,
    cqa_to_disjoint_dnf,
    cqa_to_pdb,
    disjoint_dnf_to_cqa,
    lambda_to_cqa,
    sat_to_cqa,
    target_keys,
    target_query,
)
from repro.repairs import (
    count_repairs_satisfying,
    count_repairs_satisfying_naive,
    count_total_repairs,
)
from repro.workloads import (
    random_cnf,
    random_disjoint_positive_dnf,
    random_forbidden_coloring,
)


class TestSatToCqa:
    """Theorems 3.2 / 3.3: the reduction is parsimonious."""

    @pytest.mark.parametrize("seed", range(4))
    def test_counts_match_hash_3sat(self, seed):
        formula = random_cnf(variables=5, clauses=5, clause_width=3, seed=seed)
        reduction = sat_to_cqa(formula)
        expected = count_satisfying_assignments(formula)
        counted = count_repairs_satisfying_naive(
            reduction.database, reduction.keys, reduction.query
        )
        assert counted == expected
        assert (
            count_total_repairs(reduction.database, reduction.keys)
            == reduction.total_assignments()
        )

    def test_unsatisfiable_formula_has_no_entailing_repair(self):
        from repro.problems import CNFFormula

        formula = CNFFormula.from_ints([[1], [-1]])
        reduction = sat_to_cqa(formula)
        assert (
            count_repairs_satisfying_naive(reduction.database, reduction.keys, reduction.query)
            == 0
        )

    def test_query_and_keys_are_fixed(self):
        first = sat_to_cqa(random_cnf(3, 3, 3, seed=0))
        second = sat_to_cqa(random_cnf(6, 8, 3, seed=1))
        assert first.query == second.query
        assert first.keys == second.keys


class TestLambdaToCqa:
    """Theorem 5.1 hardness: unfold_M(x) = #CQA(Q_k, Σ_k)(D_x)."""

    def test_target_query_has_the_right_keywidth(self):
        for k in range(4):
            assert keywidth(target_query(k), target_keys()) == k

    def test_negative_k_rejected(self):
        with pytest.raises(ReductionError):
            target_query(-1)

    @pytest.mark.parametrize("seed", range(4))
    def test_reduction_preserves_the_count_for_dnf_compactors(self, seed):
        formula = random_disjoint_positive_dnf(4, 3, 6, 2, seed=seed)
        compactor = DisjointPositiveDNFCompactor(k=formula.width)
        reduction = lambda_to_cqa(compactor, formula)
        expected = compactor.unfold_count(formula)
        counted = count_repairs_satisfying(
            reduction.database, reduction.keys, reduction.query
        ).satisfying
        assert counted == expected

    def test_reduction_on_a_tabular_compactor(self):
        compactor = TabularCompactor(
            k=2,
            domains_by_instance={"x": (("a", "b"), ("c", "d"), ("e", "f", "g"))},
            selectors_by_instance={
                "x": {"c1": Selector({0: 0, 1: 1}), "c2": Selector({2: 2})}
            },
        )
        reduction = lambda_to_cqa(compactor, "x")
        counted = count_repairs_satisfying(
            reduction.database, reduction.keys, reduction.query
        ).satisfying
        assert counted == compactor.unfold_count("x") == 6

    def test_compactor_with_no_certificates_maps_to_zero(self):
        compactor = TabularCompactor(
            k=1,
            domains_by_instance={"x": (("a", "b"),)},
            selectors_by_instance={"x": {}},
        )
        reduction = lambda_to_cqa(compactor, "x")
        assert (
            count_repairs_satisfying(reduction.database, reduction.keys, reduction.query).satisfying
            == 0
        )

    def test_unbounded_compactor_rejected(self):
        compactor = DisjointPositiveDNFCompactor(k=None)
        with pytest.raises(ReductionError):
            lambda_to_cqa(compactor, random_disjoint_positive_dnf(2, 2, 2, 2, seed=0))


class TestBetweenProblems:
    @pytest.mark.parametrize("seed", range(3))
    def test_cqa_to_disjoint_dnf(self, seed, employee_db, employee_keys, same_department_query):
        formula = cqa_to_disjoint_dnf(employee_db, employee_keys, same_department_query)
        assert count_disjoint_positive_dnf(formula) == 2
        assert formula.total_p_assignments() == 4

    @pytest.mark.parametrize("seed", range(4))
    def test_coloring_to_disjoint_dnf(self, seed):
        instance = random_forbidden_coloring(5, 4, 2, 3, 2, seed=seed)
        formula = coloring_to_disjoint_dnf(instance)
        assert count_disjoint_positive_dnf(formula) == count_forbidden_colorings(instance)

    @pytest.mark.parametrize("seed", range(3))
    def test_disjoint_dnf_to_cqa(self, seed):
        formula = random_disjoint_positive_dnf(4, 2, 5, 2, seed=seed)
        reduction = disjoint_dnf_to_cqa(formula)
        counted = count_repairs_satisfying(
            reduction.database, reduction.keys, reduction.query
        ).satisfying
        assert counted == count_disjoint_positive_dnf(formula)


class TestCqaToPdb:
    def test_uniform_pdb_has_repairs_as_worlds(self, employee_db, employee_keys):
        reduction = cqa_to_pdb(employee_db, employee_keys)
        assert reduction.total_repairs == 4
        assert reduction.pdb.world_count() == 4
        for block in reduction.pdb.blocks:
            assert block.is_total

    def test_count_via_pdb_matches_direct_count(
        self, employee_db, employee_keys, same_department_query
    ):
        assert count_via_pdb(employee_db, employee_keys, same_department_query) == 2
