"""Shared fixtures: the paper's running example and small random instances."""

from __future__ import annotations

import random

import pytest

from repro.db import Database, PrimaryKeySet, fact
from repro.query import parse_query
from repro.workloads import (
    InconsistentDatabaseSpec,
    employee_example,
    random_inconsistent_database,
)


@pytest.fixture
def employee_db():
    """The database of Example 1.1."""
    return Database(
        [
            fact("Employee", 1, "Bob", "HR"),
            fact("Employee", 1, "Bob", "IT"),
            fact("Employee", 2, "Alice", "IT"),
            fact("Employee", 2, "Tim", "IT"),
        ]
    )


@pytest.fixture
def employee_keys():
    """The key constraint of Example 1.1: key(Employee) = {1}."""
    return PrimaryKeySet.from_dict({"Employee": [1]})


@pytest.fixture
def same_department_query():
    """The Boolean query of Example 1.1."""
    return parse_query(
        "EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)",
        name="same-department",
    )


@pytest.fixture
def employee_scenario():
    """The full named scenario (database, keys and queries)."""
    return employee_example()


def small_random_instance(seed: int, blocks: int = 6, max_block: int = 3):
    """A small random inconsistent database for exhaustive cross-checks."""
    spec = InconsistentDatabaseSpec(
        relations={"R": 2, "S": 2},
        blocks_per_relation=blocks,
        conflict_rate=0.6,
        max_block_size=max_block,
        domain_size=6,
    )
    return random_inconsistent_database(spec, seed=seed)


@pytest.fixture
def small_instance():
    """One fixed small random instance (deterministic)."""
    return small_random_instance(seed=0)
