"""End-to-end integration tests across subsystems.

Each test stitches several subsystems together the way a downstream user
would: scenario → solver → exact count → FPRAS → reductions → machine view,
checking that every route through the library tells the same story.
"""

import pytest

from repro.approx import CQAFpras, KarpLubyEstimator, LambdaFPRAS
from repro.core import CQASolver
from repro.db import database_from_json, database_to_json
from repro.lams import CQACompactor, GuessCheckExpandTransducer
from repro.problems import count_disjoint_positive_dnf
from repro.reductions import cqa_to_disjoint_dnf, count_via_pdb, disjoint_dnf_to_cqa
from repro.repairs import count_repairs_satisfying
from repro.workloads import (
    election_registry,
    hr_analytics,
    random_conjunctive_query,
    sensor_fusion,
)
from tests.conftest import small_random_instance


@pytest.mark.parametrize("factory", [hr_analytics, sensor_fusion, election_registry])
def test_scenarios_exact_vs_fpras(factory):
    """On every named scenario the FPRAS tracks the exact count within ε."""
    scenario = factory()
    solver = CQASolver(scenario.database, scenario.keys, rng=1)
    for name, query in scenario.queries.items():
        if query.arity:
            continue  # Boolean queries only in this test
        exact = solver.count(query)
        estimate = solver.count(query, method="fpras", epsilon=0.15, delta=0.05)
        if exact.satisfying == 0:
            assert estimate.satisfying == 0
        else:
            relative_error = abs(estimate.satisfying - exact.satisfying) / exact.satisfying
            assert relative_error <= 0.3, f"query {name} missed badly"


def test_all_routes_agree_on_a_random_instance():
    """Exact counter, PDB route, DNF route, transducer span and Karp-Luby all agree."""
    database, keys = small_random_instance(seed=77, blocks=5, max_block=3)
    query = random_conjunctive_query({"R": 2, "S": 2}, keys, target_keywidth=2, seed=77)

    reference = count_repairs_satisfying(database, keys, query, method="naive").satisfying
    assert count_repairs_satisfying(database, keys, query).satisfying == reference
    assert count_via_pdb(database, keys, query) == reference

    dnf = cqa_to_disjoint_dnf(database, keys, query)
    assert count_disjoint_positive_dnf(dnf) == reference

    compactor = CQACompactor(query, keys)
    assert GuessCheckExpandTransducer(compactor).span(database) == reference

    if reference:
        karp_luby = KarpLubyEstimator(compactor)(database, 0.2, 0.1, rng=3)
        assert abs(karp_luby - reference) <= 0.4 * reference


def test_round_trip_through_the_theorem_5_1_reduction():
    """#CQA -> #DisjPoskDNF -> #CQA(Q_k, Σ_k) preserves the count at every hop."""
    scenario = hr_analytics(employees=10)
    query = scenario.queries["top-band-in-it"]
    reference = count_repairs_satisfying(scenario.database, scenario.keys, query).satisfying

    dnf = cqa_to_disjoint_dnf(scenario.database, scenario.keys, query)
    assert count_disjoint_positive_dnf(dnf) == reference

    back = disjoint_dnf_to_cqa(dnf)
    again = count_repairs_satisfying(back.database, back.keys, back.query).satisfying
    assert again == reference


def test_json_round_trip_preserves_counts(employee_db, employee_keys, same_department_query):
    """Serialising and reloading the database does not change any answer."""
    payload = database_to_json(employee_db, employee_keys)
    reloaded_db, reloaded_keys = database_from_json(payload)
    original = count_repairs_satisfying(employee_db, employee_keys, same_department_query)
    reloaded = count_repairs_satisfying(reloaded_db, reloaded_keys, same_department_query)
    assert (original.satisfying, original.total) == (reloaded.satisfying, reloaded.total)


def test_fpras_variants_agree_with_each_other():
    """LambdaFPRAS on the CQA compactor and the CQAFpras give consistent answers."""
    scenario = sensor_fusion(sensors=15)
    query = scenario.queries["any-critical"]
    solver = CQASolver(scenario.database, scenario.keys, rng=5)
    exact = solver.count(query).satisfying

    compactor = CQACompactor(query, scenario.keys)
    generic = LambdaFPRAS(compactor).estimate(scenario.database, 0.15, 0.05, rng=5).estimate
    specialised = CQAFpras(query, scenario.keys).estimate_count(
        scenario.database, 0.15, 0.05, rng=5
    )
    if exact == 0:
        assert generic == specialised == 0
    else:
        assert abs(generic - exact) <= 0.3 * exact
        assert abs(specialised - exact) <= 0.3 * exact
