"""Tests for elastic shard ownership (``repro.server.rebalance``).

What is pinned here:

* the :class:`GreedyRebalancer` policy is a pure, deterministic function
  of a :class:`LoadSnapshot` — it triggers only past ``max_imbalance``,
  never relocates a hotspot made of one monolithic name, and breaks ties
  stably;
* :meth:`AsyncServer.move` performs a *live* ownership handoff whose
  results stay bit-identical to a sequential
  :meth:`SolverPool.run_stream` of the same stream, even with the move
  landing mid-stream;
* every routing change — registration, move, ``add_shard``,
  ``remove_shard`` — bumps :attr:`AsyncServer.routing_version`, and
  plain dispatches never do, so cached shard assignments are detectably
  stale;
* a handoff over a shared persistent store is *warm*: the destination
  shard answers without a single selector or decomposition
  recomputation;
* misuse is loud: unknown shards and conflicting moves raise
  :class:`RebalanceError`, removing the last shard refuses.
"""

import asyncio

import pytest

from repro.engine import CountJob, SolverPool
from repro.errors import EngineError, RebalanceError
from repro.server import (
    AsyncServer,
    GreedyRebalancer,
    LoadSnapshot,
    Move,
    NameLoad,
    ShardLoad,
)
from repro.workloads import employee_example, serve_workload

_EMPLOYEE_QUERY = "EXISTS x, y, z . (Employee(1, x, y) AND Employee(2, z, y))"


def _snapshot(shard_names, name_weights):
    """Build a LoadSnapshot from {shard: [names]} and {name: busy_time}."""
    placement = {
        name: shard for shard, names in shard_names.items() for name in names
    }
    names = tuple(
        NameLoad(
            name=name,
            shard=placement[name],
            dispatched=int(weight),
            completed=int(weight),
            in_flight=0,
            busy_time=float(weight),
        )
        for name, weight in sorted(name_weights.items())
    )
    shards = tuple(
        ShardLoad(
            shard=shard,
            names=tuple(sorted(owned)),
            dispatched=sum(int(name_weights[n]) for n in owned),
            completed=sum(int(name_weights[n]) for n in owned),
            in_flight=0,
            queue_depth=0,
            busy_time=float(sum(name_weights[n] for n in owned)),
        )
        for shard, owned in sorted(shard_names.items())
    )
    return LoadSnapshot(shards=shards, names=names)


class TestGreedyRebalancer:
    def test_moves_the_hottest_name_to_the_coldest_shard(self):
        snapshot = _snapshot(
            {0: ["hot", "warm"], 1: ["cold"], 2: []},
            {"hot": 8.0, "warm": 3.0, "cold": 1.0},
        )
        moves = GreedyRebalancer(max_imbalance=1.5).propose(snapshot)
        assert moves == (Move(name="hot", source=0, destination=2),)

    def test_below_threshold_proposes_nothing(self):
        snapshot = _snapshot(
            {0: ["a"], 1: ["b"]}, {"a": 5.0, "b": 4.0}
        )
        assert GreedyRebalancer(max_imbalance=2.0).propose(snapshot) == ()

    def test_monolithic_hotspot_is_left_alone(self):
        # One name carries the whole hot shard: moving it only relocates
        # the hotspot, so the policy must decline.
        snapshot = _snapshot(
            {0: ["whale"], 1: ["minnow"]}, {"whale": 99.0, "minnow": 1.0}
        )
        assert GreedyRebalancer(max_imbalance=1.2).propose(snapshot) == ()

    def test_single_shard_never_rebalances(self):
        snapshot = _snapshot({0: ["a", "b"]}, {"a": 9.0, "b": 1.0})
        assert GreedyRebalancer(max_imbalance=1.0).propose(snapshot) == ()

    def test_idle_snapshot_proposes_nothing(self):
        snapshot = _snapshot({0: ["a"], 1: []}, {"a": 0.0})
        assert GreedyRebalancer(max_imbalance=1.0).propose(snapshot) == ()

    def test_proposals_are_deterministic(self):
        snapshot = _snapshot(
            {0: ["a", "b", "c"], 1: ["d"], 2: []},
            {"a": 4.0, "b": 4.0, "c": 2.0, "d": 1.0},
        )
        policy = GreedyRebalancer(max_imbalance=1.1, moves_per_round=2)
        first = policy.propose(snapshot)
        assert first == policy.propose(snapshot)
        # Equal-weight names break lexicographically.
        assert first[0].name == "a"

    def test_falls_back_to_dispatch_counts_before_any_busy_time(self):
        names = (
            NameLoad("hot", 0, dispatched=9, completed=0, in_flight=9,
                     busy_time=0.0),
            NameLoad("tepid", 0, dispatched=3, completed=0, in_flight=3,
                     busy_time=0.0),
            NameLoad("cold", 1, dispatched=1, completed=0, in_flight=1,
                     busy_time=0.0),
        )
        shards = (
            ShardLoad(0, ("hot", "tepid"), dispatched=12, completed=0,
                      in_flight=12, queue_depth=11, busy_time=0.0),
            ShardLoad(1, ("cold",), dispatched=1, completed=0, in_flight=1,
                      queue_depth=0, busy_time=0.0),
        )
        snapshot = LoadSnapshot(shards=shards, names=names)
        assert not snapshot.uses_busy_time()
        moves = GreedyRebalancer(max_imbalance=1.5).propose(snapshot)
        assert moves == (Move(name="hot", source=0, destination=1),)

    def test_invalid_configuration_is_loud(self):
        with pytest.raises(RebalanceError, match="max_imbalance"):
            GreedyRebalancer(max_imbalance=0.5)
        with pytest.raises(RebalanceError, match="moves_per_round"):
            GreedyRebalancer(moves_per_round=0)


class TestRoutingVersion:
    def test_every_routing_change_bumps_the_version(self):
        registry, _ = serve_workload(jobs=1, databases=3, seed=2)
        server = AsyncServer(shards=2)
        seen = [server.routing_version]
        for name, (database, keys) in registry.items():
            server.register(name, database, keys)
            seen.append(server.routing_version)
        new_shard = server.add_shard()
        seen.append(server.routing_version)
        name = server.database_names()[0]
        if server.shard_of(name) != new_shard:
            assert asyncio.run(server.move(name, new_shard))
            seen.append(server.routing_version)
        asyncio.run(server.remove_shard(new_shard))
        seen.append(server.routing_version)
        # Strictly increasing: every change is observable.
        assert seen == sorted(set(seen))
        assert len(seen) == len(set(seen))

    def test_dispatch_does_not_bump_the_version(self):
        async def run():
            scenario = employee_example()
            server = AsyncServer(shards=2)
            server.register("emp", scenario.database, scenario.keys)
            async with server:
                before = server.routing_version
                await server.submit(
                    CountJob(database="emp", query=_EMPLOYEE_QUERY)
                )
                assert server.routing_version == before

        asyncio.run(run())

    def test_shard_of_reflects_a_completed_move(self):
        scenario = employee_example()
        server = AsyncServer(shards=2)
        server.register("emp", scenario.database, scenario.keys)
        source = server.shard_of("emp")
        target = next(s for s in server.shard_ids if s != source)
        assert asyncio.run(server.move("emp", target))  # cold move
        assert server.shard_of("emp") == target


class TestMove:
    def test_move_to_the_owning_shard_is_a_no_op(self):
        scenario = employee_example()
        server = AsyncServer(shards=2)
        server.register("emp", scenario.database, scenario.keys)
        before = server.routing_version
        assert asyncio.run(server.move("emp", server.shard_of("emp"))) is False
        assert server.routing_version == before

    def test_unknown_shard_and_name_are_loud(self):
        scenario = employee_example()
        server = AsyncServer(shards=2)
        server.register("emp", scenario.database, scenario.keys)
        with pytest.raises(RebalanceError, match="unknown shard"):
            asyncio.run(server.move("emp", 99))
        with pytest.raises(EngineError, match="unknown database"):
            asyncio.run(server.move("ghost", 0))

    def test_live_move_mid_stream_is_bit_identical_to_sequential(self):
        registry, stream = serve_workload(
            jobs=14, databases=3, seed=11, update_every=4
        )

        async def sharded():
            server = AsyncServer(shards=2, queue_limit=4)
            for name, (database, keys) in registry.items():
                server.register(name, database, keys)
            results = []
            async with server:
                midpoint = len(stream) // 2
                for index, item in enumerate(stream):
                    if index == midpoint:
                        source = server.shard_of("served-0")
                        target = next(
                            s for s in server.shard_ids if s != source
                        )
                        assert await server.move("served-0", target)
                        assert server.shard_of("served-0") == target
                    results.append(await server.submit(item, index))
            return results

        moved = asyncio.run(sharded())

        pool = SolverPool()
        for name, (database, keys) in registry.items():
            pool.register(name, database, keys)
        sequential = pool.run_stream(stream)
        expected = {
            result.index: (result.satisfying, result.total)
            for result in sequential.results
        }
        got = {
            result.index: (result.satisfying, result.total)
            for result in moved
            if hasattr(result, "satisfying")
        }
        assert got == expected
        assert len(expected) == sum(
            1 for item in stream if isinstance(item, CountJob)
        )

    def test_warm_handoff_recomputes_nothing(self, tmp_path):
        async def run():
            scenario = employee_example()
            server = AsyncServer(
                shards=2, queue_limit=8, persist_dir=str(tmp_path)
            )
            server.register("emp", scenario.database, scenario.keys)
            job = CountJob(
                database="emp", query=_EMPLOYEE_QUERY, method="certificate"
            )
            async with server:
                for index in range(4):
                    await server.submit(job, index)
                source = server.shard_of("emp")
                target = next(s for s in server.shard_ids if s != source)
                assert await server.move("emp", target)
                for index in range(4, 8):
                    await server.submit(job, index)
                stats = await server.stats()
                destination = stats["shards"][str(target)]
                assert destination["selector_recomputations"] == 0
                assert destination["decomposition_recomputations"] == 0
                handoff = destination["cache"]["handoff"]
                assert handoff["handoffs"] == 1
                assert handoff["warm_decompositions"] == 1
                # The source worker genuinely forgot the name.
                assert "emp" not in stats["shards"][str(source)]["databases"]
                assert stats["rebalance"]["moves"] == 1

        asyncio.run(run())

    def test_busy_time_accrues_into_the_load_accounting(self):
        async def run():
            scenario = employee_example()
            server = AsyncServer(shards=1)
            server.register("emp", scenario.database, scenario.keys)
            async with server:
                for index in range(3):
                    await server.submit(
                        CountJob(database="emp", query=_EMPLOYEE_QUERY), index
                    )
                snapshot = server.load_snapshot()
                (shard,) = snapshot.shards
                assert shard.dispatched == shard.completed == 3
                assert shard.in_flight == 0 and shard.queue_depth == 0
                assert shard.busy_time > 0
                (name,) = snapshot.names
                assert name.name == "emp" and name.completed == 3
                assert snapshot.uses_busy_time()

        asyncio.run(run())


class TestElasticFleet:
    def test_add_and_remove_shards_on_a_live_server(self):
        registry, stream = serve_workload(jobs=8, databases=2, seed=4)

        async def run():
            server = AsyncServer(shards=1, queue_limit=4)
            for name, (database, keys) in registry.items():
                server.register(name, database, keys)
            async with server:
                first = [
                    await server.submit(item, index)
                    for index, item in enumerate(stream[:4])
                ]
                new_id = server.add_shard()
                assert new_id in server.shard_ids
                moved_name = server.database_names()[0]
                await server.move(moved_name, new_id)
                second = [
                    await server.submit(item, index)
                    for index, item in enumerate(stream[4:], start=4)
                ]
                surrendered = await server.remove_shard(new_id)
                assert moved_name in surrendered
                assert new_id not in server.shard_ids
                third = await server.submit(stream[0], 0)
            return first, second, third

        first, second, third = asyncio.run(run())

        pool = SolverPool()
        for name, (database, keys) in registry.items():
            pool.register(name, database, keys)
        sequential = pool.run_stream(stream)
        expected = {
            result.index: (result.satisfying, result.total)
            for result in sequential.results
        }
        for result in first + second:
            if hasattr(result, "satisfying"):
                assert (result.satisfying, result.total) == expected[
                    result.index
                ]

    def test_removing_the_last_shard_refuses(self):
        scenario = employee_example()
        server = AsyncServer(shards=1)
        server.register("emp", scenario.database, scenario.keys)
        with pytest.raises(RebalanceError, match="only shard"):
            asyncio.run(server.remove_shard(0))

    def test_rebalance_round_executes_the_greedy_proposal(self):
        registry, stream = serve_workload(
            jobs=12, databases=3, seed=7, zipf=2.0
        )

        async def run():
            server = AsyncServer(shards=1, queue_limit=4)
            for name, (database, keys) in registry.items():
                server.register(name, database, keys)
            async with server:
                for index, item in enumerate(stream):
                    await server.submit(item, index)
                server.add_shard()
                before = {
                    name: server.shard_of(name) for name in registry
                }
                moves = await server.rebalance(
                    GreedyRebalancer(max_imbalance=1.05)
                )
                assert moves  # all load sits on shard 0: must rebalance
                for move in moves:
                    assert before[move.name] == move.source
                    assert server.shard_of(move.name) == move.destination
                stats = await server.stats()
                assert stats["rebalance"]["rounds"] == 1
                assert stats["rebalance"]["moves"] == len(moves)

        asyncio.run(run())

    def test_background_rebalancer_moves_load_off_the_hot_shard(self):
        registry, stream = serve_workload(
            jobs=10, databases=3, seed=9, zipf=2.0
        )

        async def run():
            server = AsyncServer(
                shards=1,
                queue_limit=4,
                rebalance_interval=0.05,
                max_imbalance=1.05,
            )
            for name, (database, keys) in registry.items():
                server.register(name, database, keys)
            async with server:
                for index, item in enumerate(stream):
                    await server.submit(item, index)
                server.add_shard()
                for _ in range(100):
                    if server.moves_completed:
                        break
                    await asyncio.sleep(0.05)
                assert server.moves_completed >= 1
                owners = {server.shard_of(name) for name in registry}
                assert len(owners) == 2

        asyncio.run(run())
