"""Randomized delta property suite.

For 50 seeded (database, delta) pairs the incremental paths must be
indistinguishable from recomputation:

* ``BlockDecomposition.apply_delta`` equals a full rebuild of the updated
  database's decomposition, block for block;
* a warm ``SolverPool`` that took the delta via ``apply_delta`` returns
  counts bit-identical to a fresh sequential ``CQASolver`` over the updated
  database — regardless of which selector entries were dropped, migrated
  or recomputed along the way.
"""

from __future__ import annotations

import random

import pytest

from repro.core import CQASolver
from repro.db import BlockDecomposition, Database, Delta, Fact
from repro.engine import CountJob, SolverPool
from repro.query import parse_query
from repro.workloads import InconsistentDatabaseSpec, random_inconsistent_database

_RELATIONS = {"R": 3, "S": 3}

#: One Boolean query per relation plus one cross-relation join, so every
#: delta exercises dropped entries (touched relation), migrated entries
#: (untouched relation) and the join in between.
_QUERIES = (
    "EXISTS x, y. R(x, 'v1', y)",
    "EXISTS x, y. S(x, 'v2', y)",
    "EXISTS x, y, z, w. (R(x, 'v1', y) AND S(z, 'v2', w))",
)


def _random_pair(seed: int):
    """One seeded (database, delta) pair over the shared R/S schema."""
    rng = random.Random(seed)
    spec = InconsistentDatabaseSpec(
        relations=_RELATIONS,
        blocks_per_relation=rng.randint(3, 7),
        conflict_rate=0.6,
        max_block_size=3,
        domain_size=6,
    )
    database, keys = random_inconsistent_database(spec, seed=rng.randrange(2**16))
    database.freeze()

    facts = database.sorted_facts()
    deleted = rng.sample(facts, k=min(len(facts), rng.randint(0, 4)))
    inserted = []
    for _ in range(rng.randint(0, 4)):
        relation = rng.choice(sorted(_RELATIONS))
        if rng.random() < 0.5 and facts:
            key_token = rng.choice(facts).arguments[0]  # may grow a block
        else:
            key_token = f"{relation.lower()}_extra_{rng.randrange(50)}"
        candidate = Fact(
            relation,
            (key_token,) + tuple(f"v{rng.randrange(6)}" for _ in range(2)),
        )
        if candidate not in deleted:
            inserted.append(candidate)
    return database, keys, Delta(inserted=inserted, deleted=deleted)


@pytest.mark.parametrize("seed", range(50))
def test_incremental_update_equals_recomputation(seed):
    database, keys, delta = _random_pair(seed)

    # Property 1: incremental block maintenance == full rebuild.
    decomposition = BlockDecomposition(database, keys)
    updated = database.apply_delta(delta)
    incremental = decomposition.apply_delta(delta, database=updated)
    full = BlockDecomposition(updated, keys)
    assert incremental.blocks == full.blocks

    # Property 2: post-delta pool counts == a fresh sequential solver's.
    pool = SolverPool()
    pool.register("live", database, keys)
    jobs = [CountJob(database="live", query=query) for query in _QUERIES]
    pool.run(jobs)  # warm every cache layer against the pre-delta snapshot
    pool.apply_delta("live", delta)
    report = pool.run(jobs)

    solver = CQASolver(Database(updated.facts()), keys)
    for job, result in zip(jobs, report.results):
        expected = solver.count(parse_query(job.query))
        assert (result.satisfying, result.total) == (
            expected.satisfying,
            expected.total,
        ), f"seed {seed}, query {job.query!r}: pool diverged from fresh solver"
