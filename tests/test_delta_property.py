"""Randomized delta property suite.

For 50 seeded (database, delta) pairs the incremental paths must be
indistinguishable from recomputation:

* ``BlockDecomposition.apply_delta`` equals a full rebuild of the updated
  database's decomposition, block for block;
* a warm ``SolverPool`` that took the delta via ``apply_delta`` returns
  counts bit-identical to a fresh sequential ``CQASolver`` over the updated
  database — regardless of which selector entries were dropped, migrated
  or recomputed along the way.

And for 50 seeded randomized *update streams*, the lineage the pool
records must be a faithful replay log:

* materialising the head from the root database along the recorded chain
  reproduces the head's ``content_digest`` exactly (and vice versa, root
  from head via inverse deltas) — the property time-travel queries and
  ``repro rollback`` stand on.
"""

from __future__ import annotations

import random

import pytest

from repro.core import CQASolver
from repro.db import BlockDecomposition, Database, Delta, Fact
from repro.engine import CountJob, SolverPool
from repro.query import parse_query
from repro.workloads import InconsistentDatabaseSpec, random_inconsistent_database

_RELATIONS = {"R": 3, "S": 3}

#: One Boolean query per relation plus one cross-relation join, so every
#: delta exercises dropped entries (touched relation), migrated entries
#: (untouched relation) and the join in between.
_QUERIES = (
    "EXISTS x, y. R(x, 'v1', y)",
    "EXISTS x, y. S(x, 'v2', y)",
    "EXISTS x, y, z, w. (R(x, 'v1', y) AND S(z, 'v2', w))",
)


def _random_pair(seed: int):
    """One seeded (database, delta) pair over the shared R/S schema."""
    rng = random.Random(seed)
    spec = InconsistentDatabaseSpec(
        relations=_RELATIONS,
        blocks_per_relation=rng.randint(3, 7),
        conflict_rate=0.6,
        max_block_size=3,
        domain_size=6,
    )
    database, keys = random_inconsistent_database(spec, seed=rng.randrange(2**16))
    database.freeze()

    facts = database.sorted_facts()
    deleted = rng.sample(facts, k=min(len(facts), rng.randint(0, 4)))
    inserted = []
    for _ in range(rng.randint(0, 4)):
        relation = rng.choice(sorted(_RELATIONS))
        if rng.random() < 0.5 and facts:
            key_token = rng.choice(facts).arguments[0]  # may grow a block
        else:
            key_token = f"{relation.lower()}_extra_{rng.randrange(50)}"
        candidate = Fact(
            relation,
            (key_token,) + tuple(f"v{rng.randrange(6)}" for _ in range(2)),
        )
        if candidate not in deleted:
            inserted.append(candidate)
    return database, keys, Delta(inserted=inserted, deleted=deleted)


@pytest.mark.parametrize("seed", range(50))
def test_incremental_update_equals_recomputation(seed):
    database, keys, delta = _random_pair(seed)

    # Property 1: incremental block maintenance == full rebuild.
    decomposition = BlockDecomposition(database, keys)
    updated = database.apply_delta(delta)
    incremental = decomposition.apply_delta(delta, database=updated)
    full = BlockDecomposition(updated, keys)
    assert incremental.blocks == full.blocks

    # Property 2: post-delta pool counts == a fresh sequential solver's.
    pool = SolverPool()
    pool.register("live", database, keys)
    jobs = [CountJob(database="live", query=query) for query in _QUERIES]
    pool.run(jobs)  # warm every cache layer against the pre-delta snapshot
    pool.apply_delta("live", delta)
    report = pool.run(jobs)

    solver = CQASolver(Database(updated.facts()), keys)
    for job, result in zip(jobs, report.results):
        expected = solver.count(parse_query(job.query))
        assert (result.satisfying, result.total) == (
            expected.satisfying,
            expected.total,
        ), f"seed {seed}, query {job.query!r}: pool diverged from fresh solver"


@pytest.mark.parametrize("seed", range(50))
def test_recorded_lineage_replays_root_to_head(seed):
    """The recorded chain of a random update stream is a faithful log."""
    rng = random.Random(10_000 + seed)
    spec = InconsistentDatabaseSpec(
        relations=_RELATIONS,
        blocks_per_relation=rng.randint(3, 7),
        conflict_rate=0.6,
        max_block_size=3,
        domain_size=6,
    )
    root, keys = random_inconsistent_database(spec, seed=rng.randrange(2**16))
    root.freeze()

    pool = SolverPool()
    pool.register("live", root, keys)
    for _ in range(rng.randint(1, 5)):
        _, _, delta = _random_pair(rng.randrange(2**16))
        # The generated delta was drawn against another instance, so parts
        # of it may be no-ops here — exactly what exercises the
        # effective-core recording.
        current, _ = pool.lookup("live")
        inserted, deleted = delta.effective_against(current)
        if not inserted and not deleted:
            continue
        pool.apply_delta("live", delta)

    chain = pool.lineage("live")
    head, _ = pool.lookup("live")
    head_digest = head.content_digest()
    assert chain.head.digest == head_digest

    # Forward: root database + recorded deltas => the head, bit for bit.
    replayed_head = chain.materialise(Database(root.facts()), head_digest)
    assert replayed_head.content_digest() == head_digest
    assert replayed_head == head

    # Backward: head database + inverse deltas => the root, bit for bit.
    replayed_root = chain.materialise(head, root.content_digest())
    assert replayed_root.content_digest() == root.content_digest()
    assert replayed_root == root
