"""Unit tests for key constraints and primary key sets."""

import pytest

from repro.db import Database, KeyConstraint, PrimaryKeySet, Schema, fact
from repro.errors import ConstraintError


class TestKeyConstraint:
    def test_prefix_key_detection(self):
        assert KeyConstraint("R", [1, 2]).is_prefix_key()
        assert not KeyConstraint("R", [2]).is_prefix_key()

    def test_key_of_projects_on_key_positions(self):
        constraint = KeyConstraint("R", [1, 3])
        assert constraint.key_of(fact("R", "a", "b", "c")) == ("a", "c")

    def test_key_of_wrong_relation(self):
        with pytest.raises(ConstraintError):
            KeyConstraint("R", [1]).key_of(fact("S", 1))

    def test_key_positions_must_be_positive(self):
        with pytest.raises(ConstraintError):
            KeyConstraint("R", [0])

    def test_key_positions_beyond_arity(self):
        with pytest.raises(ConstraintError):
            KeyConstraint("R", [5]).key_of(fact("R", 1, 2))

    def test_str(self):
        assert str(KeyConstraint("R", [2, 1])) == "key(R) = {1, 2}"


class TestPrimaryKeySet:
    def test_at_most_one_key_per_relation(self):
        keys = PrimaryKeySet([KeyConstraint("R", [1])])
        with pytest.raises(ConstraintError):
            keys.add(KeyConstraint("R", [2]))

    def test_identical_redeclaration_is_fine(self):
        keys = PrimaryKeySet([KeyConstraint("R", [1])])
        keys.add(KeyConstraint("R", [1]))
        assert len(keys) == 1

    def test_key_value_with_and_without_key(self, employee_keys):
        keyed = employee_keys.key_value(fact("Employee", 1, "Bob", "HR"))
        assert keyed == ("Employee", (1,))
        unkeyed = employee_keys.key_value(fact("Dept", "HR", 1))
        assert unkeyed == ("Dept", ("HR", 1))

    def test_in_conflict(self, employee_keys):
        first = fact("Employee", 1, "Bob", "HR")
        second = fact("Employee", 1, "Bob", "IT")
        third = fact("Employee", 2, "Alice", "IT")
        assert employee_keys.in_conflict(first, second)
        assert not employee_keys.in_conflict(first, third)
        assert not employee_keys.in_conflict(first, first)

    def test_is_consistent(self, employee_db, employee_keys):
        assert not employee_keys.is_consistent(employee_db)
        repair = [fact("Employee", 1, "Bob", "HR"), fact("Employee", 2, "Tim", "IT")]
        assert employee_keys.is_consistent(repair)

    def test_violations_reports_conflicting_pairs(self, employee_db, employee_keys):
        violations = employee_keys.violations(employee_db)
        assert len(violations) == 2
        for first, second in violations:
            assert employee_keys.key_value(first) == employee_keys.key_value(second)

    def test_unkeyed_relations_never_conflict(self):
        keys = PrimaryKeySet()
        assert keys.is_consistent([fact("R", 1, "a"), fact("R", 1, "b")])

    def test_has_key_and_relations_with_keys(self, employee_keys):
        assert employee_keys.has_key("Employee")
        assert not employee_keys.has_key("Dept")
        assert employee_keys.relations_with_keys() == ("Employee",)

    def test_from_dict_and_primary_key_constructors(self):
        keys = PrimaryKeySet.from_dict({"R": [1, 2]})
        assert keys.key_for("R").sorted_positions == (1, 2)
        single = PrimaryKeySet.primary_key("S", 1)
        assert single.has_key("S")

    def test_normalised_moves_key_columns_to_prefix(self):
        schema = Schema.from_arities({"R": 3})
        keys = PrimaryKeySet([KeyConstraint("R", [3])])
        normalised, permutations = keys.normalised(schema)
        assert normalised.key_for("R").sorted_positions == (1,)
        assert permutations["R"] == (3, 1, 2)

    def test_equality(self):
        assert PrimaryKeySet.from_dict({"R": [1]}) == PrimaryKeySet.from_dict({"R": [1]})
        assert PrimaryKeySet.from_dict({"R": [1]}) != PrimaryKeySet.from_dict({"R": [2]})
