"""Unit tests for the query AST, builders and parser."""

import pytest

from repro.errors import QueryError, QueryParseError
from repro.query import (
    And,
    Atom,
    Equality,
    Exists,
    ForAll,
    Not,
    Or,
    Query,
    Top,
    Variable,
    atom,
    conjunctive_query,
    parse_formula,
    parse_query,
    union_query,
    var,
    vars_,
)


class TestAst:
    def test_atom_free_variables_and_str(self):
        x, y = vars_("x", "y")
        a = Atom("R", (x, 1, y))
        assert a.free_variables() == {x, y}
        assert a.variables() == (x, y)
        assert a.constants() == (1,)
        assert str(a) == "R(x, 1, y)"

    def test_quantifier_binds_variables(self):
        x, y = vars_("x", "y")
        formula = Exists((x,), Atom("R", (x, y)))
        assert formula.free_variables() == {y}
        assert formula.all_variables() == {x, y}

    def test_connective_operators(self):
        x = var("x")
        left, right = Atom("R", (x,)), Atom("S", (x,))
        assert isinstance(left & right, And)
        assert isinstance(left | right, Or)
        assert isinstance(~left, Not)

    def test_atoms_are_collected_in_order(self):
        x = var("x")
        formula = And((Atom("R", (x,)), Or((Atom("S", (x,)), Atom("T", (x,))))))
        assert [a.relation for a in formula.atoms()] == ["R", "S", "T"]
        assert formula.relations() == {"R", "S", "T"}

    def test_query_validates_answer_variables(self):
        x, y = vars_("x", "y")
        # y is free but not declared -> rejected
        with pytest.raises(QueryError):
            Query(Atom("R", (x, y)), (x,))
        # declared but not free -> rejected
        with pytest.raises(QueryError):
            Query(Exists((x, y), Atom("R", (x, y))), (x,))
        # correct
        query = Query(Exists((y,), Atom("R", (x, y))), (x,))
        assert query.arity == 1 and not query.is_boolean

    def test_empty_connectives_rejected(self):
        with pytest.raises(QueryError):
            And(())
        with pytest.raises(QueryError):
            Or(())
        with pytest.raises(QueryError):
            Exists((), Top())


class TestBuilders:
    def test_conjunctive_query_closes_non_answer_variables(self):
        x, y = vars_("x", "y")
        query = conjunctive_query([atom("R", x, y)], answer_variables=(x,))
        assert query.answer_variables == (x,)
        assert query.formula.free_variables() == {x}

    def test_union_query_and_empty_union(self):
        x = var("x")
        query = union_query([[atom("R", x)], [atom("S", x)]])
        assert query.is_boolean
        empty = union_query([])
        assert str(empty.formula) == "FALSE"

    def test_atom_builder_treats_strings_as_constants(self):
        a = atom("R", "HR", var("x"))
        assert a.constants() == ("HR",)
        assert len(a.variables()) == 1


class TestParser:
    def test_parses_the_employee_query(self, same_department_query):
        atoms = same_department_query.atoms()
        assert len(atoms) == 2
        assert all(a.relation == "Employee" for a in atoms)
        assert same_department_query.is_boolean

    def test_lowercase_is_variable_uppercase_is_constant(self):
        formula = parse_formula("R(x, Bob, 'IT', 3)")
        a = formula.atoms()[0]
        assert a.terms[0] == Variable("x")
        assert a.terms[1] == "Bob"
        assert a.terms[2] == "IT"
        assert a.terms[3] == 3

    def test_operator_precedence_and_parentheses(self):
        formula = parse_formula("R(x) AND S(x) OR T(x)")
        assert isinstance(formula, Or)
        grouped = parse_formula("R(x) AND (S(x) OR T(x))")
        assert isinstance(grouped, And)

    def test_quantifiers_not_and_equality(self):
        formula = parse_formula("FORALL x . NOT R(x) OR x = 1")
        assert isinstance(formula, ForAll)
        exists = parse_formula("EXISTS x, y . R(x, y)")
        assert isinstance(exists, Exists)
        assert len(exists.variables) == 2

    def test_true_false_literals(self):
        assert str(parse_formula("TRUE")) == "TRUE"
        assert str(parse_formula("FALSE")) == "FALSE"

    def test_auto_close_and_answer_variables(self):
        boolean = parse_query("R(x, y)")
        assert boolean.is_boolean
        non_boolean = parse_query("R(x, y)", answer_variables=["x"])
        assert non_boolean.arity == 1

    def test_parse_errors(self):
        with pytest.raises(QueryParseError):
            parse_query("R(x")
        with pytest.raises(QueryParseError):
            parse_query("R(x) AND")
        with pytest.raises(QueryParseError):
            parse_query("EXISTS X . R(X)")  # uppercase bound variable
        with pytest.raises(QueryParseError):
            parse_query("R(x) ???")

    def test_floats_and_negative_numbers(self):
        a = parse_formula("R(-3, 2.5)").atoms()[0]
        assert a.terms == (-3, 2.5)
