"""Tests for the Theorem 6.2 FPRAS, the CQA FPRAS and the Karp-Luby baseline."""

import random

import pytest

from repro.approx import (
    CQAFpras,
    KarpLubyEstimator,
    LambdaFPRAS,
    Sampler,
    estimate_union_karp_luby,
    karp_luby_sample_size,
    sample_size,
    summarise_trials,
    wilson_interval,
)
from repro.errors import ApproximationError, FragmentError
from repro.lams import CQACompactor, Selector
from repro.problems import DisjointPositiveDNFCompactor, count_disjoint_positive_dnf
from repro.query import parse_query
from repro.workloads import random_disjoint_positive_dnf


class TestSampleSize:
    def test_formula_of_theorem_6_2(self):
        # t = ceil((2+eps) * m^k / eps^2 * ln(2/delta))
        import math

        expected_k1 = math.ceil((2 + 0.5) * 2 / 0.25 * math.log(4))
        expected_k2 = math.ceil((2 + 0.5) * 4 / 0.25 * math.log(4))
        assert sample_size(0.5, 0.5, 2, 1) == expected_k1
        assert sample_size(0.5, 0.5, 2, 2) == expected_k2

    def test_grows_with_keywidth(self):
        assert sample_size(0.1, 0.05, 4, 3) > sample_size(0.1, 0.05, 4, 2) > sample_size(0.1, 0.05, 4, 1)

    def test_degenerate_instances(self):
        assert sample_size(0.1, 0.1, 0, 2) == 1

    def test_invalid_parameters(self):
        with pytest.raises(ApproximationError):
            sample_size(0, 0.1, 2, 1)
        with pytest.raises(ApproximationError):
            sample_size(0.1, 1.5, 2, 1)
        with pytest.raises(ApproximationError):
            sample_size(0.1, 0.1, 2, -1)


class TestSamplerAndLambdaFPRAS:
    def test_sampler_hit_probability_is_f_over_u(self, employee_db, employee_keys, same_department_query):
        compactor = CQACompactor(same_department_query, employee_keys)
        sampler = Sampler(compactor, employee_db, rng=3)
        assert sampler.sample_space_size == 4
        hits = sampler.sample_many(4000)
        assert 0.42 < hits / 4000 < 0.58  # true probability is 1/2

    def test_fpras_is_accurate_on_dnf_instances(self):
        formula = random_disjoint_positive_dnf(6, 3, 8, 2, seed=9)
        exact = count_disjoint_positive_dnf(formula)
        scheme = LambdaFPRAS(DisjointPositiveDNFCompactor(k=formula.width))
        result = scheme.estimate(formula, epsilon=0.1, delta=0.05, rng=1)
        assert result.samples == result.requested_samples
        assert not result.capped
        assert abs(result.estimate - exact) <= 0.1 * exact

    def test_guarantee_holds_empirically(self):
        formula = random_disjoint_positive_dnf(5, 3, 6, 2, seed=2)
        exact = count_disjoint_positive_dnf(formula)
        scheme = LambdaFPRAS(DisjointPositiveDNFCompactor(k=formula.width))
        rng = random.Random(0)
        estimates = [scheme(formula, 0.25, 0.2, rng=rng) for _ in range(30)]
        summary = summarise_trials(exact, estimates, epsilon=0.25)
        # The theorem promises >= 1 - delta = 0.8; leave slack for test noise.
        assert summary.within_epsilon_rate >= 0.8

    def test_zero_functions_are_estimated_as_zero(self, employee_db, employee_keys):
        query = parse_query("Employee(3, x, y)")
        compactor = CQACompactor(query, employee_keys)
        scheme = LambdaFPRAS(compactor)
        assert scheme(employee_db, 0.3, 0.2, rng=0) == 0.0

    def test_unbounded_compactor_requires_override(self):
        compactor = DisjointPositiveDNFCompactor(k=None)
        with pytest.raises(ApproximationError):
            LambdaFPRAS(compactor)
        # With an explicit override the scheme works.
        formula = random_disjoint_positive_dnf(4, 2, 4, 2, seed=3)
        scheme = LambdaFPRAS(compactor, k_override=formula.width)
        assert scheme(formula, 0.3, 0.2, rng=0) >= 0

    def test_max_samples_cap_is_flagged(self):
        formula = random_disjoint_positive_dnf(5, 3, 6, 2, seed=4)
        scheme = LambdaFPRAS(DisjointPositiveDNFCompactor(k=formula.width), max_samples=10)
        result = scheme.estimate(formula, epsilon=0.05, delta=0.05, rng=0)
        assert result.capped and result.samples == 10


class TestCQAFpras:
    def test_estimates_the_paper_example(self, employee_db, employee_keys, same_department_query):
        scheme = CQAFpras(same_department_query, employee_keys)
        result = scheme.estimate(employee_db, epsilon=0.1, delta=0.05, rng=7)
        assert result.total_repairs == 4
        assert abs(result.estimate - 2) <= 0.1 * 2
        assert abs(result.frequency_estimate - 0.5) <= 0.05
        assert result.keywidth == 2 and result.max_block_size == 2

    def test_membership_modes_agree(self, employee_db, employee_keys, same_department_query):
        by_selectors = CQAFpras(same_department_query, employee_keys, membership="selectors")
        by_evaluation = CQAFpras(same_department_query, employee_keys, membership="evaluate")
        first = by_selectors.estimate(employee_db, 0.1, 0.05, rng=11)
        second = by_evaluation.estimate(employee_db, 0.1, 0.05, rng=11)
        assert first.successes == second.successes  # same rng, same samples

    def test_non_boolean_query_with_answer(self, employee_db, employee_keys):
        query = parse_query("Employee(1, x, y)", answer_variables=["x", "y"])
        scheme = CQAFpras(query, employee_keys)
        estimate = scheme.estimate_count(employee_db, 0.1, 0.05, answer=("Bob", "HR"), rng=5)
        assert abs(estimate - 2) <= 0.3

    def test_fo_query_is_rejected(self, employee_keys):
        with pytest.raises(FragmentError):
            CQAFpras(parse_query("NOT Employee(1, x, y)"), employee_keys)

    def test_invalid_membership_mode(self, employee_keys, same_department_query):
        with pytest.raises(ApproximationError):
            CQAFpras(same_department_query, employee_keys, membership="bogus")


class TestKarpLuby:
    def test_sample_size_scales_with_boxes_not_domains(self):
        assert karp_luby_sample_size(0.1, 0.05, 10) < karp_luby_sample_size(0.1, 0.05, 100)
        with pytest.raises(ApproximationError):
            karp_luby_sample_size(-1, 0.5, 3)

    def test_estimates_a_union_accurately(self):
        sizes = (3, 3, 3, 3)
        selectors = [Selector({0: 0}), Selector({1: 1, 2: 2}), Selector({3: 0})]
        from repro.lams import count_union_of_boxes

        exact = count_union_of_boxes(sizes, selectors)
        result = estimate_union_karp_luby(sizes, selectors, epsilon=0.1, delta=0.05, rng=2)
        assert abs(result.estimate - exact) <= 0.1 * exact

    def test_no_boxes_gives_zero(self):
        result = estimate_union_karp_luby((2, 2), [], epsilon=0.2, delta=0.1, rng=0)
        assert result.estimate == 0.0 and result.samples == 0

    def test_estimator_bound_to_compactor(self, employee_db, employee_keys, same_department_query):
        compactor = CQACompactor(same_department_query, employee_keys)
        estimator = KarpLubyEstimator(compactor)
        estimate = estimator(employee_db, 0.1, 0.05, rng=4)
        assert abs(estimate - 2) <= 0.2


class TestStatistics:
    def test_trial_summary_metrics(self):
        summary = summarise_trials(10.0, [9.0, 10.5, 12.5], epsilon=0.1)
        assert summary.trials == 3
        assert summary.mean == pytest.approx(32.0 / 3)
        assert summary.max_relative_error == pytest.approx(0.25)
        assert summary.within_epsilon_rate == pytest.approx(2 / 3)

    def test_wilson_interval_brackets_the_point_estimate(self):
        low, high = wilson_interval(80, 100)
        assert low < 0.8 < high
        assert wilson_interval(0, 0) == (0.0, 1.0)
