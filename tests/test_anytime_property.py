"""Property tests for the anytime drivers (``repro.approx.anytime``).

Over ≥ 50 random seeded instances — Karp–Luby unions of boxes and CQA
FPRAS runs on random inconsistent databases — three structural
properties of :func:`~repro.approx.run_plan` are pinned:

* **monotonicity**: the snapshot stream never widens — each interval is
  contained in the previous one (``lo`` non-decreasing, ``hi``
  non-increasing);
* **consistency**: every snapshot's interval contains the *final*
  estimate, whatever the remaining draws did — the deterministic
  feasibility band guarantees this unconditionally, not just with
  probability ``1 − δ``;
* **bit-identity**: running a plan to its full sample budget consumes
  the random stream exactly as the fixed-(ε, δ) ``estimate()`` loop
  does, so the full-budget anytime result equals the fixed result *bit
  for bit* with the same seed.

Stopping-rule behaviour (latency via an injectable fake clock, the
relative-error target, chunking edge cases) is covered here too, since
this is the only file that owns the anytime driver.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.approx import (
    CQAFpras,
    IntervalSnapshot,
    SamplingPlan,
    estimate_union_karp_luby,
    hoeffding_half_width,
    karp_luby_plan,
    run_plan,
)
from repro.errors import ApproximationError
from repro.lams import Selector
from repro.workloads import (
    InconsistentDatabaseSpec,
    random_conjunctive_query,
    random_inconsistent_database,
)

_RELATIONS = {"R": 3, "S": 3}


def _random_union(rng: random.Random):
    """A random (domain sizes, selectors) union-of-boxes instance."""
    dims = rng.randint(3, 5)
    sizes = tuple(rng.randint(2, 6) for _ in range(dims))
    boxes = []
    for _ in range(rng.randint(1, 4)):
        pinned = rng.sample(range(dims), rng.randint(1, min(3, dims)))
        boxes.append(Selector({dim: rng.randrange(sizes[dim]) for dim in pinned}))
    return sizes, boxes


def _assert_monotone_and_consistent(snapshots, final_estimate):
    previous = None
    for snapshot in snapshots:
        assert isinstance(snapshot, IntervalSnapshot)
        assert snapshot.lo <= snapshot.hi
        if previous is not None:
            assert snapshot.lo >= previous.lo  # never widens downward
            assert snapshot.hi <= previous.hi  # never widens upward
            assert snapshot.samples > previous.samples
        previous = snapshot
        # The feasibility band makes this a sure statement, not a
        # probabilistic one: the final estimate lies in every interval.
        assert snapshot.lo <= final_estimate <= snapshot.hi


class TestKarpLubyInstances:
    """40 random unions: the workhorse family (cheap exact counts)."""

    @pytest.mark.parametrize("seed", range(40))
    def test_stream_properties_and_full_budget_bit_identity(self, seed):
        rng = random.Random(seed)
        sizes, boxes = _random_union(rng)
        plan_seed = rng.randrange(2**32)
        chunk = rng.choice([1, 3, 7, None])

        plan = karp_luby_plan(
            sizes, boxes, epsilon=0.4, delta=0.2, rng=plan_seed, max_samples=96
        )
        trace = run_plan(plan, chunk_size=chunk)
        assert trace.stop_reason == "budget"
        assert trace.samples == plan.samples

        fixed = estimate_union_karp_luby(
            sizes, boxes, epsilon=0.4, delta=0.2, rng=plan_seed, max_samples=96
        )
        # Bit-identical, not approximately equal: same draws, same
        # float expression, same result record.
        assert trace.result == fixed
        assert trace.estimate == fixed.estimate

        _assert_monotone_and_consistent(trace.snapshots, trace.estimate)

    @pytest.mark.parametrize("seed", range(40, 50))
    def test_chunk_size_does_not_change_the_final_result(self, seed):
        rng = random.Random(seed)
        sizes, boxes = _random_union(rng)
        plan_seed = rng.randrange(2**32)

        def full_run(chunk):
            plan = karp_luby_plan(
                sizes, boxes, epsilon=0.5, delta=0.2, rng=plan_seed, max_samples=64
            )
            return run_plan(plan, chunk_size=chunk)

        results = [full_run(chunk) for chunk in (1, 5, None)]
        estimates = {trace.estimate for trace in results}
        assert len(estimates) == 1  # chunking only changes the snapshots
        for trace in results:
            _assert_monotone_and_consistent(trace.snapshots, trace.estimate)


class TestCQAFprasInstances:
    """A dozen random inconsistent databases through the Corollary 6.4 plan."""

    @pytest.mark.parametrize("seed", range(12))
    def test_stream_properties_and_full_budget_bit_identity(self, seed):
        rng = random.Random(1000 + seed)
        spec = InconsistentDatabaseSpec(
            relations=_RELATIONS,
            blocks_per_relation=rng.randint(4, 8),
            conflict_rate=0.5,
            max_block_size=3,
            domain_size=8,
        )
        database, keys = random_inconsistent_database(spec, seed=rng.randrange(2**16))
        query = random_conjunctive_query(
            _RELATIONS, keys, target_keywidth=1, seed=rng.randrange(2**16)
        )
        scheme = CQAFpras(query, keys, max_samples=128)
        plan_seed = rng.randrange(2**32)

        plan = scheme.plan(database, epsilon=0.4, delta=0.2, rng=plan_seed)
        trace = run_plan(plan, chunk_size=rng.choice([1, 4, None]))
        fixed = scheme.estimate(database, epsilon=0.4, delta=0.2, rng=plan_seed)

        assert trace.stop_reason == "budget"
        assert trace.result == fixed
        assert trace.estimate == fixed.estimate
        _assert_monotone_and_consistent(trace.snapshots, trace.estimate)


def _constant_plan(samples: int, scale: float = 100.0) -> SamplingPlan:
    """A deterministic always-hit plan for stopping-rule tests."""
    return SamplingPlan(
        draw=lambda: True,
        samples=samples,
        requested_samples=samples,
        scale=scale,
        epsilon=0.1,
        delta=0.1,
        estimate_of=lambda s, n: scale * s / n if n else 0.0,
        finalise=lambda s, n: (s, n),
    )


class TestStoppingRules:
    def test_latency_budget_stops_early_but_serves_at_least_one_chunk(self):
        ticks = iter(float(i) for i in range(100))
        trace = run_plan(
            _constant_plan(1000),
            max_latency=0.5,
            chunk_size=10,
            clock=lambda: next(ticks),
        )
        assert trace.stop_reason == "latency"
        assert 0 < trace.samples < 1000
        assert len(trace.snapshots) == 1  # first chunk already over budget

    def test_error_target_stops_once_the_interval_is_tight(self):
        # An always-hit plan collapses the feasibility band towards the
        # scale; a loose 20% target fires well before the full budget.
        trace = run_plan(_constant_plan(10_000), max_error=0.2, chunk_size=50)
        assert trace.stop_reason == "error"
        assert trace.samples < 10_000
        lo, hi = trace.interval
        assert hi - lo <= 2 * 0.2 * max(abs(trace.estimate), 1.0)

    def test_full_budget_reports_budget(self):
        trace = run_plan(_constant_plan(40), chunk_size=8)
        assert trace.stop_reason == "budget"
        assert trace.samples == 40
        assert len(trace.snapshots) == 5

    def test_degenerate_plan_returns_an_exact_zero(self):
        trace = run_plan(_constant_plan(0))
        assert trace.estimate == 0.0
        assert trace.interval == (0.0, 0.0)
        assert trace.samples == 0 and trace.stop_reason == "budget"

    def test_invalid_knobs_are_rejected(self):
        with pytest.raises(ApproximationError, match="max_latency"):
            run_plan(_constant_plan(10), max_latency=0.0)
        with pytest.raises(ApproximationError, match="max_error"):
            run_plan(_constant_plan(10), max_error=-0.1)
        with pytest.raises(ApproximationError, match="chunk_size"):
            run_plan(_constant_plan(10), chunk_size=0)

    def test_raw_half_width_matches_the_hoeffding_formula(self):
        trace = run_plan(_constant_plan(40), chunk_size=8)
        assert trace.raw_half_width == hoeffding_half_width(100.0, 0.1, 40, 5)
        assert math.isfinite(trace.raw_half_width)
