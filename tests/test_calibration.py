"""Tests for conformal calibration and the statistics helpers.

Three layers are pinned here:

* :func:`~repro.approx.conformal_quantile` and
  :class:`~repro.approx.ConformalCalibrator` follow the split-conformal
  prescription exactly — the sorted-score quantile at index
  ``⌈n · (1 − α)⌉``, an error on an empty calibration set, and a
  conservative (never tighter than the raw interval) fallback when
  ``n < 1/α``;
* end to end, calibrating on real Karp–Luby residuals yields intervals
  that are *tighter* than the raw Hoeffding ones yet still achieve the
  ``≥ 1 − α`` empirical coverage on a held-out set of ≥ 200 pairs;
* the :mod:`repro.approx.statistics` helpers (``wilson_interval``,
  ``empirical_error_rate``) behave at their boundaries — zero trials,
  zero successes, all successes, unusual confidence levels.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.approx import (
    ConformalCalibrator,
    conformal_quantile,
    empirical_error_rate,
    karp_luby_plan,
    run_plan,
    wilson_interval,
)
from repro.errors import ApproximationError
from repro.lams import Selector, count_union_of_boxes


class TestConformalQuantile:
    def test_empty_calibration_set_raises(self):
        with pytest.raises(ApproximationError, match="empty"):
            conformal_quantile([], alpha=0.1)

    def test_alpha_must_lie_in_the_open_unit_interval(self):
        for alpha in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ApproximationError, match="alpha"):
                conformal_quantile([0.5], alpha)

    def test_small_samples_fall_back_conservatively(self):
        # n·α < 1: the empirical distribution cannot witness the 1−α
        # level, so the quantile must never tighten the raw interval …
        assert conformal_quantile([0.2, 0.3], alpha=0.1) == 1.0
        # … and must never clip an observed score larger than 1 either.
        assert conformal_quantile([0.2, 3.5], alpha=0.1) == 3.5

    def test_sorted_score_index_matches_the_prescription(self):
        scores = [i / 100 for i in range(1, 101)]  # 0.01 … 1.00
        random.Random(3).shuffle(scores)  # order must not matter
        # n = 100, α = 0.1 → index ⌈90⌉ = 90 (0-based) → 91st order stat.
        assert conformal_quantile(scores, alpha=0.1) == pytest.approx(0.91)

    def test_index_is_clamped_into_range(self):
        # ⌈n·(1−α)⌉ = n for tiny α; the quantile is then the max score.
        scores = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
        assert conformal_quantile(scores, alpha=0.05) == 1.0

    def test_duplicate_residuals_are_handled(self):
        # Ties are common in practice (identical jobs → identical
        # residuals); the quantile is simply the tied value.
        scores = [0.5] * 20
        assert conformal_quantile(scores, alpha=0.1) == 0.5
        mixed = [0.25] * 15 + [0.75] * 5
        assert conformal_quantile(mixed, alpha=0.1) == 0.75


class TestConformalCalibrator:
    def test_observe_rejects_degenerate_uncertainty(self):
        calibrator = ConformalCalibrator()
        for bad in (0.0, -1.0, math.inf, math.nan):
            with pytest.raises(ApproximationError, match="uncertainty"):
                calibrator.observe(10.0, bad, 11.0)
        assert len(calibrator) == 0

    def test_scores_are_normalised_residuals(self):
        calibrator = ConformalCalibrator([(10.0, 2.0, 11.0), (4.0, 0.5, 3.0)])
        assert calibrator.scores() == [0.5, 2.0]

    def test_quantile_raises_on_an_empty_table(self):
        with pytest.raises(ApproximationError, match="empty"):
            ConformalCalibrator().quantile(0.1)

    def test_is_conservative_flags_small_tables(self):
        small = ConformalCalibrator([(1.0, 1.0, 1.0)] * 5)
        large = ConformalCalibrator([(1.0, 1.0, 1.0)] * 50)
        assert small.is_conservative(0.1)
        assert not large.is_conservative(0.1)

    def test_calibrate_rescales_and_clamps_at_zero(self):
        # 20 observations, all with score 0.5 → q = 0.5.
        calibrator = ConformalCalibrator([(10.0, 2.0, 11.0)] * 20)
        lo, hi = calibrator.calibrate(estimate=8.0, uncertainty=4.0, alpha=0.1)
        assert (lo, hi) == (6.0, 10.0)
        lo, hi = calibrator.calibrate(estimate=1.0, uncertainty=4.0, alpha=0.1)
        assert lo == 0.0 and hi == 3.0  # counts are never negative

    def test_payload_round_trip(self):
        calibrator = ConformalCalibrator([(10.0, 2.0, 11.0), (4.0, 0.5, 3.0)])
        clone = ConformalCalibrator.from_payload(calibrator.to_payload())
        assert clone.observations == calibrator.observations
        assert clone.quantile(0.4) == calibrator.quantile(0.4)

    def test_malformed_payload_is_rejected(self):
        with pytest.raises(ApproximationError, match="observations"):
            ConformalCalibrator.from_payload({"observations": "nope"})


def _karp_luby_pairs(count: int, seed: int):
    """(estimate, raw half-width, exact) triples from real estimator runs.

    Random unions of boxes, each estimated once by a capped Karp–Luby
    anytime run; the exact count comes from the inclusion–exclusion
    counter.  Everything derives from ``seed`` — the pairs, and therefore
    the coverage numbers below, are bit-reproducible.
    """
    rng = random.Random(seed)
    pairs = []
    while len(pairs) < count:
        dims = rng.randint(3, 4)
        sizes = tuple(rng.randint(2, 5) for _ in range(dims))
        boxes = []
        for _ in range(rng.randint(1, 3)):
            pinned = rng.sample(range(dims), rng.randint(1, 2))
            boxes.append(
                Selector({dim: rng.randrange(sizes[dim]) for dim in pinned})
            )
        exact = count_union_of_boxes(sizes, boxes)
        plan = karp_luby_plan(
            sizes,
            boxes,
            epsilon=0.4,
            delta=0.2,
            rng=rng.randrange(2**32),
            max_samples=64,
        )
        if plan.samples == 0:
            continue
        trace = run_plan(plan)
        half_width = trace.raw_half_width
        if not math.isfinite(half_width) or half_width <= 0:
            continue
        pairs.append((trace.estimate, half_width, float(exact)))
    return pairs


class TestEndToEndCoverage:
    def test_calibrated_intervals_cover_a_holdout_at_alpha_10(self):
        # Satellite: ≥ 90% empirical coverage at α = 0.1 on ≥ 200
        # held-out pairs, with both halves produced by the real
        # estimator stack (not synthetic residuals).
        pairs = _karp_luby_pairs(1000, seed=4)
        calibration, holdout = pairs[:750], pairs[750:]
        assert len(holdout) >= 200
        calibrator = ConformalCalibrator(calibration)
        assert not calibrator.is_conservative(0.1)
        coverage = calibrator.coverage(holdout, alpha=0.1)
        assert coverage >= 0.90

    def test_calibration_tightens_the_hoeffding_radius(self):
        # The whole point: the conformal quantile is well below 1 on
        # this workload, i.e. calibrated intervals are strictly tighter
        # than the distribution-free Hoeffding ones.
        pairs = _karp_luby_pairs(300, seed=4)
        calibrator = ConformalCalibrator(pairs)
        assert calibrator.quantile(0.1) < 0.5

    def test_empty_holdout_reports_zero_coverage(self):
        calibrator = ConformalCalibrator([(1.0, 1.0, 1.0)] * 20)
        assert calibrator.coverage([], alpha=0.1) == 0.0


class TestWilsonInterval:
    def test_zero_trials_is_the_vacuous_interval(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_zero_successes_pins_the_lower_end(self):
        lo, hi = wilson_interval(0, 50)
        assert lo == 0.0
        assert 0.0 < hi < 0.15  # small but nonzero upper bound

    def test_all_successes_pins_the_upper_end(self):
        lo, hi = wilson_interval(50, 50)
        assert hi == pytest.approx(1.0)
        assert 0.85 < lo < 1.0

    def test_interval_brackets_the_proportion(self):
        lo, hi = wilson_interval(30, 100)
        assert lo < 0.3 < hi

    def test_higher_confidence_widens_the_interval(self):
        lo90, hi90 = wilson_interval(40, 100, confidence=0.90)
        lo99, hi99 = wilson_interval(40, 100, confidence=0.99)
        assert lo99 < lo90 and hi90 < hi99

    def test_unusual_confidence_falls_back_to_95(self):
        # Confidence ≈ 1 has no tabulated z; the helper documents a
        # fall-back to the 95% quantile rather than extrapolating.
        assert wilson_interval(40, 100, confidence=0.9999) == wilson_interval(
            40, 100, confidence=0.95
        )

    def test_bounds_are_clamped_to_the_unit_interval(self):
        lo, hi = wilson_interval(1, 2, confidence=0.99)
        assert 0.0 <= lo <= hi <= 1.0


class TestEmpiricalErrorRate:
    def test_runs_the_estimator_the_requested_number_of_times(self):
        calls = []
        summary = empirical_error_rate(
            lambda: calls.append(1) or 10.0, exact=10.0, epsilon=0.1, trials=7
        )
        assert len(calls) == 7
        assert summary.trials == 7
        assert summary.within_epsilon_rate == 1.0

    def test_zero_trials_yields_an_empty_summary(self):
        summary = empirical_error_rate(lambda: 1.0, 10.0, 0.1, trials=0)
        assert summary.trials == 0
        assert summary.within_epsilon_rate == 0.0
        assert summary.mean == 0.0 and summary.max_relative_error == 0.0

    def test_exact_zero_counts_absolute_misses(self):
        summary = empirical_error_rate(
            iter([0.0, 2.0, 0.0]).__next__, exact=0.0, epsilon=0.1, trials=3
        )
        assert summary.within_epsilon_rate == pytest.approx(2 / 3)
        assert summary.max_relative_error == 2.0
