"""Unit and property tests for the block decomposition."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.db import BlockDecomposition, Database, PrimaryKeySet, fact


class TestBlockDecompositionEmployee:
    def test_two_blocks_of_size_two(self, employee_db, employee_keys):
        decomposition = BlockDecomposition(employee_db, employee_keys)
        assert len(decomposition) == 2
        assert decomposition.block_sizes() == (2, 2)
        assert decomposition.total_repairs() == 4
        assert decomposition.max_block_size() == 2

    def test_blocks_are_ordered_by_key_value(self, employee_db, employee_keys):
        decomposition = BlockDecomposition(employee_db, employee_keys)
        assert decomposition[0].key_value == ("Employee", (1,))
        assert decomposition[1].key_value == ("Employee", (2,))

    def test_block_of_and_index(self, employee_db, employee_keys):
        decomposition = BlockDecomposition(employee_db, employee_keys)
        item = fact("Employee", 2, "Alice", "IT")
        assert item in decomposition.block_of(item)
        assert decomposition.block_index_of(item) == 1

    def test_block_of_unknown_fact(self, employee_db, employee_keys):
        decomposition = BlockDecomposition(employee_db, employee_keys)
        with pytest.raises(KeyError):
            decomposition.block_index_of(fact("Employee", 9, "X", "Y"))

    def test_repair_from_choices_roundtrip(self, employee_db, employee_keys):
        decomposition = BlockDecomposition(employee_db, employee_keys)
        repair = decomposition.repair_from_choices([0, 1])
        assert len(repair) == 2
        assert decomposition.choices_from_repair(repair) == (0, 1)
        assert decomposition.is_repair(repair)

    def test_non_repairs_are_rejected(self, employee_db, employee_keys):
        decomposition = BlockDecomposition(employee_db, employee_keys)
        assert not decomposition.is_repair(Database([fact("Employee", 1, "Bob", "HR")]))
        assert not decomposition.is_repair(employee_db)

    def test_wrong_number_of_choices(self, employee_db, employee_keys):
        decomposition = BlockDecomposition(employee_db, employee_keys)
        with pytest.raises(ValueError):
            decomposition.repair_from_choices([0])

    def test_conflicting_blocks(self, employee_db, employee_keys):
        decomposition = BlockDecomposition(employee_db, employee_keys)
        assert len(decomposition.conflicting_blocks()) == 2
        assert not decomposition.is_consistent()

    def test_consistent_database_has_singleton_blocks(self, employee_keys):
        database = Database(
            [fact("Employee", 1, "Bob", "HR"), fact("Employee", 2, "Tim", "IT")]
        )
        decomposition = BlockDecomposition(database, employee_keys)
        assert decomposition.is_consistent()
        assert decomposition.total_repairs() == 1

    def test_empty_database(self, employee_keys):
        decomposition = BlockDecomposition(Database(), employee_keys)
        assert len(decomposition) == 0
        assert decomposition.total_repairs() == 1
        assert decomposition.max_block_size() == 0


# --------------------------------------------------------------------------- #
# property-based invariants
# --------------------------------------------------------------------------- #
_fact_strategy = st.builds(
    lambda key, payload: fact("R", key, payload),
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=5),
)


@given(st.lists(_fact_strategy, max_size=25))
@settings(max_examples=60, deadline=None)
def test_blocks_partition_the_database(facts):
    """Blocks are a partition of the database's facts."""
    database = Database(facts)
    keys = PrimaryKeySet.from_dict({"R": [1]})
    decomposition = BlockDecomposition(database, keys)
    union = set()
    total = 0
    for block in decomposition:
        block_facts = set(block.facts)
        assert not (union & block_facts), "blocks must be disjoint"
        union |= block_facts
        total += len(block)
    assert union == set(database.facts())
    assert total == len(database)


@given(st.lists(_fact_strategy, max_size=25))
@settings(max_examples=60, deadline=None)
def test_total_repairs_is_product_of_block_sizes(facts):
    """|rep(D, Σ)| equals the product of the block sizes."""
    database = Database(facts)
    keys = PrimaryKeySet.from_dict({"R": [1]})
    decomposition = BlockDecomposition(database, keys)
    product = 1
    for size in decomposition.block_sizes():
        product *= size
    assert decomposition.total_repairs() == product


@given(st.lists(_fact_strategy, min_size=1, max_size=12))
@settings(max_examples=40, deadline=None)
def test_every_repair_is_consistent_and_maximal(facts):
    """Every assembled repair satisfies Σ and keeps one fact per block."""
    database = Database(facts)
    keys = PrimaryKeySet.from_dict({"R": [1]})
    decomposition = BlockDecomposition(database, keys)
    import itertools

    for choices in itertools.islice(
        itertools.product(*(range(len(block)) for block in decomposition)), 20
    ):
        repair = decomposition.repair_from_choices(choices)
        assert keys.is_consistent(repair)
        assert len(repair) == len(decomposition)
        assert decomposition.is_repair(repair)
