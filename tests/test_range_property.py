"""Randomized property suite: shared range replay ≡ independent replays.

Satellite of the range-materialisation PR: over ≥50 randomly generated
lineage chains — random effective deltas, interspersed rollback records,
random checkpoint placements, randomly *missing* checkpoint snapshots,
and randomly *compacted* delta records below a surviving checkpoint —
:meth:`Lineage.materialise_range` must be

* **bit-identical** to N independent :meth:`Lineage.materialise` calls
  for the same targets (same digests, equal databases), and
* **never more expensive**: the total number of delta applications in
  the one shared walk is at most the sum the independent calls pay.

Targets are every digest still reachable in the surviving delta graph
(compaction removes edges on purpose; unreachable ancestors fail loudly
on both paths and are excluded here), so a wrong replay-tree union, a
bad tie-break among entry points, a stale in-memory seed or a lost
checkpoint mishandled mid-walk would show up as a digest mismatch, an
inequality or a cost regression in this suite.
"""

import random
from collections import deque

import pytest

from repro.db import Database, Delta, Lineage, LineageRecord, fact

_RELATIONS = ("R", "S")
_CHAINS = 60
_KEYS_DIGEST = "k" * 64


def _random_fact(rng):
    relation = rng.choice(_RELATIONS)
    return fact(relation, rng.randrange(12), f"v{rng.randrange(6)}")


def _random_effective_delta(rng, database):
    """A non-empty delta whose inserted/deleted sets are exactly effective."""
    for _ in range(32):
        present = sorted(database.facts())
        inserted = {
            item
            for item in (_random_fact(rng) for _ in range(rng.randint(1, 4)))
            if item not in database.facts()
        }
        deleted = set()
        if present and rng.random() < 0.6:
            deleted = set(rng.sample(present, k=rng.randint(1, min(3, len(present)))))
        if inserted or deleted:
            return Delta(inserted=sorted(inserted), deleted=sorted(deleted))
    raise AssertionError("could not generate an effective delta")


def _random_chain(seed):
    """A random lineage with deltas and rollbacks, plus its state table."""
    rng = random.Random(seed)
    database = Database(
        [_random_fact(rng) for _ in range(rng.randint(2, 8))]
    ).freeze()
    states = {database.content_digest(): database}
    chain = Lineage("live").append(
        LineageRecord(
            "live", 0, database.content_digest(), _KEYS_DIGEST, None,
            "register", None, 0.0,
        )
    )
    head = database
    for _ in range(rng.randint(4, 14)):
        if len(chain) > 2 and rng.random() < 0.15:
            # A rollback: the head jumps to a random earlier digest.
            target = rng.choice(chain.records[:-1]).digest
            head = states[target]
            chain = chain.append(
                LineageRecord(
                    "live", len(chain), target, _KEYS_DIGEST,
                    chain.head.digest, "rollback", None, 0.0,
                )
            )
            continue
        delta = _random_effective_delta(rng, head)
        previous = head
        head = head.apply_delta(delta).freeze()
        chain = chain.append(
            LineageRecord(
                "live", len(chain), head.content_digest(), _KEYS_DIGEST,
                previous.content_digest(), "delta", delta, 0.0,
            )
        )
        states[head.content_digest()] = head
    return chain, states, head, rng


def _random_loaders(rng, states):
    """Checkpoint loaders over a random subset of states; some are 'lost'."""
    digests = sorted(states)
    chosen = rng.sample(digests, k=rng.randint(0, len(digests)))
    loaders = {}
    lost = set()
    for digest in chosen:
        if rng.random() < 0.25:
            # A checkpoint whose snapshot entry is missing/corrupt: the
            # loader yields None and replay must fall back gracefully.
            loaders[digest] = lambda: None
            lost.add(digest)
        else:
            snapshot = states[digest]
            loaders[digest] = lambda snapshot=snapshot: Database(snapshot.facts())
    return loaders, lost


def _maybe_compact(rng, chain, loaders, lost):
    """Sometimes release delta payloads covered by a *surviving* checkpoint.

    Mirrors :meth:`LineageService.compact`: every ``"delta"`` record at
    or below the anchor checkpoint's sequence loses its payload, so the
    digests below it stay materialisable only through checkpoints.
    """
    good = sorted(digest for digest in loaders if digest not in lost)
    if not good or rng.random() < 0.5:
        return chain
    anchor = rng.choice(good)
    horizon = max(
        (record.sequence for record in chain.records if record.digest == anchor),
        default=None,
    )
    if horizon is None:
        return chain
    records = tuple(
        record.compact()
        if record.sequence <= horizon
        and record.kind == "delta"
        and record.delta is not None
        else record
        for record in chain.records
    )
    return Lineage("live", records)


def _reachable(chain, loaders, lost, head_digest):
    """Digests connected to the head or a surviving checkpoint.

    Rebuilds the surviving (uncompacted) delta graph independently of
    the implementation's memoised adjacency, then floods from exactly
    the entry points replay is allowed to use.
    """
    edges = {}
    for record in chain.records:
        if record.kind != "delta" or record.delta is None:
            continue
        edges.setdefault(record.parent_digest, set()).add(record.digest)
        edges.setdefault(record.digest, set()).add(record.parent_digest)
    seeds = {head_digest} | {digest for digest in loaders if digest not in lost}
    seen = set(seeds)
    queue = deque(seeds)
    while queue:
        digest = queue.popleft()
        for neighbour in edges.get(digest, ()):
            if neighbour not in seen:
                seen.add(neighbour)
                queue.append(neighbour)
    return seen


def _counting_apply_delta(monkeypatch):
    """Patch ``Database.apply_delta`` to tally every delta application."""
    counter = {"applied": 0}
    original = Database.apply_delta

    def counted(self, delta):
        counter["applied"] += 1
        return original(self, delta)

    monkeypatch.setattr(Database, "apply_delta", counted)
    return counter


@pytest.mark.parametrize("seed", range(_CHAINS))
def test_range_materialisation_is_bit_identical_to_independent(seed, monkeypatch):
    chain, states, head, rng = _random_chain(seed)
    loaders, lost = _random_loaders(rng, states)
    chain = _maybe_compact(rng, chain, loaders, lost)
    head_digest = head.content_digest()
    targets = sorted(
        digest
        for digest in states
        if digest in _reachable(chain, loaders, lost, head_digest)
    )
    rng.shuffle(targets)
    assert targets, "every chain keeps at least its head reachable"

    counter = _counting_apply_delta(monkeypatch)
    independent = {}
    for digest in targets:
        independent[digest] = chain.materialise(head, digest, checkpoints=loaders)
    independent_cost = counter["applied"]

    counter["applied"] = 0
    shared = dict(chain.materialise_range(head, targets, checkpoints=loaders))
    range_cost = counter["applied"]

    assert sorted(shared) == sorted(independent)
    for digest in targets:
        assert shared[digest].content_digest() == digest
        assert shared[digest] == independent[digest] == states[digest]
    # The cost model: one shared walk never applies more deltas than the
    # independent replays it replaces.
    assert range_cost <= independent_cost


@pytest.mark.parametrize("seed", range(0, _CHAINS, 7))
def test_range_collapses_duplicates_and_handles_head_target(seed, monkeypatch):
    chain, states, head, rng = _random_chain(seed)
    loaders, lost = _random_loaders(rng, states)
    head_digest = head.content_digest()
    reachable = _reachable(chain, loaders, lost, head_digest)
    targets = sorted(digest for digest in states if digest in reachable)
    # Duplicates (and the head itself) must each resolve exactly once.
    request = targets + targets[:2] + [head_digest]
    produced = list(chain.materialise_range(head, request, checkpoints=loaders))
    digests = [digest for digest, _ in produced]
    assert len(digests) == len(set(digests))
    assert set(digests) == set(request)
    for digest, database in produced:
        assert database.content_digest() == digest
        assert database == states[digest]
