"""Tests for the async serving layer (``repro.server``).

What is pinned here:

* configuration and misuse are rejected loudly (:class:`ServerError`);
* shard ownership is a disjoint, balanced, deterministic partition of the
  registered snapshots;
* a sharded async run of a mixed count/update stream is **bit-identical**
  to a sequential :meth:`SolverPool.run_stream` of the same stream;
* backpressure: the ``wait`` policy bounds in-flight jobs without losing
  any, the ``reject`` policy raises instead of queueing, and in neither
  case is a job silently dropped;
* ``stats()`` aggregates per-shard cache/persist counters without
  hand-rolling them.
"""

import asyncio

import pytest

from repro.engine import CountJob, SolverPool, UpdateJob
from repro.errors import EngineError, ServerError, ServerOverloadedError
from repro.server import AsyncServer, serve_stream
from repro.workloads import employee_example, serve_workload

_EMPLOYEE_QUERY = "EXISTS x, y, z . (Employee(1, x, y) AND Employee(2, z, y))"


def _employee_server(**kwargs) -> AsyncServer:
    scenario = employee_example()
    server = AsyncServer(**kwargs)
    server.register("emp", scenario.database, scenario.keys)
    return server


class TestConfiguration:
    def test_rejects_bad_shard_and_queue_counts(self):
        with pytest.raises(ServerError, match="shards"):
            AsyncServer(shards=0)
        with pytest.raises(ServerError, match="queue_limit"):
            AsyncServer(queue_limit=0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ServerError, match="policy"):
            AsyncServer(policy="drop-silently")

    def test_submission_requires_a_running_server(self):
        server = _employee_server(shards=1)
        job = CountJob(database="emp", query=_EMPLOYEE_QUERY)
        with pytest.raises(ServerError, match="not running"):
            asyncio.run(server.submit(job))

    def test_unknown_database_is_rejected_before_queueing(self):
        async def run():
            async with _employee_server(shards=1) as server:
                with pytest.raises(EngineError, match="unknown database"):
                    await server.submit(CountJob(database="ghost", query="R(x)"))
                assert server.submitted == 0

        asyncio.run(run())


class TestRouting:
    def test_ownership_is_a_balanced_disjoint_partition(self):
        registry, _ = serve_workload(jobs=1, databases=5, seed=3)
        server = AsyncServer(shards=3)
        for name, (database, keys) in registry.items():
            server.register(name, database, keys)
        owners = {name: server.shard_of(name) for name in registry}
        assert set(owners) == set(registry)  # every name owned
        loads = [list(owners.values()).count(shard) for shard in range(3)]
        assert max(loads) - min(loads) <= 1  # balanced
        assert server.database_names() == tuple(registry)

    def test_assignment_is_deterministic(self):
        registry, _ = serve_workload(jobs=1, databases=4, seed=3)

        def assign():
            server = AsyncServer(shards=2)
            for name, (database, keys) in registry.items():
                server.register(name, database, keys)
            return {name: server.shard_of(name) for name in registry}

        assert assign() == assign()

    def test_reregistration_keeps_the_owning_shard(self):
        scenario = employee_example()
        server = AsyncServer(shards=2)
        server.register("emp", scenario.database, scenario.keys)
        before = server.shard_of("emp")
        server.register("emp", scenario.database, scenario.keys)
        assert server.shard_of("emp") == before

    def test_updates_route_to_the_owning_shard(self):
        registry, stream = serve_workload(jobs=10, databases=2, update_every=3, seed=11)
        updated = {item.database for item in stream if isinstance(item, UpdateJob)}
        assert updated  # the workload actually contains updates

        async def run():
            server = AsyncServer(shards=2)
            for name, (database, keys) in registry.items():
                server.register(name, database, keys)
            async with server:
                await server.run_stream(stream)
                return await server.stats()

        stats = asyncio.run(run())
        for name in updated:
            owner = None
            for shard_id, shard in stats["shards"].items():
                if name in shard["databases"]:
                    owner = shard_id
            assert owner is not None
            assert stats["shards"][owner]["updates_submitted"] >= 1


class TestEquivalence:
    def test_sharded_stream_is_bit_identical_to_sequential(self):
        registry, stream = serve_workload(jobs=24, databases=3, update_every=5, seed=7)
        pool = SolverPool()
        for name, (database, keys) in registry.items():
            pool.register(name, database, keys)
        sequential = pool.run_stream(stream)

        report = serve_stream(registry, stream, shards=2, queue_limit=8)
        assert report.counts() == sequential.counts()
        assert [(update.index, update.old_digest, update.new_digest)
                for update in report.updates] == [
            (update.index, update.old_digest, update.new_digest)
            for update in sequential.updates
        ]
        assert report.workers == 2

    def test_streamed_results_cover_every_stream_position(self):
        registry, stream = serve_workload(jobs=12, databases=2, update_every=4, seed=2)

        async def run():
            server = AsyncServer(shards=2, queue_limit=4)
            for name, (database, keys) in registry.items():
                server.register(name, database, keys)
            indices = []
            async with server:
                async for result in server.results(stream):
                    indices.append(result.index)
            return indices

        indices = asyncio.run(run())
        assert sorted(indices) == list(range(len(stream)))


class TestBackpressure:
    def test_wait_policy_bounds_in_flight_without_losing_jobs(self):
        jobs = [
            CountJob(database="emp", query=_EMPLOYEE_QUERY) for _ in range(6)
        ]

        async def run():
            async with _employee_server(shards=1, queue_limit=1) as server:
                report = await server.run_stream(jobs)
                return server, report

        server, report = asyncio.run(run())
        assert len(report) == len(jobs)  # nothing dropped
        assert server.peak_in_flight == 1  # the bound actually bound
        assert server.submitted == server.completed == len(jobs)
        assert server.rejected == 0

    def test_reject_policy_raises_instead_of_queueing(self):
        job = CountJob(database="emp", query=_EMPLOYEE_QUERY)

        async def run():
            async with _employee_server(
                shards=1, queue_limit=1, policy="reject"
            ) as server:
                first = await server.dispatch(job, 0)
                # The queue slot is held until `first` completes, which a
                # subprocess cannot have done yet — the next submission
                # must be rejected, loudly.
                with pytest.raises(ServerOverloadedError, match="queue full"):
                    await server.dispatch(job, 1)
                result = await first
                return server, result

        server, result = asyncio.run(run())
        assert result.satisfying == 2  # the accepted job still finished
        assert server.rejected == 1
        assert server.submitted == server.completed == 1

    def test_rejected_jobs_do_not_leak_queue_slots(self):
        job = CountJob(database="emp", query=_EMPLOYEE_QUERY)

        async def run():
            async with _employee_server(
                shards=1, queue_limit=1, policy="reject"
            ) as server:
                first = await server.dispatch(job, 0)
                with pytest.raises(ServerOverloadedError):
                    await server.dispatch(job, 1)
                await first
                # The slot freed by completion must be usable again.
                return await server.submit(job, 2)

        result = asyncio.run(run())
        assert result.satisfying == 2


class TestStatsAndLifecycle:
    def test_stats_aggregate_shard_caches_and_persist_layers(self, tmp_path):
        registry, stream = serve_workload(jobs=8, databases=2, seed=4)

        async def run():
            server = AsyncServer(shards=2, persist_dir=tmp_path / "cache")
            for name, (database, keys) in registry.items():
                server.register(name, database, keys)
            async with server:
                await server.run_stream(stream)
                return await server.stats()

        stats = asyncio.run(run())
        assert stats["queue"]["policy"] == "wait"
        assert stats["queue"]["submitted"] == len(stream)
        assert stats["queue"]["completed"] == len(stream)
        assert set(stats["shards"]) == {"0", "1"}
        for shard in stats["shards"].values():
            layers = shard["cache"]
            assert {"query", "decomposition", "selectors"} <= set(layers)
            assert "selectors-disk" in layers
            assert "decomposition-disk" in layers
            assert "gc_evictions" in layers["selectors-disk"]
            assert "selector_recomputations" in shard
            assert "decomposition_recomputations" in shard

    def test_persist_restart_serves_without_recomputation(self, tmp_path):
        registry, stream = serve_workload(jobs=8, databases=2, seed=6)
        cold = serve_stream(
            registry, stream, shards=2, persist_dir=tmp_path / "cache"
        )
        warm = serve_stream(
            registry, stream, shards=2, persist_dir=tmp_path / "cache"
        )
        assert warm.counts() == cold.counts()
        # Preparation state comes off disk on the restarted server: nothing
        # is recomputed, so no result may record a selector or
        # decomposition miss.
        for result in warm.results:
            assert "selectors" not in result.cache_misses
            assert "decomposition" not in result.cache_misses

    def test_late_registration_serves_new_databases(self):
        scenario = employee_example()

        async def run():
            server = AsyncServer(shards=2)
            server.register("emp", scenario.database, scenario.keys)
            async with server:
                await server.submit(
                    CountJob(database="emp", query=_EMPLOYEE_QUERY)
                )
                server.register("late", scenario.database, scenario.keys)
                return await server.submit(
                    CountJob(database="late", query=_EMPLOYEE_QUERY)
                )

        result = asyncio.run(run())
        assert (result.satisfying, result.total) == (2, 4)

    def test_double_start_is_rejected_and_stop_is_idempotent(self):
        async def run():
            server = _employee_server(shards=1)
            await server.start()
            with pytest.raises(ServerError, match="already running"):
                await server.start()
            await server.stop()
            await server.stop()  # idempotent

        asyncio.run(run())


class TestAnytimeSla:
    """Accuracy–latency SLAs on the serving path (the anytime stack)."""

    def _anytime_job(self, **knobs) -> CountJob:
        return CountJob(
            database="emp",
            query=_EMPLOYEE_QUERY,
            method="fpras",
            epsilon=0.05,
            delta=0.05,
            anytime=True,
            **knobs,
        )

    def test_max_latency_jobs_stop_early_with_an_interval(self):
        from repro.approx import sample_size

        async def run():
            async with _employee_server(shards=1) as server:
                return await server.submit(self._anytime_job(max_latency=1e-6))

        result = asyncio.run(run())
        assert result.stop_reason == "latency"
        assert result.is_estimate
        # The ε = 0.05 prescription was cut short by the latency budget.
        assert 0 < result.samples < sample_size(0.05, 0.05, 2, 2)
        assert result.interval_low <= result.satisfying <= result.interval_high

    def test_max_error_jobs_refine_until_tight_enough(self):
        async def run():
            async with _employee_server(shards=1) as server:
                return await server.submit(self._anytime_job(max_error=0.5))

        result = asyncio.run(run())
        assert result.stop_reason == "error"
        width = result.interval_high - result.interval_low
        assert width <= 2 * 0.5 * max(abs(result.satisfying), 1.0)

    def test_refinement_serves_exact_counts_with_zero_recomputation(self):
        async def run():
            async with _employee_server(shards=1) as server:
                first = await server.submit(self._anytime_job(max_latency=1e-6))
                report = await server.refine()
                again = await server.submit(self._anytime_job(max_latency=1e-6), 1)
                view = await server.calibration()
                return first, report, again, view

        first, report, again, view = asyncio.run(run())
        assert first.is_estimate and "exact" in first.cache_misses
        assert report == {"refined": 1, "pending": 0, "completed": 1}
        # The continuation published the exact count: the re-submitted
        # anytime job is answered exactly, without a single sample drawn.
        assert not again.is_estimate
        assert again.stop_reason == "exact"
        assert again.samples == 0
        assert again.cache_misses == ()
        assert "exact" in again.cache_hits
        assert (again.satisfying, again.total) == (2, 4)
        assert (again.interval_low, again.interval_high) == (2.0, 2.0)
        # The refinement also fed the shard's conformal calibrator.
        assert view["totals"]["refinements_completed"] == 1
        assert view["totals"]["observations"] >= 1
        assert view["totals"]["pending_refinements"] == 0

    def test_calibrate_from_routes_held_out_jobs_to_their_shards(self):
        async def run():
            async with _employee_server(shards=2) as server:
                held_out = [
                    CountJob(
                        database="emp",
                        query=_EMPLOYEE_QUERY,
                        method="fpras",
                        epsilon=0.3,
                        delta=0.2,
                    ),
                    CountJob(database="emp", query=_EMPLOYEE_QUERY),  # exact
                ]
                report = await server.calibrate_from(held_out)
                view = await server.calibration()
                return report, view

        report, view = asyncio.run(run())
        assert report == {"pairs": 1, "skipped": 1}
        assert view["totals"]["observations"] == 1

    def test_admin_probes_require_a_running_server(self):
        server = _employee_server(shards=1)
        for probe in (server.calibration(), server.refine()):
            with pytest.raises(ServerError, match="not running"):
                asyncio.run(probe)
