"""Tests for the HTTP network front (``repro.server.http`` + client).

What is pinned here:

* the request/response wire surface: every endpoint answers with the
  documented JSON shape, unknown paths are 404, wrong methods are 405,
  malformed bodies are 400 — and the error body always names the
  exception type and message;
* backpressure over the wire: a full reject-policy queue answers **429
  with a Retry-After hint**, a stopped engine answers **503**, and the
  client's retry budget turns a transient 429 into a success while an
  exhausted budget raises the same exception type the in-process server
  would;
* streaming: ``POST /stream`` is chunked JSON-lines in completion order
  with failures in band and a terminating summary, and the keep-alive
  connection stays usable afterwards;
* results over HTTP are bit-identical to in-process submission (the
  wire must not perturb seeds);
* the CLI's ``serve --http`` mode: ready line, live service, clean
  SIGINT exit.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine import CountJob
from repro.errors import (
    BatchSpecError,
    EngineError,
    RebalanceError,
    ServerError,
    ServerOverloadedError,
    WireError,
)
from repro.server import AsyncServer, HttpServer, ServeClient
from repro.server import wire
from repro.workloads import employee_example

_EMPLOYEE_QUERY = "EXISTS x, y, z . (Employee(1, x, y) AND Employee(2, z, y))"


def _employee_server(**kwargs) -> AsyncServer:
    scenario = employee_example()
    server = AsyncServer(**kwargs)
    server.register("emp", scenario.database, scenario.keys)
    return server


def _count_doc(**extra):
    return {"database": "emp", "query": _EMPLOYEE_QUERY, **extra}


class TestEndpoints:
    def test_count_health_databases_and_errors(self):
        async def run():
            server = _employee_server(shards=1, queue_limit=8)
            async with server:
                async with HttpServer(server) as front:
                    async with ServeClient(front.host, front.port) as client:
                        health = await client.health()
                        assert health["status"] == "ok"
                        assert health["shards"] == 1
                        assert await client.databases() == ["emp"]

                        result = await client.count(_count_doc())
                        assert (result["satisfying"], result["total"]) == (2, 4)
                        assert result["index"] == 0

                        stats = await client.stats()
                        assert stats["queue"]["completed"] >= 1
                        assert stats["http"]["requests"] >= 3

                        # Unknown path, wrong method, bad payloads: loud.
                        with pytest.raises(EngineError):
                            await client._call("GET", "/no-such-route")
                        with pytest.raises(ServerError, match="405"):
                            await client._call("GET", "/count")
                        with pytest.raises(BatchSpecError):
                            await client.count({"database": "emp"})
                        with pytest.raises(EngineError):
                            await client.count(
                                {"database": "ghost", "query": "R(x)"}
                            )
                        with pytest.raises(BatchSpecError, match="index"):
                            await client.count(_count_doc(), index=-1)
                        # The keep-alive connection survived every error.
                        assert (await client.health())["status"] == "ok"

        asyncio.run(run())

    def test_http_results_are_bit_identical_to_in_process(self):
        async def run():
            server = _employee_server(shards=1, queue_limit=8)
            job = CountJob(database="emp", query=_EMPLOYEE_QUERY, method="fpras",
                           epsilon=0.2, delta=0.2)
            async with server:
                direct = await server.submit(job, 7)
                async with HttpServer(server) as front:
                    async with ServeClient(front.host, front.port) as client:
                        over_wire = await client.count(job.to_json(), index=7)
            # The wire must not perturb the computation: every
            # deterministic field agrees (cache hit/miss split and timing
            # legitimately differ between the cold and warm run).
            volatile = {"cache_hits", "cache_misses", "elapsed", "worker"}
            direct_doc = direct.to_json()
            assert {k: v for k, v in over_wire.items() if k not in volatile} == {
                k: v for k, v in direct_doc.items() if k not in volatile
            }

        asyncio.run(run())

    def test_update_history_and_rollback_over_http(self, tmp_path):
        async def run():
            server = _employee_server(
                shards=1, queue_limit=8, persist_dir=tmp_path / "cache"
            )
            async with server:
                async with HttpServer(server) as front:
                    async with ServeClient(front.host, front.port) as client:
                        before = await client.count(_count_doc())
                        report = await client.update(
                            {
                                "update": "emp",
                                "insert": [
                                    {
                                        "relation": "Employee",
                                        "arguments": [3, "Zoe", "HR"],
                                    }
                                ],
                            },
                            index=1,
                        )
                        assert report["index"] == 1
                        history = await client.history("emp")
                        assert history["name"] == "emp"
                        assert len(history["records"]) == 2
                        assert history["head"] == history["records"][-1]["digest"]
                        limited = await client.history("emp", limit=1)
                        assert len(limited["records"]) == 1
                        assert limited["elided"] == 1

                        cut = await client.checkpoint("emp")
                        assert cut["checkpoint"] is not None
                        known = await client.checkpoints("emp")
                        assert len(known["checkpoints"]) >= 1

                        rolled = await client.rollback("emp", -1)
                        assert rolled["record"]["digest"] == history["records"][0]["digest"]
                        after = await client.count(_count_doc())
                        assert after["satisfying"] == before["satisfying"]

                        with pytest.raises(BatchSpecError, match="rollback"):
                            await client._call("POST", "/rollback/emp", {})

        asyncio.run(run())

    def test_shards_admin_surface_over_http(self):
        async def run():
            server = _employee_server(shards=2, queue_limit=8)
            async with server:
                async with HttpServer(server) as front:
                    async with ServeClient(front.host, front.port) as client:
                        view = await client.shards()
                        assert view["version"] == server.routing_version
                        assert sorted(view["shards"]) == ["0", "1"]
                        owner = server.shard_of("emp")
                        assert "emp" in view["shards"][str(owner)]["names"]
                        for load in view["shards"].values():
                            assert load["queue_depth"] == 0
                            assert load["in_flight"] == 0

                        grown = await client.add_shard()
                        new_id = grown["added"]
                        assert grown["shards"] == 3
                        assert grown["version"] == server.routing_version

                        moved = await client.move("emp", new_id)
                        assert moved["moved"] is True
                        assert server.shard_of("emp") == new_id
                        result = await client.count(_count_doc())
                        assert (result["satisfying"], result["total"]) == (2, 4)

                        balanced = await client.rebalance()
                        assert balanced["moves"] == []  # nothing hot enough

                        shrunk = await client.remove_shard(new_id)
                        assert shrunk["removed"] == new_id
                        assert "emp" in shrunk["moved"]
                        assert shrunk["shards"] == 2

                        # Misuse is loud and maps to the right statuses.
                        with pytest.raises(RebalanceError, match="unknown"):
                            await client.move("emp", 99)
                        with pytest.raises(BatchSpecError, match="action"):
                            await client._call(
                                "POST", "/shards", {"action": "explode"}
                            )
                        with pytest.raises(BatchSpecError, match="shard"):
                            await client._call(
                                "POST", "/shards", {"action": "remove"}
                            )
                        # The connection survived the 409/400 answers.
                        assert (await client.health())["status"] == "ok"

        asyncio.run(run())


class TestStreaming:
    def test_stream_is_chunked_with_failures_in_band(self):
        async def run():
            server = _employee_server(shards=1, queue_limit=8)
            async with server:
                async with HttpServer(server) as front:
                    async with ServeClient(front.host, front.port) as client:
                        items = [
                            _count_doc(),
                            {"database": "ghost", "query": "R(x)"},
                            _count_doc(method="certificate"),
                        ]
                        documents = [doc async for doc in client.stream(items)]
                        assert len(documents) == 3
                        failures = [d for d in documents if "error" in d]
                        results = [d for d in documents if "error" not in d]
                        assert [f["index"] for f in failures] == [1]
                        assert failures[0]["status"] == 404
                        assert failures[0]["error"]["type"] == "EngineError"
                        assert sorted(r["index"] for r in results) == [0, 2]
                        assert client.last_stream_summary == {
                            "results": 2,
                            "failures": 1,
                        }
                        # The keep-alive connection is clean after the
                        # chunked exchange: the next request still works.
                        assert (await client.health())["status"] == "ok"

        asyncio.run(run())

    def test_malformed_stream_line_is_rejected_before_dispatch(self):
        async def run():
            server = _employee_server(shards=1, queue_limit=8)
            async with server:
                async with HttpServer(server) as front:
                    reader, writer = await asyncio.open_connection(
                        front.host, front.port
                    )
                    body = (json.dumps(_count_doc()) + "\nnot json\n").encode()
                    writer.write(
                        wire.render_request(
                            "POST", "/stream", f"{front.host}:{front.port}", body
                        )
                    )
                    await writer.drain()
                    response = await wire.read_response(reader)
                    assert response.status == 400
                    payload = response.json()
                    assert payload["error"]["type"] == "WireError"
                    # Nothing was dispatched: all-or-nothing parsing.
                    assert server.submitted == 0
                    writer.close()
                    await writer.wait_closed()

        asyncio.run(run())


class TestBackpressureOverTheWire:
    def test_full_queue_answers_429_with_retry_after(self):
        async def run():
            server = _employee_server(shards=1, queue_limit=1, policy="reject")
            async with server:
                async with HttpServer(server) as front:
                    # Hold the single queue slot for the duration of the
                    # exchange (deterministic, unlike racing a real job).
                    await server._slots.acquire()
                    try:
                        # Raw exchange: the status and header are under test.
                        reader, writer = await asyncio.open_connection(
                            front.host, front.port
                        )
                        writer.write(
                            wire.render_request(
                                "POST",
                                "/count",
                                f"{front.host}:{front.port}",
                                json.dumps(_count_doc()).encode(),
                            )
                        )
                        await writer.drain()
                        response = await wire.read_response(reader)
                        writer.close()
                        await writer.wait_closed()
                    finally:
                        server._slots.release()

                    assert response.status == 429
                    assert wire.parse_retry_after(response.headers) is not None
                    assert response.json()["error"]["type"] == (
                        "ServerOverloadedError"
                    )
                    assert front.rejected == 1

        asyncio.run(run())

    def test_retry_budget_rescues_transient_overload(self):
        async def run():
            server = _employee_server(shards=1, queue_limit=1, policy="reject")
            async with server:
                async with HttpServer(server) as front:
                    await server._slots.acquire()

                    async def free_slot_later():
                        await asyncio.sleep(0.15)
                        server._slots.release()

                    release = asyncio.create_task(free_slot_later())
                    client = ServeClient(
                        front.host, front.port, retries=20, backoff=0.02
                    )
                    try:
                        # The slot frees while the client is backing off:
                        # the budgeted retry turns 429 into a result.
                        result = await client.count(_count_doc())
                        assert result["satisfying"] == 2
                        assert client.retries_used >= 1
                        assert client.rejections >= 1
                    finally:
                        await client.close()
                        await release

        asyncio.run(run())

    def test_exhausted_budget_raises_the_servers_exception(self):
        async def run():
            server = _employee_server(shards=1, queue_limit=1, policy="reject")
            async with server:
                async with HttpServer(server) as front:
                    await server._slots.acquire()  # keep the queue full
                    client = ServeClient(front.host, front.port, retries=0)
                    try:
                        with pytest.raises(ServerOverloadedError):
                            await client.count(_count_doc())
                        assert client.rejections == 1
                        assert client.retries_used == 0
                    finally:
                        await client.close()
                        server._slots.release()

        asyncio.run(run())

    def test_stopped_engine_answers_503(self):
        async def run():
            server = _employee_server(shards=1)
            # The engine is NOT started: the front must answer 503, not hang.
            async with HttpServer(server) as front:
                client = ServeClient(front.host, front.port, retries=0)
                try:
                    with pytest.raises(ServerError):
                        await client.count(_count_doc())
                    assert client.rejections == 1  # 503 is retryable-class
                finally:
                    await client.close()
                assert front.unavailable == 1

        asyncio.run(run())


class TestWireDiscipline:
    def test_malformed_request_line_gets_400_and_close(self):
        async def run():
            server = _employee_server(shards=1)
            async with server:
                async with HttpServer(server) as front:
                    reader, writer = await asyncio.open_connection(
                        front.host, front.port
                    )
                    writer.write(b"THIS IS NOT HTTP\r\n\r\n")
                    await writer.drain()
                    response = await wire.read_response(reader)
                    assert response.status == 400
                    assert response.json()["error"]["type"] == "WireError"
                    # The server closed the connection after the 400.
                    assert await reader.read() == b""
                    writer.close()
                    await writer.wait_closed()

        asyncio.run(run())

    def test_truncated_stream_raises_wire_error(self):
        async def run():
            # A fake server that starts a chunked stream and dies mid-way.
            async def half_stream(reader, writer):
                await wire.read_request(reader)
                writer.write(wire.render_response(200, chunked=True))
                wire.write_chunk(writer, {"index": 0, "satisfying": 1})
                await writer.drain()
                writer.close()  # no terminating chunk: truncation

            fake = await asyncio.start_server(half_stream, "127.0.0.1", 0)
            port = fake.sockets[0].getsockname()[1]
            client = ServeClient("127.0.0.1", port, retries=0)
            try:
                with pytest.raises(WireError, match="mid-stream|summary"):
                    async for _ in client.stream([_count_doc()]):
                        pass
            finally:
                await client.close()
                fake.close()
                await fake.wait_closed()

        asyncio.run(run())


class TestServeHttpCli:
    def test_serve_http_ready_line_service_and_clean_exit(self, tmp_path):
        jobfile = tmp_path / "databases.json"
        jobfile.write_text(
            json.dumps(
                {
                    "databases": {
                        "emp": {
                            "facts": [
                                {"relation": "Employee", "arguments": [1, "Bob", "HR"]},
                                {"relation": "Employee", "arguments": [1, "Bob", "IT"]},
                                {"relation": "Employee", "arguments": [2, "Alice", "IT"]},
                                {"relation": "Employee", "arguments": [2, "Tim", "IT"]},
                            ],
                            "keys": {"Employee": [1]},
                        }
                    },
                    "jobs": [],
                }
            )
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--jobs", str(jobfile), "--shards", "1", "--http", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            ready = json.loads(process.stdout.readline())
            host, port = ready["http"]["host"], ready["http"]["port"]
            assert port > 0

            async def hit():
                async with ServeClient(host, port) as client:
                    health = await client.health()
                    result = await client.count(_count_doc())
                    return health, result

            health, result = asyncio.run(hit())
            assert health["status"] == "ok"
            assert (result["satisfying"], result["total"]) == (2, 4)
        finally:
            process.send_signal(signal.SIGINT)
            code = process.wait(timeout=60)
        assert code == 0, process.stderr.read()

    def test_serve_http_refuses_jobs_and_stdin(self, tmp_path):
        jobfile = tmp_path / "with_jobs.json"
        jobfile.write_text(
            json.dumps(
                {
                    "databases": {},
                    "jobs": [{"database": "x", "query": "R(x)"}],
                }
            )
        )
        from repro.cli import main

        assert main(
            ["serve", "--jobs", str(jobfile), "--http", "0"]
        ) == 2
        assert main(
            ["serve", "--jobs", str(jobfile), "--http", "0", "--stdin"]
        ) == 2


class TestCalibrationOverTheWire:
    """SLA intervals and the ``/calibration`` admin surface over HTTP."""

    def test_anytime_sla_refinement_and_calibration(self):
        async def run():
            server = _employee_server(shards=1, queue_limit=8)
            async with server:
                async with HttpServer(server) as front:
                    async with ServeClient(front.host, front.port) as client:
                        doc = _count_doc(
                            method="fpras",
                            epsilon=0.05,
                            delta=0.05,
                            anytime=True,
                            max_latency=1e-6,
                        )
                        result = await client.count(doc)
                        # The latency budget cut the run short; the body
                        # carries the interval payload.
                        assert result["stop_reason"] == "latency"
                        assert result["is_estimate"] is True
                        assert result["samples"] > 0
                        interval = result["interval"]
                        assert (
                            interval["low"]
                            <= result["satisfying"]
                            <= interval["high"]
                        )
                        assert interval["calibrated"] is False

                        # Drain the refine-to-exact continuation, then
                        # re-ask: exact from cache, zero samples drawn.
                        report = await client.refine()
                        assert report["refined"] == 1
                        again = await client.count(doc, index=1)
                        assert again["stop_reason"] == "exact"
                        assert again["is_estimate"] is False
                        assert "samples" not in again or again["samples"] == 0
                        assert again["satisfying"] == 2
                        assert "exact" in again["cache_hits"]
                        assert again["interval"] == {
                            "low": 2.0,
                            "high": 2.0,
                            "calibrated": False,
                        }

                        view = await client.calibration()
                        assert view["totals"]["refinements_completed"] == 1
                        assert view["totals"]["observations"] >= 1
                        assert "0" in view["shards"]

                        # A held-out batch over the wire: randomised jobs
                        # contribute pairs, exact jobs are skipped.
                        held_out = [
                            _count_doc(
                                method="fpras", epsilon=0.3, delta=0.2
                            ),
                            _count_doc(),
                        ]
                        observed = await client.calibrate(held_out)
                        assert observed == {"pairs": 1, "skipped": 1}

                        # Misuse maps to loud 400s, connection survives.
                        with pytest.raises(BatchSpecError, match="action"):
                            await client._call(
                                "POST", "/calibration", {"action": "explode"}
                            )
                        with pytest.raises(BatchSpecError, match="limit"):
                            await client.refine(limit=-1)
                        with pytest.raises(BatchSpecError, match="jobs"):
                            await client._call(
                                "POST",
                                "/calibration",
                                {"action": "observe", "jobs": "nope"},
                            )
                        assert (await client.health())["status"] == "ok"

        asyncio.run(run())

    def test_sla_flags_round_trip_through_the_job_document(self):
        # The wire representation keeps the SLA knobs: a document with
        # max_latency/max_error/anytime parses back to an identical job.
        job = CountJob(
            database="emp",
            query=_EMPLOYEE_QUERY,
            method="fpras",
            epsilon=0.2,
            delta=0.1,
            anytime=True,
            max_latency=0.5,
            max_error=0.1,
        )
        assert CountJob.from_json(job.to_json()) == job
        assert job.to_json()["anytime"] is True
