"""Unit tests for relative frequencies, certain and possible answers."""

from fractions import Fraction

import pytest

from repro.db import Database, fact
from repro.query import parse_query
from repro.repairs import (
    answer_frequencies,
    certain_answers,
    possible_answers,
    relative_frequency,
)


class TestRelativeFrequency:
    def test_example_1_1_frequency_is_one_half(
        self, employee_db, employee_keys, same_department_query
    ):
        frequency = relative_frequency(employee_db, employee_keys, same_department_query)
        assert frequency == Fraction(1, 2)

    def test_certain_query_has_frequency_one(self, employee_db, employee_keys):
        query = parse_query("Employee(2, x, 'IT')")
        assert relative_frequency(employee_db, employee_keys, query) == Fraction(1)

    def test_impossible_query_has_frequency_zero(self, employee_db, employee_keys):
        query = parse_query("Employee(3, x, y)")
        assert relative_frequency(employee_db, employee_keys, query) == Fraction(0)

    def test_empty_database(self, employee_keys):
        query = parse_query("Employee(1, x, y)")
        assert relative_frequency(Database(), employee_keys, query) == Fraction(0)


class TestAnswerRanking:
    def test_ranking_of_employee_1_details(self, employee_db, employee_keys):
        query = parse_query("Employee(1, x, y)", answer_variables=["x", "y"])
        ranking = answer_frequencies(employee_db, employee_keys, query)
        assert len(ranking) == 2
        assert {entry.answer for entry in ranking} == {("Bob", "HR"), ("Bob", "IT")}
        assert all(entry.frequency == Fraction(1, 2) for entry in ranking)

    def test_ranking_is_sorted_by_frequency(self, employee_db, employee_keys):
        query = parse_query("Employee(x, y, 'IT')", answer_variables=["x"])
        ranking = answer_frequencies(employee_db, employee_keys, query)
        frequencies = [entry.frequency for entry in ranking]
        assert frequencies == sorted(frequencies, reverse=True)
        by_answer = {entry.answer: entry.frequency for entry in ranking}
        # Employee 2 is in IT in every repair; employee 1 only in half of them.
        assert by_answer[(2,)] == Fraction(1)
        assert by_answer[(1,)] == Fraction(1, 2)

    def test_certain_and_possible_answers(self, employee_db, employee_keys):
        query = parse_query("Employee(x, y, 'IT')", answer_variables=["x"])
        assert certain_answers(employee_db, employee_keys, query) == [(2,)]
        assert set(possible_answers(employee_db, employee_keys, query)) == {(1,), (2,)}

    def test_boolean_query_ranking_has_single_entry(
        self, employee_db, employee_keys, same_department_query
    ):
        ranking = answer_frequencies(employee_db, employee_keys, same_department_query)
        assert len(ranking) == 1
        assert ranking[0].answer == ()
        assert ranking[0].frequency == Fraction(1, 2)
        assert ranking[0].is_possible and not ranking[0].is_certain

    def test_frequency_string_rendering(self, employee_db, employee_keys):
        query = parse_query("Employee(1, x, y)", answer_variables=["x", "y"])
        entry = answer_frequencies(employee_db, employee_keys, query)[0]
        assert "/" in str(entry) and "0.5" in str(entry)
