"""Tests for the snapshot layer: Delta, freeze/digest, incremental blocks."""

from __future__ import annotations

import pickle

import pytest

from repro.db import (
    BlockDecomposition,
    Database,
    Delta,
    PrimaryKeySet,
    Schema,
    fact,
)
from repro.errors import DeltaError, FrozenDatabaseError, SchemaError


class TestDelta:
    def test_canonicalises_and_deduplicates(self):
        delta = Delta(
            inserted=[fact("R", 2, "b"), fact("R", 1, "a"), fact("R", 1, "a")],
            deleted=[fact("S", 1, "x")],
        )
        assert delta.inserted == (fact("R", 1, "a"), fact("R", 2, "b"))
        assert delta.deleted == (fact("S", 1, "x"),)
        assert len(delta) == 3
        assert delta.relations() == {"R", "S"}

    def test_equal_deltas_hash_equal_regardless_of_order(self):
        first = Delta(inserted=[fact("R", 1, "a"), fact("R", 2, "b")])
        second = Delta(inserted=[fact("R", 2, "b"), fact("R", 1, "a")])
        assert first == second
        assert hash(first) == hash(second)

    def test_rejects_overlapping_sides(self):
        with pytest.raises(DeltaError, match="inserted and deleted"):
            Delta(inserted=[fact("R", 1, "a")], deleted=[fact("R", 1, "a")])

    def test_rejects_non_facts(self):
        with pytest.raises(DeltaError, match="must be Facts"):
            Delta(inserted=["R(1)"])  # type: ignore[list-item]

    def test_effective_against_drops_noops(self, employee_db):
        delta = Delta(
            inserted=[fact("Employee", 1, "Bob", "HR"), fact("Employee", 3, "Eve", "IT")],
            deleted=[fact("Employee", 2, "Tim", "IT"), fact("Employee", 9, "Nobody", "X")],
        )
        inserted, deleted = delta.effective_against(employee_db)
        assert inserted == (fact("Employee", 3, "Eve", "IT"),)
        assert deleted == (fact("Employee", 2, "Tim", "IT"),)

    def test_touched_key_values(self, employee_db, employee_keys):
        delta = Delta(
            inserted=[fact("Employee", 3, "Eve", "IT")],
            deleted=[fact("Employee", 1, "Bob", "HR")],
        )
        touched = delta.touched_key_values(employee_keys, employee_db)
        assert touched == {("Employee", (3,)), ("Employee", (1,))}

    def test_json_round_trip(self):
        delta = Delta(
            inserted=[fact("R", 1, "a")], deleted=[fact("S", "k", 2)]
        )
        assert Delta.from_json(delta.to_json()) == delta
        assert Delta.from_json({}) == Delta()

    def test_from_json_rejects_malformed_documents(self):
        with pytest.raises(DeltaError):
            Delta.from_json([1, 2])  # type: ignore[arg-type]
        with pytest.raises(DeltaError):
            Delta.from_json({"surprise": []})
        with pytest.raises(DeltaError):
            Delta.from_json({"insert": "R(1)"})
        with pytest.raises(DeltaError):
            Delta.from_json({"insert": [{"relation": "R"}]})
        with pytest.raises(DeltaError):
            Delta.from_json({"insert": [{"relation": "R", "arguments": "a"}]})


class TestFreezeAndDigest:
    def test_freeze_is_idempotent_and_guards_mutation(self, employee_db):
        assert not employee_db.is_frozen
        assert employee_db.freeze() is employee_db
        assert employee_db.freeze() is employee_db  # idempotent
        with pytest.raises(FrozenDatabaseError, match="apply_delta"):
            employee_db.add(fact("Employee", 5, "Zed", "HR"))
        with pytest.raises(FrozenDatabaseError):
            employee_db.discard(fact("Employee", 1, "Bob", "HR"))
        with pytest.raises(FrozenDatabaseError):
            employee_db.update([fact("Employee", 5, "Zed", "HR")])
        # FrozenDatabaseError is in the SchemaError family.
        assert issubclass(FrozenDatabaseError, SchemaError)

    def test_digest_is_content_addressed(self):
        first = Database([fact("R", 1, "a"), fact("R", 2, "b")])
        second = Database([fact("R", 2, "b"), fact("R", 1, "a")])
        assert first.content_digest() == second.content_digest()
        second.add(fact("R", 3, "c"))
        assert first.content_digest() != second.content_digest()

    def test_digest_distinguishes_constant_types(self):
        assert (
            Database([fact("R", 1, 1)]).content_digest()
            != Database([fact("R", 1, "1")]).content_digest()
        )

    def test_digest_cached_and_invalidated_by_mutation(self):
        database = Database([fact("R", 1, "a")])
        before = database.content_digest()
        database.add(fact("R", 2, "b"))
        after = database.content_digest()
        assert before != after
        database.discard(fact("R", 2, "b"))
        assert database.content_digest() == before

    def test_frozen_equality_fast_path_and_hash_consistency(self):
        first = Database([fact("R", 1, "a")]).freeze()
        second = Database([fact("R", 1, "a")]).freeze()
        third = Database([fact("R", 1, "a")])  # unfrozen
        assert first == second and hash(first) == hash(second)
        assert first == third and hash(first) == hash(third)
        assert {first: "x"}[second] == "x"

    def test_frozen_database_pickles_with_stable_digest(self):
        database = Database([fact("R", 1, "a"), fact("S", 2, "b")]).freeze()
        clone = pickle.loads(pickle.dumps(database))
        assert clone.is_frozen
        assert clone.content_digest() == database.content_digest()
        assert clone == database


class TestApplyDelta:
    def test_result_is_frozen_and_source_untouched(self, employee_db):
        employee_db.freeze()
        delta = Delta(
            inserted=[fact("Employee", 3, "Eve", "IT")],
            deleted=[fact("Employee", 2, "Tim", "IT")],
        )
        updated = employee_db.apply_delta(delta)
        assert updated.is_frozen
        assert len(employee_db) == 4 and len(updated) == 4
        assert fact("Employee", 3, "Eve", "IT") in updated
        assert fact("Employee", 2, "Tim", "IT") not in updated

    def test_matches_manual_rebuild(self, employee_db):
        delta = Delta(
            inserted=[fact("Employee", 7, "Gil", "HR")],
            deleted=[fact("Employee", 1, "Bob", "IT")],
        )
        updated = employee_db.freeze().apply_delta(delta)
        expected = (set(employee_db.facts()) - set(delta.deleted)) | set(delta.inserted)
        assert updated.facts() == frozenset(expected)
        assert updated.content_digest() == Database(expected).content_digest()

    def test_unfrozen_source_is_supported_and_stays_mutable(self):
        database = Database([fact("R", 1, "a")])
        updated = database.apply_delta(Delta(inserted=[fact("R", 2, "b")]))
        assert updated.is_frozen and not database.is_frozen
        database.add(fact("R", 3, "c"))  # source still mutable
        assert fact("R", 3, "c") not in updated

    def test_snapshot_schema_is_isolated_from_a_mutable_source(self):
        # Regression: the snapshot must not share the schema of an unfrozen
        # source — later source mutations would change the frozen
        # snapshot's validation behaviour behind its back.
        database = Database([fact("R", 1, "a")])
        snapshot = database.apply_delta(Delta(inserted=[fact("R", 2, "b")]))
        database.add(fact("S", 1, 2))  # extends the *source's* schema only
        assert "S" not in snapshot.schema
        follow_up = snapshot.apply_delta(Delta(inserted=[fact("S", 9)]))
        assert fact("S", 9) in follow_up  # arity inferred fresh, not from source

    def test_new_relation_extends_a_schema_copy(self):
        database = Database([fact("R", 1, "a")]).freeze()
        updated = database.apply_delta(Delta(inserted=[fact("T", 9)]))
        assert "T" in updated.schema
        assert "T" not in database.schema

    def test_given_schema_rejects_unknown_relations_and_bad_arity(self):
        schema = Schema.from_arities({"R": 2})
        database = Database([fact("R", 1, "a")], schema=schema).freeze()
        with pytest.raises(SchemaError, match="not declared"):
            database.apply_delta(Delta(inserted=[fact("T", 9)]))
        with pytest.raises(SchemaError):
            database.apply_delta(Delta(inserted=[fact("R", 1, "a", "extra")]))

    def test_empty_delta_preserves_digest(self, employee_db):
        employee_db.freeze()
        updated = employee_db.apply_delta(Delta())
        assert updated.content_digest() == employee_db.content_digest()
        assert updated == employee_db


class TestIncrementalBlockDecomposition:
    def _keys(self):
        return PrimaryKeySet.from_dict({"R": [1], "S": [1]})

    def _database(self):
        return Database(
            [
                fact("R", 1, "a"),
                fact("R", 1, "b"),
                fact("R", 2, "c"),
                fact("S", 1, "x"),
                fact("S", 2, "y"),
                fact("S", 2, "z"),
            ]
        ).freeze()

    def _check(self, delta):
        database = self._database()
        keys = self._keys()
        decomposition = BlockDecomposition(database, keys)
        updated = database.apply_delta(delta)
        incremental = decomposition.apply_delta(delta, database=updated)
        full = BlockDecomposition(updated, keys)
        assert incremental.blocks == full.blocks
        assert incremental.database is updated
        assert incremental.total_repairs() == full.total_repairs()
        for block in incremental:
            for item in block:
                assert incremental.block_of(item) == full.block_of(item)
        return incremental

    def test_grow_existing_block(self):
        self._check(Delta(inserted=[fact("R", 2, "d")]))

    def test_shrink_existing_block(self):
        self._check(Delta(deleted=[fact("R", 1, "b")]))

    def test_remove_whole_block(self):
        incremental = self._check(Delta(deleted=[fact("R", 2, "c")]))
        assert incremental.index_for_key(("R", (2,))) is None

    def test_add_new_block_in_the_middle_of_the_order(self):
        incremental = self._check(Delta(inserted=[fact("R", 0, "early")]))
        assert incremental.index_for_key(("R", (0,))) == 0

    def test_mixed_multi_relation_delta(self):
        self._check(
            Delta(
                inserted=[fact("R", 9, "new"), fact("S", 2, "w")],
                deleted=[fact("S", 1, "x"), fact("R", 1, "a")],
            )
        )

    def test_delta_applies_derived_database_when_not_given(self):
        database = self._database()
        keys = self._keys()
        decomposition = BlockDecomposition(database, keys)
        delta = Delta(inserted=[fact("S", 3, "q")])
        incremental = decomposition.apply_delta(delta)
        assert incremental.database == database.apply_delta(delta)

    def test_empty_delta_reuses_every_block(self):
        database = self._database()
        decomposition = BlockDecomposition(database, self._keys())
        incremental = decomposition.apply_delta(Delta())
        assert incremental.blocks == decomposition.blocks

    def test_untouched_block_objects_are_shared_not_rebuilt(self):
        database = self._database()
        decomposition = BlockDecomposition(database, self._keys())
        delta = Delta(inserted=[fact("S", 3, "q")])
        incremental = decomposition.apply_delta(delta)
        for block in decomposition:
            assert incremental.block_for_key(block.key_value) is block
