"""Unit tests for compact-representation strings and the compactor abstraction."""

import pytest

from repro.errors import CompactorError
from repro.lams import (
    Selector,
    TabularCompactor,
    compact_from_selector,
    forget_bound,
    is_spanll_compactor,
    level_of,
    parse_compact,
    render_compact,
    unfolding,
    unfolding_size,
)


_DOMAINS = (("a", "b"), ("c",), ("d", "e", "f"))


class TestCompactStrings:
    def test_render_and_parse_round_trip(self):
        text = render_compact(_DOMAINS, ("a", None, "f"), k=2)
        assert text == "a$#c#$f"
        parsed = parse_compact(text, _DOMAINS, k=2)
        assert parsed.entries == ("a", None, "f")
        assert parsed.pinned_count() == 2
        assert parsed.selector().as_dict() == {0: 0, 2: 2}

    def test_free_positions_enumerate_their_domain(self):
        text = render_compact(_DOMAINS, (None, None, None))
        assert text == "#a$b#$#c#$#d$e$f#"
        parsed = parse_compact(text, _DOMAINS)
        assert parsed.entries == (None, None, None)

    def test_epsilon(self):
        assert render_compact(_DOMAINS, None) == ""
        parsed = parse_compact("", _DOMAINS)
        assert parsed.is_empty
        assert unfolding_size(parsed) == 0
        assert list(unfolding(parsed)) == []

    def test_unfolding_matches_definition(self):
        parsed = parse_compact("a$#c#$#d$e$f#", _DOMAINS)
        expanded = set(unfolding(parsed))
        assert expanded == {("a", "c", "d"), ("a", "c", "e"), ("a", "c", "f")}
        assert unfolding_size(parsed) == 3

    def test_k_bound_is_enforced(self):
        with pytest.raises(CompactorError):
            render_compact(_DOMAINS, ("a", "c", "f"), k=2)
        with pytest.raises(CompactorError):
            parse_compact("a$c$f", _DOMAINS, k=2)

    def test_malformed_strings_are_rejected(self):
        with pytest.raises(CompactorError):
            parse_compact("z$#c#$f", _DOMAINS)  # z is not in domain 0
        with pytest.raises(CompactorError):
            parse_compact("a$#c#", _DOMAINS)  # wrong number of positions
        with pytest.raises(CompactorError):
            parse_compact("a$#x#$f", _DOMAINS)  # wrong enumeration of domain 1

    def test_reserved_characters_in_domains_rejected(self):
        with pytest.raises(CompactorError):
            render_compact((("a$b",),), (None,))
        with pytest.raises(CompactorError):
            render_compact(((),), (None,))  # empty domain

    def test_compact_from_selector(self):
        compact = compact_from_selector(_DOMAINS, Selector({2: 1}))
        assert compact.entries == (None, None, "e")


def _tabular():
    """A tiny 2-compactor over two named instances."""
    return TabularCompactor(
        k=2,
        domains_by_instance={
            "x": (("a", "b"), ("c", "d"), ("e", "f", "g")),
            "y": (("0", "1"),),
        },
        selectors_by_instance={
            "x": {
                "c1": Selector({0: 0, 1: 1}),
                "c2": Selector({2: 2}),
            },
            "y": {},
        },
        invalid_certificates={"x": ("bad",)},
    )


class TestTabularCompactor:
    def test_level_and_domains(self):
        compactor = _tabular()
        assert level_of(compactor) == 2
        assert compactor.domain_sizes("x") == (2, 2, 3)
        assert compactor.instances() == ("x", "y")

    def test_unfold_count_equals_enumeration(self):
        compactor = _tabular()
        assert compactor.unfold_count("x") == len(compactor.unfold_enumerate("x"))
        assert compactor.unfold_count("x") == 3 + 4 - 1  # overlap at (a, d, g)
        assert compactor.unfold_count("y") == 0

    def test_outputs_are_valid_compact_strings(self):
        compactor = _tabular()
        assert compactor.output_string("x", "c1") == "a$d$#e$f$g#"
        assert compactor.output_string("x", "bad") == ""
        assert compactor.output("x", "bad").is_empty

    def test_verify_accepts_well_formed_compactor(self):
        _tabular().verify("x")

    def test_verify_rejects_selectors_exceeding_k(self):
        with pytest.raises(CompactorError):
            TabularCompactor(
                k=1,
                domains_by_instance={"x": (("a", "b"), ("c", "d"))},
                selectors_by_instance={"x": {"c1": Selector({0: 0, 1: 1})}},
            )

    def test_unknown_instance_rejected(self):
        with pytest.raises(CompactorError):
            _tabular().solution_domains("zzz")

    def test_spanll_view(self):
        compactor = _tabular()
        assert not is_spanll_compactor(compactor)
        unbounded = forget_bound(compactor)
        assert is_spanll_compactor(unbounded)
        assert unbounded.unfold_count("x") == compactor.unfold_count("x")
        # An already-unbounded compactor is returned unchanged.
        assert forget_bound(unbounded) is unbounded
