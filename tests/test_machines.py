"""Tests for the machine models (accept_M and span_M semantics)."""

import pytest

from repro.errors import ReproError
from repro.lams import CQACompactor
from repro.machines import (
    BranchingTransducer,
    NondeterministicTuringMachine,
    Transition,
    Verdict,
)
from repro.workloads import employee_example


class TestNondeterministicTuringMachine:
    def _coin_flipper(self, flips: int) -> NondeterministicTuringMachine:
        """A machine that makes ``flips`` binary guesses and always accepts."""
        transitions = {}
        for index in range(flips):
            transitions[(f"q{index}", "_")] = [
                Transition(f"q{index + 1}", "0", "R"),
                Transition(f"q{index + 1}", "1", "R"),
            ]
        return NondeterministicTuringMachine(transitions, "q0", {f"q{flips}"})

    def test_accepting_path_count_is_exponential_in_guesses(self):
        assert self._coin_flipper(1).count_accepting_paths("") == 2
        assert self._coin_flipper(3).count_accepting_paths("") == 8

    def test_rejecting_machine(self):
        machine = NondeterministicTuringMachine(
            {("q0", "_"): [Transition("dead", "_", "S")]}, "q0", {"accept"}
        )
        assert machine.count_accepting_paths("") == 0
        assert not machine.accepts("")

    def test_input_dependent_acceptance(self):
        # Accept iff the first symbol is '1'.
        machine = NondeterministicTuringMachine(
            {("q0", "1"): [Transition("accept", "1", "S")]}, "q0", {"accept"}
        )
        assert machine.accepts("1")
        assert not machine.accepts("0")

    def test_step_bound_guards_against_nontermination(self):
        machine = NondeterministicTuringMachine(
            {("q0", "_"): [Transition("q0", "_", "S")]}, "q0", {"accept"}
        )
        with pytest.raises(ReproError):
            machine.count_accepting_paths("", max_steps=50)

    def test_invalid_move_rejected(self):
        with pytest.raises(ReproError):
            Transition("q", "a", "X")


class TestBranchingTransducer:
    def test_span_counts_distinct_outputs(self):
        # Two guesses produce the same output "ab" through different paths,
        # plus one distinct output "ac": span must be 2, not 3.
        def branch(state):
            if state == "start":
                return [("a", "mid1"), ("a", "mid2"), ("a", "mid3")]
            if state == "mid1":
                return [("b", "end")]
            if state == "mid2":
                return [("b", "end")]
            if state == "mid3":
                return [("c", "end")]
            return Verdict(accept=True)

        transducer = BranchingTransducer(branch)
        assert transducer.accepting_outputs("start") == {"ab", "ac"}
        assert transducer.span("start") == 2
        assert transducer.accepts("start")

    def test_rejecting_branches_contribute_nothing(self):
        def branch(state):
            if state == "start":
                return [("x", "good"), ("y", "bad")]
            return Verdict(accept=(state == "good"))

        transducer = BranchingTransducer(branch)
        assert transducer.accepting_outputs("start") == {"x"}
        assert transducer.span("start") == 1

    def test_depth_bound(self):
        transducer = BranchingTransducer(lambda state: [("a", state)], max_depth=20)
        with pytest.raises(ReproError):
            transducer.span("loop")

    def test_algorithm_1_as_a_machine(self):
        """Express Algorithm 1 for the Employee example as a branching transducer.

        The machine guesses a certificate, rejects invalid ones, then expands
        block by block; its span must equal #CQA = 2 (the content of
        Theorem 3.7 on this instance).
        """
        scenario = employee_example()
        compactor = CQACompactor(scenario.queries["same-department"], scenario.keys)
        database = scenario.database
        domains = compactor.solution_domains(database)
        certificates = list(compactor.candidate_certificates(database))

        def branch(state):
            kind = state[0]
            if kind == "start":
                return [("", ("check", index)) for index in range(len(certificates))]
            if kind == "check":
                certificate = certificates[state[1]]
                if not compactor.is_valid_certificate(database, certificate):
                    return Verdict(accept=False)
                pins = compactor.selector(database, certificate).as_dict()
                return [("", ("expand", state[1], 0, tuple(), tuple(sorted(pins.items()))))]
            if kind == "expand":
                _, cert_index, position, written, pins = state
                if position == len(domains):
                    return Verdict(accept=True)
                pins_dict = dict(pins)
                if position in pins_dict:
                    choices = [domains[position][pins_dict[position]]]
                else:
                    choices = list(domains[position])
                return [
                    (choice + "|", ("expand", cert_index, position + 1, written, pins))
                    for choice in choices
                ]
            raise AssertionError(f"unknown state {state!r}")

        transducer = BranchingTransducer(branch)
        assert transducer.span(("start",)) == 2
