"""Tests for cost-model-driven self-tuning of the storage/replay layer.

What is pinned here:

* the observation layer is deterministic under an injected clock:
  :class:`DecayedCounter` halves on schedule, :class:`AccessLog` keeps
  per-digest read rates, a per-name EWMA step cost and snapshot byte
  estimates, and :func:`split_byte_budget` water-fills a global byte
  budget by hit-rate-per-byte (never granting a kind more than it uses);
* :class:`FixedIntervalPolicy` reproduces the exact ``checkpoint_every``
  trailing-run semantics, and passing both an interval and a policy to
  the pool (or the server) fails loudly;
* :class:`AdaptiveCheckpointPolicy` promotes a checkpoint at a hot deep
  chain position after a measured replay, respects ``min_distance``,
  feeds observed snapshot bytes back, demotes a checkpoint whose decayed
  read rate falls below ``demote_below`` — and never demotes the head;
* stores expose ``bytes`` in ``stats()`` (and through
  ``SolverPool.cache_stats``), age GC reads the injected clock, and
  byte-bounded GC evicts cold entries first while **pinned live-head
  snapshot/calibration entries survive any budget** (unpinned ancestor
  selector/decomposition entries go first);
* delta-record compaction is off by default, warns loudly when enabled,
  keeps compacted chains coherent across restarts (``repro history``
  renders them; checkpointed digests stay materialisable) and fails
  loudly when a compacted-away ancestor is requested;
* the ``repro gc`` command prints the per-kind budget split and the
  eviction counts as JSON, honouring ``--pin``.
"""

import json
import pickle
import time
import warnings

import pytest

from repro.cli import main
from repro.db import Database, Delta, PrimaryKeySet, fact
from repro.db.lineage import LineageRecord
from repro.engine import CountJob, SolverPool
from repro.errors import EngineError, LineageError, ServerError
from repro.server import AsyncServer
from repro.store import (
    AccessLog,
    AdaptiveCheckpointPolicy,
    CheckpointDecision,
    DecayedCounter,
    FixedIntervalPolicy,
    ManualClock,
    SnapshotStore,
    split_byte_budget,
)

_QUERY = "EXISTS x, y. R(x, 'a', y)"


def _chain_pool(tmp_path, deltas=10, **kwargs):
    """A persisted pool whose single database has ``deltas`` versions."""
    database = Database(
        [fact("R", 1, "a", "x"), fact("R", 1, "b", "x"), fact("R", 2, "a", "y")]
    )
    keys = PrimaryKeySet.from_dict({"R": [1]})
    pool = SolverPool(persist_dir=tmp_path / "store", **kwargs)
    pool.register("live", database, keys)
    digests = [pool.snapshot_token("live")[0]]
    for step in range(deltas):
        value = "a" if step % 2 == 0 else "b"
        pool.apply_delta(
            "live", Delta(inserted=[fact("R", 10 + step, value, f"z{step}")])
        )
        digests.append(pool.snapshot_token("live")[0])
    return pool, keys, digests


def _reopen(tmp_path, source_pool, **kwargs):
    """A fresh pool over the same store, registered at the same head.

    A fresh pool's in-memory snapshot LRU holds only the head, so deep
    ``as_of`` reads actually replay — the condition the adaptive policy
    observes.
    """
    database, keys = source_pool.lookup("live")
    pool = SolverPool(persist_dir=tmp_path / "store", **kwargs)
    pool.register("live", database, keys)
    return pool


# ---------------------------------------------------------------------- #
# observation layer
# ---------------------------------------------------------------------- #
class TestDecayedCounter:
    def test_halves_every_half_life(self):
        clock = ManualClock(0.0)
        counter = DecayedCounter(half_life=10.0, clock=clock)
        counter.add()
        counter.add()
        assert counter.value() == pytest.approx(2.0)
        clock.advance(10.0)
        assert counter.value() == pytest.approx(1.0)
        clock.advance(20.0)
        assert counter.value() == pytest.approx(0.25)

    def test_mass_deposited_at_current_time(self):
        clock = ManualClock(0.0)
        counter = DecayedCounter(half_life=10.0, clock=clock)
        counter.add()
        clock.advance(10.0)
        counter.add()  # old mass halved, fresh mass undecayed
        assert counter.value() == pytest.approx(1.5)

    def test_rejects_nonpositive_half_life(self):
        with pytest.raises(ValueError):
            DecayedCounter(half_life=0.0)


class TestAccessLog:
    def test_read_rates_are_per_digest_and_decay(self):
        clock = ManualClock(0.0)
        log = AccessLog(half_life=10.0, clock=clock)
        log.record_read("live", "aa", distance=3, elapsed=0.3)
        log.record_read("live", "aa", distance=0, elapsed=0.0)
        log.record_read("live", "bb", distance=0, elapsed=0.0)
        assert log.read_rate("live", "aa") == pytest.approx(2.0)
        assert log.read_rate("live", "bb") == pytest.approx(1.0)
        assert log.read_rate("live", "cc") == 0.0
        clock.advance(10.0)
        assert log.read_rate("live", "aa") == pytest.approx(1.0)
        assert sorted(log.digests_read("live")) == ["aa", "bb"]

    def test_step_cost_ewma_ignores_zero_distance(self):
        log = AccessLog(clock=ManualClock())
        log.record_read("live", "aa", distance=4, elapsed=0.4)
        assert log.step_cost("live") == pytest.approx(0.1)
        log.record_read("live", "aa", distance=0, elapsed=9.9)  # cache hit
        assert log.step_cost("live") == pytest.approx(0.1)
        log.record_read("live", "aa", distance=2, elapsed=0.4)
        assert log.step_cost("live") == pytest.approx(0.7 * 0.1 + 0.3 * 0.2)

    def test_byte_estimate_is_running_mean(self):
        log = AccessLog(clock=ManualClock())
        assert log.byte_estimate("live") == 0.0
        log.record_snapshot_bytes("live", 100)
        log.record_snapshot_bytes("live", 300)
        assert log.byte_estimate("live") == pytest.approx(200.0)

    def test_modeled_saving_composes_the_three_signals(self):
        log = AccessLog(clock=ManualClock())
        log.record_read("live", "aa", distance=5, elapsed=0.5)
        # rate 1.0 x distance 8 x step cost 0.1
        assert log.modeled_saving("live", "aa", 8) == pytest.approx(0.8)


class TestSplitByteBudget:
    def test_proportional_to_hit_rate_per_byte(self):
        split = split_byte_budget(100, {"a": (9.0, 30), "b": (1.0, 1000)})
        assert split == {"a": 30, "b": 70}

    def test_water_filling_caps_at_current_usage(self):
        split = split_byte_budget(100, {"hot": (10.0, 50), "cold": (0.1, 500)})
        assert split == {"hot": 50, "cold": 50}

    def test_no_hits_falls_back_to_size_proportional(self):
        split = split_byte_budget(300, {"a": (0.0, 100), "b": (0.0, 200)})
        assert split == {"a": 100, "b": 200}

    def test_zero_budget_and_empty_kinds(self):
        assert split_byte_budget(0, {"a": (1.0, 10)}) == {"a": 0}
        assert split_byte_budget(50, {"a": (1.0, 0)}) == {"a": 0}
        assert split_byte_budget(50, {}) == {}

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            split_byte_budget(-1, {"a": (1.0, 10)})


# ---------------------------------------------------------------------- #
# policies
# ---------------------------------------------------------------------- #
class TestFixedIntervalPolicy:
    def test_trailing_run_semantics(self):
        policy = FixedIntervalPolicy(3)
        kinds = ("register", "delta", "delta", "delta")
        assert policy.after_delta("live", kinds, set()).checkpoint_head
        # A checkpointed position restarts the count...
        assert not policy.after_delta("live", kinds, {3}).checkpoint_head
        # ...and so does a non-delta record.
        mixed = ("register", "delta", "rollback", "delta", "delta")
        assert not policy.after_delta("live", mixed, set()).checkpoint_head

    def test_reads_are_inert(self):
        policy = FixedIntervalPolicy(1)
        decision = policy.after_read("live", "hh", "aa", set(), 9, 1.0)
        assert not decision

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            FixedIntervalPolicy(0)

    def test_pool_rejects_interval_plus_policy(self, tmp_path):
        with pytest.raises(EngineError, match="not both"):
            SolverPool(
                persist_dir=tmp_path / "store",
                checkpoint_every=2,
                checkpoint_policy=FixedIntervalPolicy(2),
            )

    def test_server_rejects_interval_plus_policy(self, tmp_path):
        with pytest.raises(ServerError, match="not both"):
            AsyncServer(
                persist_dir=tmp_path / "store",
                checkpoint_every=2,
                checkpoint_policy=FixedIntervalPolicy(2),
            )


class TestAdaptiveCheckpointPolicy:
    def test_policies_pickle_for_shard_initargs(self):
        policy = AdaptiveCheckpointPolicy(byte_cost=0.5, min_distance=3)
        clone = pickle.loads(pickle.dumps(policy))
        assert clone.byte_cost == 0.5
        assert clone.min_distance == 3

    def test_promotes_hot_deep_read_and_observes_bytes(self, tmp_path):
        pool, _, digests = _chain_pool(tmp_path)
        clock = ManualClock(time.time())
        policy = AdaptiveCheckpointPolicy(
            byte_cost=0.0, min_distance=2, clock=clock
        )
        fresh = _reopen(tmp_path, pool, checkpoint_policy=policy)
        deep = digests[3]
        fresh.materialise("live", deep)
        placed = fresh.checkpoints("live")
        assert [record.digest for record in placed] == [deep]
        # The actual stored entry size was fed back to the cost model.
        assert policy.log.byte_estimate("live") > 0

    def test_min_distance_keeps_near_head_reads_uncheckpointed(self, tmp_path):
        pool, _, digests = _chain_pool(tmp_path)
        policy = AdaptiveCheckpointPolicy(
            min_distance=4, clock=ManualClock(time.time())
        )
        fresh = _reopen(tmp_path, pool, checkpoint_policy=policy)
        fresh.materialise("live", digests[-2])  # distance 1 from the head
        assert fresh.checkpoints("live") == ()

    def test_demotes_decayed_checkpoint_but_never_head(self, tmp_path):
        pool, _, digests = _chain_pool(tmp_path)
        clock = ManualClock(time.time())
        policy = AdaptiveCheckpointPolicy(
            min_distance=2, demote_below=0.05, half_life=10.0, clock=clock
        )
        fresh = _reopen(tmp_path, pool, checkpoint_policy=policy)
        fresh.materialise("live", digests[3])
        assert [record.digest for record in fresh.checkpoints("live")] == [
            digests[3]
        ]
        clock.advance(1000.0)  # the digest-3 rate decays to ~nothing
        fresh.materialise("live", digests[5])
        placed = [record.digest for record in fresh.checkpoints("live")]
        assert digests[3] not in placed
        assert digests[5] in placed
        # Demotion dropped the snapshot entry, not just the marker.
        store = SnapshotStore(tmp_path / "store")
        assert not store.contains((digests[3], fresh.snapshot_token("live")[1]))

    def test_explicit_checkpoints_are_never_demoted(self, tmp_path):
        pool, _, digests = _chain_pool(tmp_path)
        clock = ManualClock(time.time())
        policy = AdaptiveCheckpointPolicy(
            min_distance=2, demote_below=10.0, half_life=10.0, clock=clock
        )
        fresh = _reopen(tmp_path, pool, checkpoint_policy=policy)
        fresh.checkpoint("live")  # operator-cut head checkpoint
        clock.advance(1000.0)
        fresh.materialise("live", digests[3])
        placed = [record.digest for record in fresh.checkpoints("live")]
        assert digests[-1] in placed  # the head checkpoint stayed put

    def test_decision_truthiness(self):
        assert not CheckpointDecision()
        assert CheckpointDecision(promote=("aa",))
        assert CheckpointDecision(checkpoint_head=True)


# ---------------------------------------------------------------------- #
# byte accounting and GC
# ---------------------------------------------------------------------- #
class TestByteAwareGc:
    def test_stats_expose_bytes_per_layer(self, tmp_path):
        pool, keys, _ = _chain_pool(tmp_path, deltas=2)
        pool.run([CountJob(database="live", query=_QUERY)])
        stats = pool.cache_stats()
        for layer in ("selectors-disk", "decomposition-disk"):
            assert stats[layer]["bytes"] > 0
        assert stats["snapshots-disk"]["bytes"] == 0

    def test_age_gc_reads_the_injected_clock(self, tmp_path):
        clock = ManualClock(time.time())
        store = SnapshotStore(tmp_path / "snaps", clock=clock)
        database = Database([fact("R", 1, "a", "x")]).freeze()
        keys = PrimaryKeySet.from_dict({"R": [1]})
        token = (database.content_digest(), keys.content_digest())
        assert store.store(token, database)
        assert store.collect_garbage(max_age_seconds=3600.0) == 0
        clock.advance(7200.0)  # no real time passes, only the clock moves
        assert store.collect_garbage(max_age_seconds=3600.0) == 1
        assert store.entry_count() == 0

    def test_collect_bytes_evicts_cold_entries_first(self, tmp_path):
        clock = ManualClock(time.time() + 60.0)
        store = SnapshotStore(tmp_path / "snaps", clock=clock)
        keys = PrimaryKeySet.from_dict({"R": [1]})
        tokens = []
        for step in range(3):
            database = Database([fact("R", 1, "a", f"v{step}")]).freeze()
            token = (database.content_digest(), keys.content_digest())
            assert store.store(token, database)
            tokens.append(token)
        # Loading refreshes recency through the clock, so the untouched
        # entries are the cold ones the byte budget evicts.
        assert store.load(tokens[0]) is not None
        budget = store.backend.size(store.entry_name(tokens[0])) or 0
        assert store.collect_bytes(budget) == 2
        assert store.contains(tokens[0])
        assert not store.contains(tokens[1])
        assert store.decayed_hit_rate() > 0

    def test_pinned_live_entries_survive_any_budget(self, tmp_path):
        """Satellite guarantee: a starvation budget evicts unpinned
        selector/decomposition entries of ancestors, never the pinned
        live head's snapshot or calibration entries."""
        pool, keys, digests = _chain_pool(tmp_path, deltas=3)
        job = CountJob(database="live", query=_QUERY)
        pool.run([job])  # head selector/decomposition entries (pinned)
        pool.checkpoint("live")  # head *.snp entry (pinned)
        pool.calibrate_from(
            [
                CountJob(
                    database="live",
                    query=_QUERY,
                    method="fpras",
                    epsilon=0.5,
                    delta=0.2,
                    seed=11,
                )
            ]
        )  # head *.cal entry (pinned)
        stats = pool.cache_stats()
        assert stats["snapshots-disk"]["entries"] == 1
        assert stats["calibration-disk"]["entries"] >= 1
        cal_entries = stats["calibration-disk"]["entries"]
        head_token = pool.snapshot_token("live")

        evictions = pool.collect_garbage(max_bytes=1)  # starvation budget
        after = pool.cache_stats()
        # Ancestor-token derived entries (unpinned) were evicted...
        assert evictions["decomposition-disk"] > 0
        assert after["decomposition-disk"]["entries"] < stats[
            "decomposition-disk"
        ]["entries"]
        # ...while every pinned live-head entry survived.
        assert after["snapshots-disk"]["entries"] == 1
        assert after["calibration-disk"]["entries"] == cal_entries
        store = SnapshotStore(tmp_path / "store")
        assert store.contains(head_token)
        # Post-GC, counts against the head recompute nothing.
        before = pool.selector_recomputations
        pool.run([job])
        assert pool.selector_recomputations == before

    def test_plan_byte_budget_shape(self, tmp_path):
        pool, _, _ = _chain_pool(tmp_path, deltas=2)
        pool.run([CountJob(database="live", query=_QUERY)])
        plan = pool.plan_byte_budget(10_000)
        assert set(plan) == {
            "selectors-disk",
            "decomposition-disk",
            "snapshots-disk",
            "calibration-disk",
        }
        for share in plan.values():
            assert set(share) == {"bytes", "hit_rate", "budget"}
            assert share["budget"] <= share["bytes"] or share["bytes"] == 0
        total = sum(share["budget"] for share in plan.values())
        assert total <= 10_000

    def test_configured_byte_budget_applies_on_plain_gc(self, tmp_path):
        pool, _, _ = _chain_pool(tmp_path, deltas=3)
        pool.run([CountJob(database="live", query=_QUERY)])
        database, keys = pool.lookup("live")
        bounded = SolverPool(
            persist_dir=tmp_path / "store", persist_max_bytes=1
        )
        bounded.register("live", database, keys)
        evictions = bounded.collect_garbage()
        assert sum(evictions.values()) > 0


# ---------------------------------------------------------------------- #
# compaction
# ---------------------------------------------------------------------- #
class TestCompaction:
    def test_checkpoint_does_not_compact_by_default(self, tmp_path):
        pool, _, _ = _chain_pool(tmp_path, deltas=4)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # silence is part of the contract
            pool.checkpoint("live")
        assert all(
            record.delta is not None
            for record in pool.lineage("live")
            if record.kind == "delta"
        )

    def test_compact_warns_and_releases_payloads(self, tmp_path):
        pool, _, _ = _chain_pool(tmp_path, deltas=4)
        with pytest.warns(UserWarning, match="compacted 4 delta record"):
            pool.checkpoint("live", compact=True)
        for record in pool.lineage("live"):
            if record.kind == "delta":
                assert record.delta is None
                assert record.compacted == (1, 0)
        payload = pool.lineage("live").head.to_json()
        assert payload["compacted"] is True
        assert (payload["inserted"], payload["deleted"]) == (1, 0)

    def test_compacted_chain_coheres_across_restart(self, tmp_path):
        pool, _, digests = _chain_pool(tmp_path, deltas=4)
        mid = digests[2]
        pool.checkpoint("live")
        fresh = _reopen(tmp_path, pool)
        fresh.materialise("live", mid)  # reachable pre-compaction
        with pytest.warns(UserWarning, match="compacted"):
            fresh.checkpoint("live", compact=True)
        reread = _reopen(tmp_path, pool)
        chain = reread.lineage("live")
        assert all(
            record.delta is None
            for record in chain
            if record.kind == "delta"
        )
        # The checkpointed head still materialises (snapshot entry)...
        database, _, _ = reread.materialise("live", digests[-1])
        assert database.content_digest() == digests[-1]
        # ...but a compacted-away ancestor fails loudly, never wrongly.
        with pytest.raises(LineageError, match="no recorded delta chain"):
            reread.materialise("live", mid)

    def test_old_pickled_records_gain_compacted_none(self):
        record = LineageRecord(
            "live", 0, "a" * 64, "b" * 64, None, "register", None, 0.0
        )
        state = dict(record.__dict__)
        del state["compacted"]  # a record pickled before the field existed
        revived = LineageRecord.__new__(LineageRecord)
        revived.__setstate__(state)
        assert revived.compacted is None
        assert revived.digest == record.digest

    def test_compact_requires_replayable_delta(self):
        record = LineageRecord(
            "live", 0, "a" * 64, "b" * 64, None, "register", None, 0.0
        )
        with pytest.raises(LineageError):
            record.compact()

    def test_history_cli_renders_compacted_ranges(self, tmp_path, capsys):
        pool, _, _ = _chain_pool(tmp_path, deltas=3)
        with pytest.warns(UserWarning):
            pool.checkpoint("live", compact=True)
        assert main(
            ["history", "live", "--persist-cache", str(tmp_path / "store")]
        ) == 0
        output = capsys.readouterr().out
        assert "(+1/-0)" in output
        assert "compacted: 3 record(s)" in output
        # JSON lines stay parseable and flag the compacted records.
        assert main(
            [
                "history",
                "live",
                "--persist-cache",
                str(tmp_path / "store"),
                "--json-lines",
            ]
        ) == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("{")
        ]
        assert sum(1 for line in lines if line.get("compacted")) == 3


# ---------------------------------------------------------------------- #
# the gc command
# ---------------------------------------------------------------------- #
class TestGcCommand:
    def test_reports_split_and_evictions_as_json(self, tmp_path, capsys):
        pool, _, _ = _chain_pool(tmp_path, deltas=3)
        pool.run([CountJob(database="live", query=_QUERY)])
        pool.checkpoint("live")
        store = str(tmp_path / "store")
        assert main(["gc", "--persist-cache", store, "--max-bytes", "1"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert set(document["layers"]) == {
            "selectors-disk",
            "decomposition-disk",
            "snapshots-disk",
            "calibration-disk",
        }
        assert document["evicted"] > 0
        for layer in document["layers"].values():
            assert set(layer) == {"bytes", "hit_rate", "budget", "evicted"}
        # Without --pin, even the head checkpoint entry was fair game.
        assert document["layers"]["snapshots-disk"]["evicted"] == 1

    def test_pin_exempts_the_recorded_head(self, tmp_path, capsys):
        pool, _, _ = _chain_pool(tmp_path, deltas=3)
        pool.checkpoint("live")
        head_token = pool.snapshot_token("live")
        store = str(tmp_path / "store")
        assert main(
            [
                "gc",
                "--persist-cache",
                store,
                "--max-bytes",
                "1",
                "--pin",
                "live",
            ]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["pinned"] == ["live"]
        assert document["layers"]["snapshots-disk"]["evicted"] == 0
        assert SnapshotStore(tmp_path / "store").contains(head_token)

    def test_requires_a_bound_and_a_known_pin(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        (tmp_path / "store").mkdir()
        assert main(["gc", "--persist-cache", store]) == 2
        assert "at least one bound" in capsys.readouterr().err
        assert main(
            ["gc", "--persist-cache", store, "--max-bytes", "1", "--pin", "x"]
        ) == 2
        assert "no recorded lineage" in capsys.readouterr().err
