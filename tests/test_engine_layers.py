"""Tests for the layered engine core behind the :class:`SolverPool` facade.

The decomposition contract: ``repro.engine`` is four stacked modules —
registry, cache coordinator, lineage service, executor — and each layer
is usable on its own, without the facade.  These tests drive the layers
directly (the facade's behaviour is pinned by the pre-existing
``test_engine_*`` / ``test_time_travel`` / ``test_server`` suites, which
this PR keeps passing unmodified) and pin the facade's delegation
boundaries: the pool holds *no* engine state of its own.
"""

import pytest

from repro.db import Database, Delta, PrimaryKeySet, fact
from repro.engine import (
    CacheCoordinator,
    CountJob,
    JobExecutor,
    LineageService,
    SnapshotRegistry,
    SolverPool,
)
from repro.errors import EngineError, FrozenDatabaseError


def _instance():
    database = Database(
        [fact("R", 1, "a", "x"), fact("R", 1, "b", "x"), fact("R", 2, "a", "y")]
    )
    return database, PrimaryKeySet.from_dict({"R": [1]})


def _stack(**coordinator_kwargs):
    registry = SnapshotRegistry()
    caches = CacheCoordinator(**coordinator_kwargs)
    lineage = LineageService(registry, caches)
    executor = JobExecutor(registry, caches, lineage)
    return registry, caches, lineage, executor


class TestSnapshotRegistry:
    def test_register_freezes_and_reports_displacement(self):
        database, keys = _instance()
        registry = SnapshotRegistry()
        token, displaced = registry.register("live", database, keys)
        assert displaced is None
        assert registry.token("live") == token
        with pytest.raises(FrozenDatabaseError):
            database.add(fact("R", 9, "q", "q"))

        other = Database([fact("R", 5, "c", "z")])
        _, displaced = registry.register("live", other, keys)
        assert displaced == token  # content changed: old token handed back
        _, displaced = registry.register("live", other, keys)
        assert displaced is None  # identical content displaces nothing

    def test_unknown_names_fail_loudly(self):
        registry = SnapshotRegistry()
        with pytest.raises(EngineError, match="unknown database"):
            registry.lookup("ghost")
        with pytest.raises(EngineError, match="non-empty name"):
            registry.register("", *_instance())

    def test_live_tokens_cover_every_head(self):
        database, keys = _instance()
        registry = SnapshotRegistry()
        registry.register("a", database, keys)
        registry.register("b", Database(database.facts()), keys)
        assert len(registry.names()) == 2
        assert set(registry.live_tokens()) == {registry.token("a")}  # shared


class TestLayeredExecution:
    def test_the_stack_answers_jobs_without_the_facade(self):
        database, keys = _instance()
        registry, caches, lineage, executor = _stack()
        token, _ = registry.register("live", database, keys)
        lineage.record_head("live", token, kind="register")

        job = CountJob(database="live", query="EXISTS x, y. R(x, 'a', y)")
        first = executor.run_job(job)
        second = executor.run_job(job)
        assert first.count_fields()[1:] == second.count_fields()[1:]
        assert "selectors" in second.cache_hits

        # ...bit-identically to the facade over the same instance.
        pool = SolverPool()
        pool.register("live", Database(database.facts()), keys)
        assert pool.run_job(job).count_fields() == first.count_fields()

    def test_apply_delta_records_history_through_the_lineage_layer(self):
        database, keys = _instance()
        registry, caches, lineage, executor = _stack()
        token, _ = registry.register("live", database, keys)
        lineage.record_head("live", token, kind="register")

        report = executor.apply_delta(
            "live", Delta(inserted=[fact("R", 7, "a", "w")])
        )
        assert report.inserted == 1
        chain = lineage.lineage("live")
        assert [record.kind for record in chain] == ["register", "delta"]
        assert registry.token("live")[0] == chain.head.digest

    def test_facade_delegates_instead_of_owning_state(self):
        """The pool is a facade: its engine state lives in the four layers."""
        pool = SolverPool()
        component_types = (
            SnapshotRegistry, CacheCoordinator, LineageService, JobExecutor,
        )
        components = {
            name: value
            for name, value in vars(pool).items()
            if isinstance(value, component_types)
        }
        assert len(components) == 4
        # Nothing but the four layer objects hangs off the facade.
        assert set(vars(pool)) == set(components)


class TestCacheCoordinatorStandalone:
    def test_decomposition_provenance_labels(self, tmp_path):
        database, keys = _instance()
        database.freeze()
        token = (database.content_digest(), keys.content_digest())
        caches = CacheCoordinator(persist_dir=tmp_path)
        assert caches.decomposition(token, database, keys)[1] == "computed"
        assert caches.decomposition(token, database, keys)[1] == "memory"
        # A second coordinator over the same store loads from disk.
        fresh = CacheCoordinator(persist_dir=tmp_path)
        assert fresh.decomposition(token, database, keys)[1] == "disk"
        assert fresh.decomposition_recomputations == 0

    def test_checkpoint_snapshots_round_trip(self, tmp_path):
        database, keys = _instance()
        database.freeze()
        token = (database.content_digest(), keys.content_digest())
        caches = CacheCoordinator(persist_dir=tmp_path)
        assert caches.store_checkpoint(token, database)
        assert caches.load_checkpoint(token) == database
        assert CacheCoordinator().store_checkpoint(token, database) is False
