"""Unit tests for facts and databases."""

import pytest

from repro.db import Database, Fact, RelationSchema, Schema, fact
from repro.errors import SchemaError


class TestFact:
    def test_construction_and_str(self):
        item = fact("Employee", 1, "Bob", "HR")
        assert item.relation == "Employee"
        assert item.arguments == (1, "Bob", "HR")
        assert item.arity == 3
        assert str(item) == "Employee(1, Bob, HR)"

    def test_facts_are_hashable_and_comparable(self):
        first = fact("R", 1, 2)
        second = Fact("R", (1, 2))
        assert first == second
        assert hash(first) == hash(second)
        assert fact("R", 1) < fact("S", 1)

    def test_project_is_one_based(self):
        item = fact("R", "a", "b", "c")
        assert item.project([1, 3]) == ("a", "c")

    def test_zero_arity_rejected(self):
        with pytest.raises(SchemaError):
            Fact("R", ())

    def test_list_arguments_are_normalised_to_tuple(self):
        item = Fact("R", [1, 2])  # type: ignore[arg-type]
        assert item.arguments == (1, 2)
        assert hash(item) == hash(Fact("R", (1, 2)))


class TestDatabase:
    def test_duplicates_collapse(self):
        database = Database([fact("R", 1), fact("R", 1)])
        assert len(database) == 1

    def test_schema_is_inferred(self):
        database = Database([fact("R", 1, 2)])
        assert database.schema.arity("R") == 2

    def test_inferred_schema_rejects_conflicting_arity(self):
        database = Database([fact("R", 1, 2)])
        with pytest.raises(Exception):
            database.add(fact("R", 1, 2, 3))

    def test_explicit_schema_rejects_undeclared_relation(self):
        schema = Schema([RelationSchema("R", 2)])
        database = Database(schema=schema)
        with pytest.raises(SchemaError):
            database.add(fact("S", 1))

    def test_active_domain(self, employee_db):
        domain = employee_db.active_domain()
        assert {"Bob", "Alice", "Tim", "HR", "IT", 1, 2} == set(domain)

    def test_relation_access(self, employee_db):
        assert len(employee_db.relation("Employee")) == 4
        assert employee_db.relation("Missing") == frozenset()

    def test_contains_and_discard(self):
        item = fact("R", 1)
        database = Database([item])
        assert item in database
        database.discard(item)
        assert item not in database
        database.discard(item)  # no error when absent

    def test_restrict_and_union(self):
        first, second = fact("R", 1), fact("R", 2)
        database = Database([first, second])
        restricted = database.restrict([first, fact("R", 3)])
        assert restricted.facts() == frozenset([first])
        merged = restricted.union(Database([second]))
        assert merged.facts() == frozenset([first, second])

    def test_sorted_facts_is_deterministic(self):
        database = Database([fact("B", 2), fact("A", 1), fact("B", 1)])
        assert database.sorted_facts() == [fact("A", 1), fact("B", 1), fact("B", 2)]

    def test_pretty_renders_all_relations(self, employee_db):
        rendering = employee_db.pretty()
        assert "Employee" in rendering
        assert "Bob" in rendering

    def test_equality_with_set(self):
        database = Database([fact("R", 1)])
        assert database == {fact("R", 1)}
