"""Unit and property tests for selectors, boxes and union-of-boxes counting."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.lams import (
    Box,
    Selector,
    connected_components,
    count_union_by_enumeration,
    count_union_decomposed,
    count_union_inclusion_exclusion,
    count_union_of_boxes,
)


class TestSelector:
    def test_construction_and_accessors(self):
        selector = Selector({2: 1, 0: 3})
        assert selector.pins == ((0, 3), (2, 1))
        assert selector.length == 2
        assert selector.pinned_indices() == (0, 2)
        assert selector.as_dict() == {0: 3, 2: 1}

    def test_duplicate_pins_rejected(self):
        with pytest.raises(ValueError):
            Selector([(0, 1), (0, 2)])

    def test_consistency_and_merge(self):
        first = Selector({0: 1, 2: 0})
        second = Selector({2: 0, 3: 1})
        third = Selector({2: 1})
        assert first.is_consistent_with(second)
        assert not first.is_consistent_with(third)
        merged = first.merge(second)
        assert merged.as_dict() == {0: 1, 2: 0, 3: 1}
        with pytest.raises(ValueError):
            first.merge(third)


class TestBox:
    def test_size_and_contains(self):
        box = Box(Selector({1: 0}), (3, 2, 4))
        assert box.size() == 12
        assert box.contains((0, 0, 3))
        assert not box.contains((0, 1, 3))

    def test_out_of_range_pins_rejected(self):
        with pytest.raises(ValueError):
            Box(Selector({5: 0}), (2, 2))
        with pytest.raises(ValueError):
            Box(Selector({0: 7}), (2, 2))


def _brute_force_union(domain_sizes, selectors):
    """Reference implementation: enumerate the full product space."""
    count = 0
    for point in itertools.product(*(range(size) for size in domain_sizes)):
        if any(
            all(point[index] == element for index, element in selector.pins)
            for selector in selectors
        ):
            count += 1
    return count


class TestUnionOfBoxes:
    def test_no_boxes_is_zero(self):
        assert count_union_of_boxes((2, 3), []) == 0

    def test_empty_selector_covers_everything(self):
        assert count_union_of_boxes((2, 3), [Selector({})]) == 6

    def test_disjoint_and_overlapping_boxes(self):
        sizes = (2, 2, 2)
        disjoint = [Selector({0: 0}), Selector({0: 1, 1: 0})]
        assert count_union_of_boxes(sizes, disjoint) == 4 + 2
        overlapping = [Selector({0: 0}), Selector({1: 0})]
        assert count_union_of_boxes(sizes, overlapping) == 4 + 4 - 2

    def test_subsumed_boxes_do_not_change_the_union(self):
        sizes = (2, 2)
        assert count_union_of_boxes(sizes, [Selector({0: 0}), Selector({0: 0, 1: 1})]) == 2

    def test_methods_agree_on_a_fixed_instance(self):
        sizes = (3, 2, 4, 2)
        selectors = [
            Selector({0: 1, 1: 0}),
            Selector({2: 3}),
            Selector({0: 2, 3: 1}),
            Selector({1: 1, 2: 0}),
        ]
        expected = _brute_force_union(sizes, selectors)
        assert count_union_inclusion_exclusion(sizes, selectors) == expected
        assert count_union_by_enumeration(sizes, selectors) == expected
        assert count_union_decomposed(sizes, selectors) == expected

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            count_union_of_boxes((2,), [Selector({0: 0})], method="magic")

    def test_connected_components_group_by_shared_coordinates(self):
        selectors = [Selector({0: 0, 1: 1}), Selector({1: 0}), Selector({3: 1})]
        components = connected_components(selectors)
        sizes = sorted(len(component) for component in components)
        assert sizes == [1, 2]


# --------------------------------------------------------------------------- #
# property: all three strategies agree with brute force
# --------------------------------------------------------------------------- #
@st.composite
def _union_instance(draw):
    dimension = draw(st.integers(min_value=1, max_value=5))
    sizes = tuple(draw(st.integers(min_value=1, max_value=3)) for _ in range(dimension))
    box_count = draw(st.integers(min_value=0, max_value=5))
    selectors = []
    for _ in range(box_count):
        pin_count = draw(st.integers(min_value=0, max_value=min(2, dimension)))
        coordinates = draw(
            st.lists(
                st.integers(min_value=0, max_value=dimension - 1),
                min_size=pin_count,
                max_size=pin_count,
                unique=True,
            )
        )
        pins = {
            coordinate: draw(st.integers(min_value=0, max_value=sizes[coordinate] - 1))
            for coordinate in coordinates
        }
        selectors.append(Selector(pins))
    return sizes, selectors


@given(_union_instance())
@settings(max_examples=120, deadline=None)
def test_union_counting_strategies_agree_with_bruteforce(instance):
    sizes, selectors = instance
    expected = _brute_force_union(sizes, selectors)
    assert count_union_inclusion_exclusion(sizes, selectors) == expected
    assert count_union_by_enumeration(sizes, selectors) == expected
    assert count_union_decomposed(sizes, selectors) == expected
