"""Tests for the ``repro.store`` subsystem.

What is pinned here:

* the two backends (filesystem, memory) satisfy one contract — atomic
  publication, recency stamps, suffix listing — and the caches behave
  identically over either;
* the shared entry format rejects truncation, bit-flips, magic and
  version skew as misses, never errors;
* entry names are token-prefixed, byte-stable, and the duplicated naming
  logic of the two cache subclasses is gone (one base implementation);
* the snapshot catalog is append-only, survives restarts, tolerates a
  corrupt record by truncating the loaded chain, and never lets cache GC
  touch its records;
* the ``repro.engine.persist`` deprecation shim still exports the moved
  classes (old imports and pickles keep working).
"""

import pickle

import pytest

from repro.db import (
    BlockDecomposition,
    Database,
    Delta,
    LineageRecord,
    PrimaryKeySet,
    fact,
)
from repro.errors import StoreError
from repro.query import parse_query
from repro.repairs import prepare_certificates
from repro.store import (
    FORMAT_VERSION,
    DecompositionDiskCache,
    FilesystemBackend,
    MemoryBackend,
    SelectorDiskCache,
    SnapshotCatalog,
    as_backend,
    decode_entry,
    encode_entry,
    token_prefix,
)


def _instance():
    database = Database(
        [fact("R", 1, "a"), fact("R", 1, "b"), fact("R", 2, "c")]
    )
    keys = PrimaryKeySet.from_dict({"R": [1]})
    return database, keys


def _token(database, keys):
    return (database.content_digest(), keys.content_digest())


class TestBackends:
    @pytest.fixture(params=["memory", "filesystem"])
    def backend(self, request, tmp_path):
        if request.param == "memory":
            return MemoryBackend()
        return FilesystemBackend(tmp_path)

    def test_write_read_delete_roundtrip(self, backend):
        assert backend.write("entry.sel", b"payload")
        assert backend.read("entry.sel") == b"payload"
        assert backend.delete("entry.sel")
        assert backend.read("entry.sel") is None
        assert not backend.delete("entry.sel")

    def test_entries_filters_by_suffix(self, backend):
        backend.write("a.sel", b"1")
        backend.write("b.dec", b"2")
        backend.write("c.rec", b"3")
        assert [name for _, name in backend.entries(".sel")] == ["a.sel"]
        assert len(backend.entries(".rec")) == 1

    def test_set_mtime_orders_entries(self, backend):
        backend.write("old.sel", b"1")
        backend.write("new.sel", b"2")
        backend.set_mtime("old.sel", 1_000.0)
        backend.set_mtime("new.sel", 2_000.0)
        ordered = sorted(backend.entries(".sel"))
        assert [name for _, name in ordered] == ["old.sel", "new.sel"]

    def test_overwrite_is_atomic_last_write_wins(self, backend):
        backend.write("x.sel", b"first")
        backend.write("x.sel", b"second")
        assert backend.read("x.sel") == b"second"

    def test_as_backend_coerces_paths(self, tmp_path):
        assert isinstance(as_backend(tmp_path), FilesystemBackend)
        memory = MemoryBackend()
        assert as_backend(memory) is memory


class TestEntryFormat:
    def test_roundtrip(self):
        blob = encode_entry(b"RSEL", b"the payload")
        assert decode_entry(b"RSEL", blob) == b"the payload"

    def test_version_skew_is_a_miss(self):
        blob = encode_entry(b"RSEL", b"x")
        skewed = blob[:4] + (FORMAT_VERSION + 1).to_bytes(4, "big") + blob[8:]
        assert decode_entry(b"RSEL", skewed) is None

    def test_corruption_is_a_miss(self):
        blob = encode_entry(b"RSEL", b"x" * 50)
        assert decode_entry(b"RSEL", blob[:-5]) is None  # truncated
        flipped = blob[:-1] + bytes([blob[-1] ^ 0xFF])  # bit-flipped
        assert decode_entry(b"RSEL", flipped) is None
        assert decode_entry(b"RSEL", b"") is None

    def test_entry_names_are_token_prefixed(self):
        database, keys = _instance()
        token = _token(database, keys)
        selector_name = SelectorDiskCache.entry_name(token, "Q", (), ())
        decomposition_name = DecompositionDiskCache.entry_name(token)
        prefix = token_prefix(token)
        assert selector_name.startswith(prefix + "-")
        assert decomposition_name.startswith(prefix + "-")
        assert selector_name.endswith(".sel")
        assert decomposition_name.endswith(".dec")
        # Distinct tokens get distinct prefixes (GC pinning relies on it).
        other = ("f" * 64, "0" * 64)
        assert not SelectorDiskCache.entry_name(other, "Q", (), ()).startswith(
            prefix
        )


class TestCachesOverEitherBackend:
    @pytest.fixture(params=["memory", "filesystem"])
    def store(self, request, tmp_path):
        if request.param == "memory":
            return MemoryBackend()
        return FilesystemBackend(tmp_path)

    def test_selector_cache_roundtrip(self, store):
        database, keys = _instance()
        token = _token(database, keys)
        prepared = prepare_certificates(
            database, keys, parse_query("EXISTS x. R(1, x)"), ()
        )
        cache = SelectorDiskCache(store)
        assert cache.load(token, "EXISTS x. R(1, x)", (), ()) is None
        assert cache.store(token, "EXISTS x. R(1, x)", (), (), prepared)
        loaded = cache.load(token, "EXISTS x. R(1, x)", (), ())
        assert loaded.certificate_count == prepared.certificate_count
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_decomposition_cache_roundtrip(self, store):
        database, keys = _instance()
        token = _token(database, keys)
        cache = DecompositionDiskCache(store)
        assert cache.store(token, BlockDecomposition(database, keys))
        loaded = cache.load(token, database, keys)
        assert loaded.blocks == BlockDecomposition(database, keys).blocks

    def test_pinned_tokens_survive_any_bounds(self, store):
        database, keys = _instance()
        token = _token(database, keys)
        cache = DecompositionDiskCache(store)
        cache.store(token, BlockDecomposition(database, keys))
        cache.set_pinned_tokens([token])
        assert cache.collect_garbage(max_entries=0, max_age_seconds=0) == 0
        cache.set_pinned_tokens([])
        assert cache.collect_garbage(max_entries=0) == 1

    def test_pinned_entries_do_not_shield_others_from_count_bounds(self, store):
        database, keys = _instance()
        token = _token(database, keys)
        cache = SelectorDiskCache(store)
        prepared = prepare_certificates(
            database, keys, parse_query("EXISTS x. R(1, x)"), ()
        )
        for index in range(3):
            cache.store(token, f"EXISTS x. R({index}, x)", (), (), prepared)
        other = ("e" * 64, "f" * 64)
        cache.store(other, "EXISTS x. R(1, x)", (), (), prepared)
        cache.set_pinned_tokens([token])
        # max_entries=3: the three pinned entries already fill the budget,
        # so the unpinned one is evicted.
        assert cache.collect_garbage(max_entries=3) == 1
        assert cache.entry_count() == 3


class TestSnapshotCatalog:
    def _record(self, sequence, digest, parent=None, kind="register", delta=None):
        return LineageRecord(
            name="live",
            sequence=sequence,
            digest=digest,
            keys_digest="k" * 64,
            parent_digest=parent,
            kind=kind,
            delta=delta,
            wall_time=float(sequence),
        )

    def test_append_and_reload_across_restarts(self, tmp_path):
        catalog = SnapshotCatalog(tmp_path)
        delta = Delta(inserted=[fact("R", 9, "z")])
        assert catalog.append(self._record(0, "a" * 64))
        assert catalog.append(
            self._record(1, "b" * 64, parent="a" * 64, kind="delta", delta=delta)
        )
        restarted = SnapshotCatalog(tmp_path)
        chain = restarted.lineage("live")
        assert [record.kind for record in chain] == ["register", "delta"]
        assert chain.head.delta == delta
        assert restarted.lineage("other-name").records == ()

    def test_corrupt_record_truncates_the_loaded_chain(self, tmp_path):
        catalog = SnapshotCatalog(tmp_path)
        catalog.append(self._record(0, "a" * 64))
        catalog.append(
            self._record(
                1,
                "b" * 64,
                parent="a" * 64,
                kind="delta",
                delta=Delta(inserted=[fact("R", 9, "z")]),
            )
        )
        middle = tmp_path / SnapshotCatalog.entry_name("live", 0)
        middle.write_bytes(b"garbage")
        chain = SnapshotCatalog(tmp_path).lineage("live")
        assert len(chain) == 0  # truncated at the damaged record, no error
        assert not middle.exists()  # dead weight removed best-effort

    def test_truncation_purges_successors_so_no_stale_splice(self, tmp_path):
        """Regression: deleting only the corrupt record frees its sequence
        slot, and a later append would splice the *old* successors (with
        dangling parent digests) back into loaded chains."""
        catalog = SnapshotCatalog(tmp_path)
        delta = Delta(inserted=[fact("R", 9, "z")])
        catalog.append(self._record(0, "a" * 64))
        catalog.append(
            self._record(1, "b" * 64, parent="a" * 64, kind="delta", delta=delta)
        )
        catalog.append(
            self._record(2, "c" * 64, parent="b" * 64, kind="delta", delta=delta)
        )
        (tmp_path / SnapshotCatalog.entry_name("live", 1)).write_bytes(b"garbage")

        restart_a = SnapshotCatalog(tmp_path)
        assert len(restart_a.lineage("live")) == 1
        assert restart_a.truncated == 1  # record #2 purged with #1
        # The freed slot is reused by a new head move...
        restart_a.append(self._record(1, "d" * 64, parent="a" * 64))
        # ...and a later load sees exactly the coherent two-record chain,
        # never the stale record #2.
        chain = SnapshotCatalog(tmp_path).lineage("live")
        assert [record.digest for record in chain] == ["a" * 64, "d" * 64]

    def test_non_record_payload_is_rejected(self, tmp_path):
        catalog = SnapshotCatalog(tmp_path)
        with pytest.raises(StoreError, match="LineageRecords"):
            catalog.append("not a record")
        # A decodable entry holding the wrong type truncates, not crashes.
        blob = encode_entry(b"RCAT", pickle.dumps({"not": "a record"}))
        (tmp_path / SnapshotCatalog.entry_name("live", 0)).write_bytes(blob)
        assert len(SnapshotCatalog(tmp_path).lineage("live")) == 0

    def test_cache_gc_never_touches_catalog_records(self, tmp_path):
        catalog = SnapshotCatalog(tmp_path)
        catalog.append(self._record(0, "a" * 64))
        cache = SelectorDiskCache(tmp_path)
        cache.collect_garbage(max_entries=0, max_age_seconds=0)
        assert SnapshotCatalog(tmp_path).entry_count() == 1

    def test_memory_backend_catalog(self):
        backend = MemoryBackend()
        catalog = SnapshotCatalog(backend)
        catalog.append(self._record(0, "a" * 64))
        assert len(SnapshotCatalog(backend).lineage("live")) == 1


class TestDeprecationShim:
    def test_persist_module_reexports_the_moved_classes(self):
        # The first import of the shim in a process emits the (intended)
        # DeprecationWarning; acknowledge it so the suite stays clean
        # even with warnings promoted to errors.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.engine import persist
        from repro.store import caches

        assert persist.SelectorDiskCache is caches.SelectorDiskCache
        assert persist.DecompositionDiskCache is caches.DecompositionDiskCache
        assert persist.FORMAT_VERSION == FORMAT_VERSION
        # The historical private base-class name still resolves.
        assert persist._ContentAddressedDiskCache is caches.ContentAddressedStore

    def test_persist_module_warns_on_import(self):
        """The shim is no longer silent: importing it names its successor.

        The module may already be in ``sys.modules`` (other tests import
        it), so the warning is asserted on a reload — which is exactly
        what a fresh interpreter's first import executes.
        """
        import importlib

        from repro.engine import persist
        from repro.store import caches

        with pytest.warns(DeprecationWarning, match="repro.store"):
            reloaded = importlib.reload(persist)
        # The re-exports survive the warning-carrying reload unchanged.
        assert reloaded.SelectorDiskCache is caches.SelectorDiskCache
        assert reloaded.DecompositionDiskCache is caches.DecompositionDiskCache
        assert reloaded.FORMAT_VERSION == FORMAT_VERSION
