"""Unit tests for FO evaluation and homomorphism search."""

import pytest

from repro.db import Database, fact
from repro.errors import EvaluationError
from repro.query import (
    answers,
    atom,
    count_homomorphisms,
    exists_homomorphism,
    find_homomorphisms,
    holds,
    homomorphism_image,
    parse_query,
    var,
)


@pytest.fixture
def path_db():
    """A small directed graph stored as edge facts."""
    return Database(
        [
            fact("E", "a", "b"),
            fact("E", "b", "c"),
            fact("E", "c", "a"),
            fact("E", "a", "a"),
            fact("N", "a"),
            fact("N", "b"),
            fact("N", "c"),
        ]
    )


class TestEvaluation:
    def test_atoms_and_connectives(self, path_db):
        assert holds(parse_query("E('a', 'b')", auto_close=False), path_db)
        assert not holds(parse_query("E('b', 'a')", auto_close=False), path_db)
        assert holds(parse_query("E('a', 'b') AND E('b', 'c')"), path_db)
        assert holds(parse_query("E('b', 'a') OR E('a', 'b')"), path_db)
        assert holds(parse_query("NOT E('b', 'a')"), path_db)

    def test_existential_queries(self, path_db):
        assert holds(parse_query("EXISTS x . E(x, x)"), path_db)
        assert holds(parse_query("EXISTS x, y, z . E(x, y) AND E(y, z) AND E(z, x)"), path_db)
        assert not holds(parse_query("EXISTS x . E(x, 'd')"), path_db)

    def test_universal_queries(self, path_db):
        # Every node has an outgoing edge.
        q = parse_query("FORALL x . NOT N(x) OR EXISTS y . E(x, y)", auto_close=False)
        assert holds(q, path_db)
        # Not every node has a self loop.
        q2 = parse_query("FORALL x . NOT N(x) OR E(x, x)", auto_close=False)
        assert not holds(q2, path_db)

    def test_equality_and_constants(self, path_db):
        assert holds(parse_query("EXISTS x . E(x, x) AND x = 'a'"), path_db)
        assert not holds(parse_query("EXISTS x . E(x, x) AND x = 'b'"), path_db)

    def test_non_boolean_answers(self, path_db):
        query = parse_query("E('a', x)", answer_variables=["x"])
        assert answers(query, path_db) == {("b",), ("a",)}
        assert holds(query, path_db, ("b",))
        assert not holds(query, path_db, ("c",))

    def test_wrong_answer_arity(self, path_db):
        query = parse_query("E('a', x)", answer_variables=["x"])
        with pytest.raises(EvaluationError):
            holds(query, path_db, ("b", "c"))

    def test_true_false(self, path_db):
        assert holds(parse_query("TRUE"), path_db)
        assert not holds(parse_query("FALSE"), path_db)


class TestHomomorphisms:
    def test_all_homomorphisms_are_found(self, path_db):
        x, y = var("x"), var("y")
        atoms = [atom("E", x, y)]
        found = list(find_homomorphisms(atoms, path_db))
        assert len(found) == 4
        assert count_homomorphisms(atoms, path_db) == 4

    def test_join_and_repeated_variables(self, path_db):
        x, y, z = var("x"), var("y"), var("z")
        triangle = [atom("E", x, y), atom("E", y, z), atom("E", z, x)]
        found = list(find_homomorphisms(triangle, path_db))
        assert len(found) >= 1
        for assignment in found:
            image = homomorphism_image(triangle, assignment)
            assert all(item in path_db for item in image)
        loop = [atom("E", x, x)]
        assert count_homomorphisms(loop, path_db) == 1

    def test_base_assignment_restricts_search(self, path_db):
        x, y = var("x"), var("y")
        found = list(find_homomorphisms([atom("E", x, y)], path_db, base_assignment={x: "a"}))
        assert {assignment[y] for assignment in found} == {"a", "b"}

    def test_limit_and_exists(self, path_db):
        x, y = var("x"), var("y")
        atoms = [atom("E", x, y)]
        assert len(list(find_homomorphisms(atoms, path_db, limit=2))) == 2
        assert exists_homomorphism(atoms, path_db)
        assert not exists_homomorphism([atom("Missing", x)], path_db)

    def test_empty_atom_list_yields_empty_homomorphism(self, path_db):
        assert list(find_homomorphisms([], path_db)) == [{}]
