"""Property tests: parser/printer round trips and evaluator consistency."""

from hypothesis import given, settings, strategies as st

from repro.db import Database, PrimaryKeySet, fact
from repro.query import holds, parse_formula, parse_query
from repro.repairs import count_repairs_satisfying, count_total_repairs


# A tiny pool of well-formed formula texts, combined randomly with AND/OR.
_ATOMIC = st.sampled_from(
    [
        "R(x, y)",
        "R(x, x)",
        "S(y)",
        "R(1, x)",
        "S(2)",
        "TRUE",
    ]
)


@st.composite
def _formula_text(draw):
    depth = draw(st.integers(min_value=0, max_value=2))
    text = draw(_ATOMIC)
    for _ in range(depth):
        connective = draw(st.sampled_from([" AND ", " OR "]))
        text = f"({text}{connective}{draw(_ATOMIC)})"
    return text


@given(_formula_text())
@settings(max_examples=80, deadline=None)
def test_parsing_the_rendered_formula_gives_the_same_ast(text):
    """str() of a parsed formula parses back to an equivalent formula."""
    first = parse_formula(text)
    second = parse_formula(str(first))
    assert str(first) == str(second)
    assert first.atoms() == second.atoms()


_db_facts = st.lists(
    st.one_of(
        st.builds(lambda a, b: fact("R", a, b), st.integers(0, 2), st.integers(0, 2)),
        st.builds(lambda a: fact("S", a), st.integers(0, 2)),
    ),
    max_size=8,
)


@given(_db_facts, _formula_text())
@settings(max_examples=60, deadline=None)
def test_boolean_query_evaluation_is_stable_under_reparsing(facts, text):
    database = Database(facts)
    if not len(database):
        return
    query = parse_query(text)
    reparsed = parse_query(str(query.formula))
    assert holds(query, database) == holds(reparsed, database)


@given(_db_facts, _formula_text())
@settings(max_examples=40, deadline=None)
def test_counts_are_monotone_in_the_query_for_disjunction(facts, text):
    """#CQA(Q) <= #CQA(Q OR Q') — monotonicity of unions of certificates."""
    database = Database(facts)
    keys = PrimaryKeySet.from_dict({"R": [1], "S": [1]})
    total = count_total_repairs(database, keys)
    base = count_repairs_satisfying(database, keys, parse_query(text)).satisfying
    widened = count_repairs_satisfying(
        database, keys, parse_query(f"({text}) OR R(x, y)")
    ).satisfying
    assert 0 <= base <= widened <= total
