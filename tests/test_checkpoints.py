"""Tests for checkpoint-based lineage compaction across the layers.

What is pinned here:

* explicit (``SolverPool.checkpoint``) and automatic (``checkpoint_every``)
  checkpoints persist the full snapshot through the store, mark the chain
  position in the catalog, and are idempotent per head;
* deep ``as_of`` materialisation replays from the **nearest** checkpoint —
  O(distance to checkpoint) delta applications, not O(chain length) — and
  stays bit-identical to both a checkpoint-less replay and a fresh
  registration of the ancestor;
* a lost or corrupted checkpoint snapshot entry demotes the checkpoint
  (replay falls back to the head) and never produces a wrong count;
* checkpoints survive restarts through the catalog, work across
  rollbacks, and their snapshot entries participate in GC (live head
  pinned, ancestors evictable — evicted means cold, never wrong);
* the server forwards ``checkpoint_every`` to its shards and exposes the
  ``checkpoints``/``checkpoint`` probes;
* the ``repro checkpoint`` command and the checkpoint markers (``*`` /
  ``"checkpoint": true``) in ``repro history`` round-trip via the CLI.
"""

import json
from dataclasses import replace

import pytest

from repro.cli import main
from repro.db import Database, Delta, PrimaryKeySet, database_to_json, fact
from repro.engine import CountJob, SolverPool
from repro.errors import EngineError
from repro.store import SnapshotCatalog, SnapshotStore

_QUERY = "EXISTS x, y. R(x, 'a', y)"


def _chain_pool(tmp_path, deltas=12, checkpoint_every=None, **kwargs):
    """A pool whose single database has ``deltas`` recorded versions."""
    database = Database(
        [fact("R", 1, "a", "x"), fact("R", 1, "b", "x"), fact("R", 2, "a", "y")]
    )
    keys = PrimaryKeySet.from_dict({"R": [1]})
    pool = SolverPool(
        persist_dir=tmp_path / "store",
        checkpoint_every=checkpoint_every,
        **kwargs,
    )
    pool.register("live", database, keys)
    digests = [pool.snapshot_token("live")[0]]
    for step in range(deltas):
        value = "a" if step % 2 == 0 else "b"
        pool.apply_delta(
            "live", Delta(inserted=[fact("R", 10 + step, value, f"z{step}")])
        )
        digests.append(pool.snapshot_token("live")[0])
    return pool, keys, digests


def _count_replays(monkeypatch):
    """Patch Database.apply_delta to count how many deltas get replayed."""
    calls = []
    original = Database.apply_delta

    def counting(self, delta):
        calls.append(delta)
        return original(self, delta)

    monkeypatch.setattr(Database, "apply_delta", counting)
    return calls


class TestExplicitCheckpoints:
    def test_checkpoint_persists_snapshot_and_marks_the_chain(self, tmp_path):
        pool, keys, digests = _chain_pool(tmp_path, deltas=3)
        record = pool.checkpoint("live")
        assert record is not None
        assert record.digest == digests[-1]
        assert record.sequence == 3
        # The full snapshot is on disk under the head token...
        store = SnapshotStore(tmp_path / "store")
        assert store.load((record.digest, record.keys_digest)) == pool.lookup("live")[0]
        # ...and the chain position is marked in the catalog.
        catalog = SnapshotCatalog(tmp_path / "store")
        markers = catalog.checkpoints("live")
        assert [marker.sequence for marker in markers] == [3]
        assert pool.cache_stats()["snapshots-disk"]["entries"] == 1

    def test_checkpoint_is_idempotent_per_head(self, tmp_path):
        pool, _, _ = _chain_pool(tmp_path, deltas=2)
        first = pool.checkpoint("live")
        second = pool.checkpoint("live")
        assert first == second
        assert len(pool.checkpoints("live")) == 1

    def test_checkpoint_without_a_store_fails_loudly(self):
        pool = SolverPool()
        pool.register(
            "live",
            Database([fact("R", 1, "a", "x")]),
            PrimaryKeySet.from_dict({"R": [1]}),
        )
        with pytest.raises(EngineError, match="persist_dir"):
            pool.checkpoint("live")

    def test_checkpoints_survive_restart_via_the_catalog(self, tmp_path):
        pool, keys, _ = _chain_pool(tmp_path, deltas=4, checkpoint_every=2)
        assert [c.sequence for c in pool.checkpoints("live")] == [2, 4]

        restarted = SolverPool(persist_dir=tmp_path / "store")
        restarted.register("live", pool.lookup("live")[0], keys)
        assert [c.sequence for c in restarted.checkpoints("live")] == [2, 4]


class TestAutomaticCheckpoints:
    def test_checkpoint_every_cuts_on_the_effective_delta_cadence(self, tmp_path):
        pool, _, _ = _chain_pool(tmp_path, deltas=9, checkpoint_every=4)
        # register is sequence 0; deltas land at 1..9; checkpoints every 4.
        assert [c.sequence for c in pool.checkpoints("live")] == [4, 8]

    def test_no_interval_means_no_automatic_checkpoints(self, tmp_path):
        pool, _, _ = _chain_pool(tmp_path, deltas=6)
        assert pool.checkpoints("live") == ()

    def test_bad_interval_is_rejected(self, tmp_path):
        with pytest.raises(EngineError, match="checkpoint_every"):
            SolverPool(persist_dir=tmp_path, checkpoint_every=0)

    def test_rollback_restarts_the_compaction_count(self, tmp_path):
        """Rolled-back-over deltas must not count toward the next interval."""
        pool, _, digests = _chain_pool(tmp_path, deltas=5, checkpoint_every=3)
        assert [c.sequence for c in pool.checkpoints("live")] == [3]
        pool.rollback("live", digests[3])  # deltas 4-5 are rolled over
        for step in range(2):
            pool.apply_delta(
                "live", Delta(inserted=[fact("R", 90 + step, "a", "post")])
            )
        # Only 2 post-rollback deltas: the rolled-over ones (and the
        # rollback record itself) must not push the count to 3 early.
        assert [c.sequence for c in pool.checkpoints("live")] == [3]
        pool.apply_delta("live", Delta(inserted=[fact("R", 99, "a", "post")]))
        assert [c.sequence for c in pool.checkpoints("live")] == [3, 9]

    def test_rollback_to_a_checkpointed_digest_marks_the_new_position(
        self, tmp_path
    ):
        """Revisiting a checkpointed digest at a new sequence gets its own
        marker — the reported chain position must be the head, not the
        stale earlier record."""
        pool, _, digests = _chain_pool(tmp_path, deltas=4, checkpoint_every=2)
        early = next(c for c in pool.checkpoints("live") if c.sequence == 2)
        pool.rollback("live", early.digest)  # head: sequence 5, digest of #2
        record = pool.checkpoint("live")
        assert record is not None
        assert record.digest == early.digest
        assert record.sequence == 5
        markers = SnapshotCatalog(tmp_path / "store").checkpoints("live")
        assert {marker.sequence for marker in markers} >= {2, 5}

    def test_truncation_sweeps_orphaned_checkpoint_markers(self, tmp_path):
        """Purging damaged records also purges their checkpoint markers."""
        pool, _, digests = _chain_pool(tmp_path, deltas=3, checkpoint_every=1)
        store = tmp_path / "store"
        catalog = SnapshotCatalog(store)
        assert [c.sequence for c in catalog.checkpoints("live")] == [1, 2, 3]
        # Damage the record at sequence 2: loading truncates there and
        # must sweep the markers of slots 2 and 3 along with the records.
        (store / SnapshotCatalog.entry_name("live", 2)).write_bytes(b"garbage")
        fresh = SnapshotCatalog(store)
        assert len(fresh.lineage("live")) == 2  # sequences 0 and 1 survive
        suffixes = [p.name for p in store.glob("*.ckp")]
        assert len(suffixes) == 1  # only sequence 1's marker remains
        assert [c.sequence for c in fresh.checkpoints("live")] == [1]

    def test_recheckpointing_restores_an_evicted_snapshot(self, tmp_path):
        """A surviving .ckp marker whose .snp payload was GC'd is re-stored."""
        pool, keys, digests = _chain_pool(tmp_path, deltas=2)
        record = pool.checkpoint("live")
        assert record is not None
        # Advance the head (unpinning the checkpoint), GC everything
        # evictable, then roll back: the marker survives, the payload not.
        pool.apply_delta("live", Delta(inserted=[fact("R", 77, "a", "gc")]))
        pool.collect_garbage(max_entries=0, max_age_seconds=0)
        store = SnapshotStore(tmp_path / "store")
        assert store.load((record.digest, record.keys_digest)) is None
        pool.rollback("live", record.digest)
        again = pool.checkpoint("live")
        assert again is not None and again.digest == record.digest
        assert store.load((record.digest, record.keys_digest)) is not None


class TestCheckpointedMaterialisation:
    def test_replay_starts_at_the_nearest_checkpoint(self, tmp_path, monkeypatch):
        pool, keys, digests = _chain_pool(tmp_path, deltas=16, checkpoint_every=4)
        restarted = SolverPool(persist_dir=tmp_path / "store")
        restarted.register("live", pool.lookup("live")[0], keys)

        calls = _count_replays(monkeypatch)
        # Sequence 5 is distance 1 from the checkpoint at 4 (and 3 from
        # the one at 8) but distance 11 from the head at 16.
        snapshot, _, _ = restarted.materialise("live", digests[5])
        assert snapshot.content_digest() == digests[5]
        assert len(calls) == 1

    def test_checkpointed_and_plain_replay_are_bit_identical(self, tmp_path):
        pool, keys, digests = _chain_pool(tmp_path, deltas=10, checkpoint_every=3)
        plain = SolverPool()
        plain.register("live", pool.lookup("live")[0], keys)
        plain.adopt_lineage("live", pool.lineage("live"))
        for digest in digests:
            with_checkpoints = pool.materialise("live", digest)[0]
            without = plain.materialise("live", digest)[0]
            assert with_checkpoints == without
            assert with_checkpoints.content_digest() == digest

    def test_historical_counts_match_fresh_registration(self, tmp_path):
        pool, keys, digests = _chain_pool(tmp_path, deltas=8, checkpoint_every=2)
        for digest in (digests[1], digests[4], digests[7]):
            historical = pool.run_job(
                CountJob(database="live", query=_QUERY, as_of=digest)
            )
            fresh = SolverPool()
            fresh.register(
                "live", Database(pool.materialise("live", digest)[0].facts()), keys
            )
            expected = fresh.run_job(CountJob(database="live", query=_QUERY))
            assert historical.count_fields()[1:] == expected.count_fields()[1:]

    def test_damaged_checkpoint_falls_back_to_head_replay(
        self, tmp_path, monkeypatch
    ):
        pool, keys, digests = _chain_pool(tmp_path, deltas=8, checkpoint_every=4)
        # Corrupt every persisted snapshot entry in place.
        for path in (tmp_path / "store").glob("*.snp"):
            path.write_bytes(b"garbage")
        restarted = SolverPool(persist_dir=tmp_path / "store")
        restarted.register("live", pool.lookup("live")[0], keys)
        calls = _count_replays(monkeypatch)
        snapshot, _, _ = restarted.materialise("live", digests[3])
        # Correct result, via the long way round (5 backward steps from
        # the head at sequence 8 — the checkpoints could not load).
        assert snapshot.content_digest() == digests[3]
        assert len(calls) == 5

    def test_rollback_and_checkpoints_compose(self, tmp_path):
        pool, keys, digests = _chain_pool(tmp_path, deltas=6, checkpoint_every=2)
        pool.rollback("live", digests[0])
        # The head is now the root; deep-in-chain states resolve through
        # the checkpoints, not through the (now distant) head.
        snapshot, _, _ = pool.materialise("live", digests[5])
        assert snapshot.content_digest() == digests[5]
        # And the rolled-back head can itself be checkpointed.
        record = pool.checkpoint("live")
        assert record is not None
        assert record.digest == digests[0]


class TestCheckpointGarbageCollection:
    def test_live_head_checkpoint_is_pinned_ancestors_are_not(self, tmp_path):
        pool, keys, digests = _chain_pool(tmp_path, deltas=4, checkpoint_every=2)
        # Checkpoints at sequences 2 and 4; the head (4) is live/pinned.
        assert pool.cache_stats()["snapshots-disk"]["entries"] == 2
        evicted = pool.collect_garbage(max_entries=0, max_age_seconds=0)
        assert evicted["snapshots-disk"] == 1
        assert pool.cache_stats()["snapshots-disk"]["entries"] == 1

        # The evicted ancestor checkpoint makes replay longer, never wrong.
        restarted = SolverPool(persist_dir=tmp_path / "store")
        restarted.register("live", pool.lookup("live")[0], keys)
        snapshot, _, _ = restarted.materialise("live", digests[2])
        assert snapshot.content_digest() == digests[2]


class TestServerCheckpoints:
    def test_shards_cut_and_report_checkpoints(self, tmp_path):
        import asyncio

        from repro.engine import UpdateJob
        from repro.server import AsyncServer

        database = Database([fact("R", 1, "a", "x"), fact("R", 2, "a", "y")])
        keys = PrimaryKeySet.from_dict({"R": [1]})
        deltas = [
            Delta(inserted=[fact("R", 10 + step, "a", f"z{step}")])
            for step in range(4)
        ]

        async def run():
            server = AsyncServer(
                shards=2,
                persist_dir=tmp_path / "store",
                checkpoint_every=2,
            )
            server.register("live", database, keys)
            async with server:
                for index, delta in enumerate(deltas):
                    await server.submit(UpdateJob(database="live", delta=delta), index)
                automatic = await server.checkpoints("live")
                explicit = await server.checkpoint("live")
                after = await server.checkpoints("live")
            return automatic, explicit, after

        automatic, explicit, after = asyncio.run(run())
        assert [c.sequence for c in automatic] == [2, 4]
        assert explicit is not None and explicit.sequence == 4
        assert [c.sequence for c in after] == [2, 4]
        # The markers are in the shared catalog for offline readers too.
        assert [
            c.sequence for c in SnapshotCatalog(tmp_path / "store").checkpoints("live")
        ] == [2, 4]


class TestCheckpointCLI:
    @pytest.fixture
    def instance_files(self, tmp_path):
        database = Database(
            [fact("R", 1, "a", "x"), fact("R", 1, "b", "x"), fact("R", 2, "a", "y")]
        )
        keys = PrimaryKeySet.from_dict({"R": [1]})
        deltas = [
            Delta(inserted=[fact("R", 10 + step, "a", f"z{step}")])
            for step in range(4)
        ]
        db_path = tmp_path / "db.json"
        db_path.write_text(json.dumps(database_to_json(database, keys)))
        jobs = {
            "databases": {"live": {"path": "db.json"}},
            "jobs": [{"database": "live", "query": _QUERY}]
            + [{"update": "live", **delta.to_json()} for delta in deltas]
            + [{"database": "live", "query": _QUERY, "as_of": -3}],
        }
        jobs_path = tmp_path / "jobs.json"
        jobs_path.write_text(json.dumps(jobs))
        head = database
        for delta in deltas:
            head = head.apply_delta(delta)
        head_path = tmp_path / "head.json"
        head_path.write_text(json.dumps(database_to_json(head, keys)))
        return tmp_path, jobs_path, head_path

    def test_batch_checkpoint_every_and_history_markers(
        self, instance_files, capsys
    ):
        tmp_path, jobs_path, head_path = instance_files
        cache = tmp_path / "cache"
        assert main(["batch", "--jobs", str(jobs_path),
                     "--persist-cache", str(cache),
                     "--checkpoint-every", "2"]) == 0
        capsys.readouterr()

        assert main(["history", "live", "--persist-cache", str(cache)]) == 0
        output = capsys.readouterr().out
        assert "#2*" in output and "#4*" in output  # the checkpointed rows
        assert "#1 " in output  # unmarked rows keep a plain marker column
        assert "2 checkpoint(s)" in output

        assert main(["history", "live", "--persist-cache", str(cache),
                     "--json-lines"]) == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines()
                 if line.startswith("{")]
        flagged = [line["sequence"] for line in lines if line.get("checkpoint")]
        assert flagged == [2, 4]

    def test_history_limit_reports_elided_records(self, instance_files, capsys):
        tmp_path, jobs_path, _ = instance_files
        cache = tmp_path / "cache"
        assert main(["batch", "--jobs", str(jobs_path),
                     "--persist-cache", str(cache)]) == 0
        capsys.readouterr()
        assert main(["history", "live", "--persist-cache", str(cache),
                     "--limit", "2"]) == 0
        output = capsys.readouterr().out
        assert "3 older record(s) elided" in output
        assert output.count("#") >= 2 and "#0" not in output

    def test_history_rejects_a_negative_limit(self, instance_files, capsys):
        tmp_path, jobs_path, _ = instance_files
        cache = tmp_path / "cache"
        assert main(["batch", "--jobs", str(jobs_path),
                     "--persist-cache", str(cache)]) == 0
        capsys.readouterr()
        assert main(["history", "live", "--persist-cache", str(cache),
                     "--limit", "-2"]) == 2
        assert "--limit must be >= 0" in capsys.readouterr().err

    def test_checkpoint_command_round_trip(self, instance_files, capsys):
        tmp_path, jobs_path, head_path = instance_files
        cache = tmp_path / "cache"
        assert main(["batch", "--jobs", str(jobs_path),
                     "--persist-cache", str(cache)]) == 0
        capsys.readouterr()

        assert main(["checkpoint", "live", "--json", str(head_path),
                     "--persist-cache", str(cache)]) == 0
        output = capsys.readouterr().out
        assert "checkpointed: #4" in output
        assert "checkpoints: 1" in output

        assert main(["history", "live", "--persist-cache", str(cache)]) == 0
        assert "#4*" in capsys.readouterr().out

    def test_checkpoint_command_rejects_a_stale_snapshot(
        self, instance_files, capsys
    ):
        tmp_path, jobs_path, _ = instance_files
        cache = tmp_path / "cache"
        assert main(["batch", "--jobs", str(jobs_path),
                     "--persist-cache", str(cache)]) == 0
        capsys.readouterr()
        # db.json is the *root*, not the post-delta head.
        assert main(["checkpoint", "live", "--json", str(tmp_path / "db.json"),
                     "--persist-cache", str(cache)]) == 2
        assert "not the recorded head" in capsys.readouterr().err
        assert SnapshotCatalog(cache).checkpoints("live") == ()

    def test_checkpoint_command_rejects_an_unknown_name(
        self, instance_files, capsys
    ):
        """A typo'd name must not seed a brand-new chain in the catalog."""
        tmp_path, jobs_path, head_path = instance_files
        cache = tmp_path / "cache"
        assert main(["batch", "--jobs", str(jobs_path),
                     "--persist-cache", str(cache)]) == 0
        capsys.readouterr()
        assert main(["checkpoint", "liev", "--json", str(head_path),
                     "--persist-cache", str(cache)]) == 2
        assert "no recorded lineage" in capsys.readouterr().err
        assert len(SnapshotCatalog(cache).lineage("liev")) == 0

    def test_checkpoint_every_requires_a_cache(self, instance_files, capsys):
        _, jobs_path, _ = instance_files
        assert main(["batch", "--jobs", str(jobs_path),
                     "--checkpoint-every", "2"]) == 2
        assert "requires --persist-cache" in capsys.readouterr().err

    def test_checkpoint_every_rejects_bad_intervals_before_spawning(
        self, instance_files, capsys
    ):
        """A bad interval must be a clean exit 2 in the parent, never a
        BrokenProcessPool surfaced from a shard worker's initializer."""
        from repro.errors import ServerError
        from repro.server import AsyncServer

        tmp_path, jobs_path, _ = instance_files
        for command in ("batch", "serve"):
            assert main([command, "--jobs", str(jobs_path),
                         "--persist-cache", str(tmp_path / "cache"),
                         "--checkpoint-every", "0"]) == 2
            assert "must be >= 1" in capsys.readouterr().err
        with pytest.raises(ServerError, match="checkpoint_every"):
            AsyncServer(shards=1, checkpoint_every=0)
