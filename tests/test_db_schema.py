"""Unit tests for schemas and relation declarations."""

import pytest

from repro.db import RelationSchema, Schema
from repro.errors import ArityError, SchemaError


class TestRelationSchema:
    def test_generates_positional_attribute_names(self):
        relation = RelationSchema("R", 3)
        assert relation.attributes == ("a1", "a2", "a3")

    def test_explicit_attribute_names(self):
        relation = RelationSchema("Employee", 3, ("id", "name", "dept"))
        assert relation.attributes == ("id", "name", "dept")
        assert str(relation) == "Employee(id, name, dept)"

    def test_position_of_is_one_based(self):
        relation = RelationSchema("Employee", 3, ("id", "name", "dept"))
        assert relation.position_of("id") == 1
        assert relation.position_of("dept") == 3

    def test_position_of_unknown_attribute(self):
        relation = RelationSchema("R", 2)
        with pytest.raises(SchemaError):
            relation.position_of("missing")

    def test_rejects_zero_arity(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", 0)

    def test_rejects_wrong_attribute_count(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", 2, ("only_one",))

    def test_rejects_duplicate_attribute_names(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", 2, ("x", "x"))

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            RelationSchema("", 1)


class TestSchema:
    def test_from_arities(self):
        schema = Schema.from_arities({"R": 2, "S": 3})
        assert schema.arity("R") == 2
        assert schema.arity("S") == 3
        assert len(schema) == 2

    def test_from_attributes(self):
        schema = Schema.from_attributes({"Employee": ["id", "name", "dept"]})
        assert schema.relation("Employee").attributes == ("id", "name", "dept")

    def test_contains_and_iteration(self):
        schema = Schema.from_arities({"R": 1})
        assert "R" in schema
        assert "S" not in schema
        assert [relation.name for relation in schema] == ["R"]

    def test_redeclaration_with_same_shape_is_allowed(self):
        schema = Schema.from_arities({"R": 2})
        schema.declare("R", 2)
        assert len(schema) == 1

    def test_redeclaration_with_different_arity_is_rejected(self):
        schema = Schema.from_arities({"R": 2})
        with pytest.raises(SchemaError):
            schema.declare("R", 3)

    def test_unknown_relation_lookup(self):
        schema = Schema()
        with pytest.raises(SchemaError):
            schema.relation("R")

    def test_check_terms_enforces_arity(self):
        schema = Schema.from_arities({"R": 2})
        schema.check_terms("R", (1, 2))
        with pytest.raises(ArityError):
            schema.check_terms("R", (1, 2, 3))

    def test_equality(self):
        assert Schema.from_arities({"R": 2}) == Schema.from_arities({"R": 2})
        assert Schema.from_arities({"R": 2}) != Schema.from_arities({"R": 3})
