"""Unit tests for query classification and the keywidth covering function."""

import pytest

from repro.db import PrimaryKeySet
from repro.query import (
    QueryClass,
    classify,
    is_conjunctive_query,
    is_existential_positive,
    is_self_join_free,
    is_union_of_conjunctive_queries,
    keywidth,
    max_disjunct_keywidth,
    parse_query,
    to_ucq,
)


class TestClassification:
    def test_conjunctive_query(self):
        query = parse_query("EXISTS x, y . R(x, y) AND S(y)")
        assert classify(query) is QueryClass.CQ
        assert is_conjunctive_query(query)
        assert is_union_of_conjunctive_queries(query)
        assert is_existential_positive(query)

    def test_union_of_conjunctive_queries(self):
        query = parse_query("R(x) OR (S(x) AND T(x))")
        assert classify(query) is QueryClass.UCQ
        assert not is_conjunctive_query(query)
        assert is_union_of_conjunctive_queries(query)

    def test_existential_positive_but_not_ucq_shape(self):
        query = parse_query("R(x) AND (S(x) OR T(x))")
        assert classify(query) is QueryClass.EXISTENTIAL_POSITIVE
        assert is_existential_positive(query)
        assert not is_union_of_conjunctive_queries(query)

    def test_first_order_with_negation_or_forall(self):
        negated = parse_query("NOT R(x)")
        universal = parse_query("FORALL x . R(x)", auto_close=False)
        assert classify(negated) is QueryClass.FIRST_ORDER
        assert classify(universal) is QueryClass.FIRST_ORDER
        assert not is_existential_positive(negated)
        assert not is_existential_positive(universal)

    def test_self_join_freeness(self):
        assert is_self_join_free(parse_query("R(x) AND S(x)"))
        assert not is_self_join_free(parse_query("R(x) AND R(y)"))


class TestKeywidth:
    def test_keywidth_counts_only_keyed_atoms(self):
        keys = PrimaryKeySet.from_dict({"R": [1]})
        query = parse_query("R(x, y) AND S(y, z) AND R(z, w)")
        assert keywidth(query, keys) == 2

    def test_keywidth_zero_without_keys(self):
        keys = PrimaryKeySet()
        query = parse_query("R(x, y) AND S(y, z)")
        assert keywidth(query, keys) == 0

    def test_employee_query_has_keywidth_two(self, same_department_query, employee_keys):
        assert keywidth(same_department_query, employee_keys) == 2

    def test_ucq_keywidth_sums_disjuncts_but_max_is_per_disjunct(self):
        keys = PrimaryKeySet.from_dict({"R": [1], "S": [1]})
        query = parse_query("(R(x, y) AND S(y, z)) OR R(u, v)")
        ucq = to_ucq(query)
        assert keywidth(ucq, keys) == 3
        assert max_disjunct_keywidth(query, keys) == 2

    def test_max_disjunct_keywidth_of_unsatisfiable_query(self):
        keys = PrimaryKeySet.from_dict({"R": [1]})
        query = parse_query("FALSE")
        assert max_disjunct_keywidth(query, keys) == 0
