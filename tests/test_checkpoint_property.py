"""Randomized property suite: checkpointed replay ≡ pure delta replay.

Satellite of the checkpoint-compaction PR: over ≥50 randomly generated
lineage chains — random effective deltas, interspersed rollback records,
random checkpoint placements, randomly *missing* checkpoint snapshots —
:meth:`Lineage.materialise` with checkpoint loaders must be
**bit-identical** to the pure delta replay from the chain origin, for

* **forward** resolution (materialising from the *origin* database —
  every target is downstream), and
* **backward** resolution (materialising from the *head* database —
  every target is upstream, replayed via exact delta inverses),

including chains whose head moved backwards through ``"rollback"``
records.  Every target digest of every chain is checked, so a wrong
shortest-path inversion, a stale checkpoint loader or a bad fallback
would show up as a digest mismatch or an inequality here.
"""

import random

import pytest

from repro.db import Database, Delta, Lineage, LineageRecord, fact

_RELATIONS = ("R", "S")
_CHAINS = 60
_KEYS_DIGEST = "k" * 64


def _random_fact(rng):
    relation = rng.choice(_RELATIONS)
    return fact(relation, rng.randrange(12), f"v{rng.randrange(6)}")


def _random_effective_delta(rng, database):
    """A non-empty delta whose inserted/deleted sets are exactly effective."""
    for _ in range(32):
        present = sorted(database.facts())
        inserted = {
            item
            for item in (_random_fact(rng) for _ in range(rng.randint(1, 4)))
            if item not in database.facts()
        }
        deleted = set()
        if present and rng.random() < 0.6:
            deleted = set(rng.sample(present, k=rng.randint(1, min(3, len(present)))))
        if inserted or deleted:
            return Delta(inserted=sorted(inserted), deleted=sorted(deleted))
    raise AssertionError("could not generate an effective delta")


def _random_chain(seed):
    """A random lineage with deltas and rollbacks, plus its state table."""
    rng = random.Random(seed)
    database = Database(
        [_random_fact(rng) for _ in range(rng.randint(2, 8))]
    ).freeze()
    states = {database.content_digest(): database}
    chain = Lineage("live").append(
        LineageRecord(
            "live", 0, database.content_digest(), _KEYS_DIGEST, None,
            "register", None, 0.0,
        )
    )
    head = database
    for _ in range(rng.randint(4, 14)):
        if len(chain) > 2 and rng.random() < 0.15:
            # A rollback: the head jumps to a random earlier digest.
            target = rng.choice(chain.records[:-1]).digest
            head = states[target]
            chain = chain.append(
                LineageRecord(
                    "live", len(chain), target, _KEYS_DIGEST,
                    chain.head.digest, "rollback", None, 0.0,
                )
            )
            continue
        delta = _random_effective_delta(rng, head)
        previous = head
        head = head.apply_delta(delta).freeze()
        chain = chain.append(
            LineageRecord(
                "live", len(chain), head.content_digest(), _KEYS_DIGEST,
                previous.content_digest(), "delta", delta, 0.0,
            )
        )
        states[head.content_digest()] = head
    return chain, states, head, rng


def _random_loaders(rng, states):
    """Checkpoint loaders over a random subset of states; some are 'lost'."""
    digests = sorted(states)
    chosen = rng.sample(digests, k=rng.randint(0, len(digests)))
    loaders = {}
    for digest in chosen:
        if rng.random() < 0.25:
            # A checkpoint whose snapshot entry is missing/corrupt: the
            # loader yields None and replay must fall back gracefully.
            loaders[digest] = lambda: None
        else:
            snapshot = states[digest]
            loaders[digest] = lambda snapshot=snapshot: Database(snapshot.facts())
    return loaders


@pytest.mark.parametrize("seed", range(_CHAINS))
def test_checkpointed_materialise_is_bit_identical_to_pure_replay(seed):
    chain, states, head, rng = _random_chain(seed)
    origin = states[chain.records[0].digest]
    loaders = _random_loaders(rng, states)

    for target_digest, expected in states.items():
        # Forward resolution: from the chain origin, downstream replay.
        forward_pure = chain.materialise(origin, target_digest)
        forward_ckpt = chain.materialise(origin, target_digest, checkpoints=loaders)
        # Backward resolution: from the head, upstream via exact inverses.
        backward_pure = chain.materialise(head, target_digest)
        backward_ckpt = chain.materialise(head, target_digest, checkpoints=loaders)

        for produced in (forward_pure, forward_ckpt, backward_pure, backward_ckpt):
            assert produced.content_digest() == target_digest
            assert produced == expected
        assert forward_ckpt == forward_pure == backward_ckpt == backward_pure


@pytest.mark.parametrize("seed", range(0, _CHAINS, 7))
def test_replay_distance_never_exceeds_the_checkpoint_free_distance(seed):
    """The cost model: checkpoints can only shorten the promised replay."""
    chain, states, head, rng = _random_chain(seed)
    loaders = _random_loaders(rng, states)
    head_digest = head.content_digest()
    for target_digest in states:
        plain = chain.replay_distance(head_digest, target_digest)
        compacted = chain.replay_distance(
            head_digest, target_digest, checkpoints=loaders
        )
        assert plain is not None and compacted is not None
        assert compacted <= plain
