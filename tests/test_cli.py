"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.db import database_to_json, save_csv_directory


@pytest.fixture
def employee_json(tmp_path, employee_db, employee_keys):
    path = tmp_path / "employee.json"
    path.write_text(json.dumps(database_to_json(employee_db, employee_keys)))
    return str(path)


_EMPLOYEE_QUERY = "EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)"


class TestInspectAndRepairs:
    def test_inspect(self, employee_json, capsys):
        assert main(["inspect", "--json", employee_json]) == 0
        output = capsys.readouterr().out
        assert "facts: 4" in output
        assert "total repairs: 4" in output
        assert "consistent: False" in output

    def test_repairs_listing(self, employee_json, capsys):
        assert main(["repairs", "--json", employee_json, "--list", "2"]) == 0
        output = capsys.readouterr().out
        assert "total repairs: 4" in output
        assert output.count("--- repair") == 2


class TestDecideAndCount:
    def test_decide(self, employee_json, capsys):
        assert main(["decide", "--json", employee_json, "--query", _EMPLOYEE_QUERY]) == 0
        assert "entailed by some repair" in capsys.readouterr().out

    def test_count_exact(self, employee_json, capsys):
        assert main(["count", "--json", employee_json, "--query", _EMPLOYEE_QUERY]) == 0
        output = capsys.readouterr().out
        assert "2 of 4 repairs" in output

    def test_count_fpras(self, employee_json, capsys):
        code = main(
            [
                "count",
                "--json",
                employee_json,
                "--query",
                _EMPLOYEE_QUERY,
                "--method",
                "fpras",
                "--epsilon",
                "0.2",
                "--delta",
                "0.1",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        assert "≈" in capsys.readouterr().out

    def test_count_with_answer(self, employee_json, capsys):
        code = main(
            [
                "count",
                "--json",
                employee_json,
                "--query",
                "Employee(1, x, y)",
                "--answer-vars",
                "x,y",
                "--answer",
                "Bob,HR",
            ]
        )
        assert code == 0
        assert "2 of 4 repairs" in capsys.readouterr().out


class TestRankAndCsv:
    def test_rank(self, employee_json, capsys):
        code = main(
            [
                "rank",
                "--json",
                employee_json,
                "--query",
                "Employee(1, x, y)",
                "--answer-vars",
                "x,y",
                "--top",
                "1",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out.strip().splitlines()
        assert len(output) == 1 and "2/4" in output[0]

    def test_csv_loading_with_keys(self, tmp_path, employee_db, capsys):
        directory = tmp_path / "csv"
        save_csv_directory(employee_db, directory)
        code = main(
            [
                "inspect",
                "--csv-dir",
                str(directory),
                "--key",
                "Employee=1",
            ]
        )
        assert code == 0
        assert "total repairs: 4" in capsys.readouterr().out

    def test_bad_key_argument(self, tmp_path, employee_db):
        directory = tmp_path / "csv"
        save_csv_directory(employee_db, directory)
        with pytest.raises(SystemExit):
            main(["inspect", "--csv-dir", str(directory), "--key", "Employee"])

    def test_missing_source_is_an_error(self):
        with pytest.raises(SystemExit):
            main(["inspect"])
