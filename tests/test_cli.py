"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.db import database_to_json, save_csv_directory


@pytest.fixture
def employee_json(tmp_path, employee_db, employee_keys):
    path = tmp_path / "employee.json"
    path.write_text(json.dumps(database_to_json(employee_db, employee_keys)))
    return str(path)


_EMPLOYEE_QUERY = "EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)"


class TestInspectAndRepairs:
    def test_inspect(self, employee_json, capsys):
        assert main(["inspect", "--json", employee_json]) == 0
        output = capsys.readouterr().out
        assert "facts: 4" in output
        assert "total repairs: 4" in output
        assert "consistent: False" in output

    def test_repairs_listing(self, employee_json, capsys):
        assert main(["repairs", "--json", employee_json, "--list", "2"]) == 0
        output = capsys.readouterr().out
        assert "total repairs: 4" in output
        assert output.count("--- repair") == 2


class TestDecideAndCount:
    def test_decide(self, employee_json, capsys):
        assert main(["decide", "--json", employee_json, "--query", _EMPLOYEE_QUERY]) == 0
        assert "entailed by some repair" in capsys.readouterr().out

    def test_count_exact(self, employee_json, capsys):
        assert main(["count", "--json", employee_json, "--query", _EMPLOYEE_QUERY]) == 0
        output = capsys.readouterr().out
        assert "2 of 4 repairs" in output

    def test_count_fpras(self, employee_json, capsys):
        code = main(
            [
                "count",
                "--json",
                employee_json,
                "--query",
                _EMPLOYEE_QUERY,
                "--method",
                "fpras",
                "--epsilon",
                "0.2",
                "--delta",
                "0.1",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        assert "≈" in capsys.readouterr().out

    def test_count_with_answer(self, employee_json, capsys):
        code = main(
            [
                "count",
                "--json",
                employee_json,
                "--query",
                "Employee(1, x, y)",
                "--answer-vars",
                "x,y",
                "--answer",
                "Bob,HR",
            ]
        )
        assert code == 0
        assert "2 of 4 repairs" in capsys.readouterr().out


class TestRankAndCsv:
    def test_rank(self, employee_json, capsys):
        code = main(
            [
                "rank",
                "--json",
                employee_json,
                "--query",
                "Employee(1, x, y)",
                "--answer-vars",
                "x,y",
                "--top",
                "1",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out.strip().splitlines()
        assert len(output) == 1 and "2/4" in output[0]

    def test_csv_loading_with_keys(self, tmp_path, employee_db, capsys):
        directory = tmp_path / "csv"
        save_csv_directory(employee_db, directory)
        code = main(
            [
                "inspect",
                "--csv-dir",
                str(directory),
                "--key",
                "Employee=1",
            ]
        )
        assert code == 0
        assert "total repairs: 4" in capsys.readouterr().out

    def test_bad_key_argument(self, tmp_path, employee_db):
        directory = tmp_path / "csv"
        save_csv_directory(employee_db, directory)
        with pytest.raises(SystemExit):
            main(["inspect", "--csv-dir", str(directory), "--key", "Employee"])

    def test_missing_source_is_an_error(self):
        with pytest.raises(SystemExit):
            main(["inspect"])


@pytest.fixture
def batch_jobs_file(tmp_path, employee_db, employee_keys):
    """A well-formed job file: one path database, exact + seeded fpras jobs."""
    db_path = tmp_path / "employee.json"
    db_path.write_text(json.dumps(database_to_json(employee_db, employee_keys)))
    jobs_path = tmp_path / "jobs.json"
    jobs_path.write_text(
        json.dumps(
            {
                "databases": {"emp": {"path": "employee.json"}},
                "jobs": [
                    {"database": "emp", "query": _EMPLOYEE_QUERY},
                    {"database": "emp", "query": _EMPLOYEE_QUERY, "method": "naive"},
                    {
                        "database": "emp",
                        "query": _EMPLOYEE_QUERY,
                        "method": "fpras",
                        "epsilon": 0.3,
                        "delta": 0.2,
                        "seed": 7,
                    },
                ],
            }
        )
    )
    return str(jobs_path)


class TestBatch:
    def test_batch_json_report_shape(self, batch_jobs_file, capsys):
        assert main(["batch", "--jobs", batch_jobs_file]) == 0
        report = json.loads(capsys.readouterr().out)
        assert set(report) == {"jobs", "summary"}
        summary = report["summary"]
        assert summary["jobs"] == 3
        assert summary["workers"] == 1
        assert set(summary["cache"]) == {
            "query",
            "decomposition",
            "decomposition-disk",
            "selectors",
            "selectors-disk",
            "exact",
        }
        first, second, estimate = report["jobs"]
        assert (first["satisfying"], first["total"]) == (2, 4)
        assert first["method"] == "certificate"
        assert second["method"] == "naive" and second["satisfying"] == 2
        assert estimate["is_estimate"] is True
        assert estimate["job"]["seed"] == 7
        # The repeated query must have hit the cold caches of job 0.
        assert "query" in second["cache_hits"]
        assert "decomposition" in second["cache_hits"]

    def test_batch_is_deterministic_across_invocations(self, batch_jobs_file, capsys):
        assert main(["batch", "--jobs", batch_jobs_file]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(["batch", "--jobs", batch_jobs_file]) == 0
        second = json.loads(capsys.readouterr().out)
        extract = lambda report: [
            (job["satisfying"], job["total"], job["method"]) for job in report["jobs"]
        ]
        assert extract(first) == extract(second)

    def test_batch_with_workers_matches_sequential(self, batch_jobs_file, capsys):
        assert main(["batch", "--jobs", batch_jobs_file]) == 0
        sequential = json.loads(capsys.readouterr().out)
        assert main(["batch", "--jobs", batch_jobs_file, "--workers", "2"]) == 0
        pooled = json.loads(capsys.readouterr().out)
        assert pooled["summary"]["workers"] == 2
        assert [job["satisfying"] for job in pooled["jobs"]] == [
            job["satisfying"] for job in sequential["jobs"]
        ]

    def test_batch_missing_file_fails(self, tmp_path, capsys):
        code = main(["batch", "--jobs", str(tmp_path / "missing.json")])
        assert code == 2
        assert "batch:" in capsys.readouterr().err

    def test_batch_invalid_json_fails(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["batch", "--jobs", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_batch_malformed_document_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"databases": {}}))
        assert main(["batch", "--jobs", str(path)]) == 2
        assert "databases" in capsys.readouterr().err

    def test_batch_unknown_method_fails(self, tmp_path, employee_db, employee_keys, capsys):
        path = tmp_path / "jobs.json"
        path.write_text(
            json.dumps(
                {
                    "databases": {"emp": database_to_json(employee_db, employee_keys)},
                    "jobs": [{"database": "emp", "query": _EMPLOYEE_QUERY, "method": "magic"}],
                }
            )
        )
        assert main(["batch", "--jobs", str(path)]) == 2
        assert "unknown method" in capsys.readouterr().err

    def test_batch_job_referencing_missing_database_fails(
        self, tmp_path, employee_db, employee_keys, capsys
    ):
        path = tmp_path / "jobs.json"
        path.write_text(
            json.dumps(
                {
                    "databases": {"emp": database_to_json(employee_db, employee_keys)},
                    "jobs": [{"database": "ghost", "query": _EMPLOYEE_QUERY}],
                }
            )
        )
        assert main(["batch", "--jobs", str(path)]) == 2
        assert "ghost" in capsys.readouterr().err


class TestServe:
    def test_serve_streams_one_json_line_per_stream_item(
        self, batch_jobs_file, capsys
    ):
        assert main(["serve", "--jobs", batch_jobs_file, "--shards", "2"]) == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert len(lines) == 3
        assert sorted(line["index"] for line in lines) == [0, 1, 2]
        by_index = {line["index"]: line for line in lines}
        assert (by_index[0]["satisfying"], by_index[0]["total"]) == (2, 4)
        assert by_index[0]["worker"].startswith("shard-")

    def test_serve_matches_batch_counts(self, batch_jobs_file, capsys):
        assert main(["batch", "--jobs", batch_jobs_file]) == 0
        batch = json.loads(capsys.readouterr().out)
        assert main(["serve", "--jobs", batch_jobs_file]) == 0
        served = {
            line["index"]: line
            for line in map(
                json.loads, capsys.readouterr().out.strip().splitlines()
            )
        }
        for job in batch["jobs"]:
            assert served[job["index"]]["satisfying"] == job["satisfying"]
            assert served[job["index"]]["total"] == job["total"]

    def test_serve_marks_update_reports(
        self, tmp_path, employee_db, employee_keys, capsys
    ):
        path = tmp_path / "jobs.json"
        path.write_text(
            json.dumps(
                {
                    "databases": {
                        "emp": database_to_json(employee_db, employee_keys)
                    },
                    "jobs": [
                        {"database": "emp", "query": _EMPLOYEE_QUERY},
                        {
                            "update": "emp",
                            "insert": [
                                {
                                    "relation": "Employee",
                                    "arguments": [3, "Eve", "IT"],
                                }
                            ],
                        },
                    ],
                }
            )
        )
        assert main(["serve", "--jobs", str(path), "--shards", "1"]) == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        updates = [line for line in lines if line.get("type") == "update"]
        assert len(updates) == 1 and updates[0]["inserted"] == 1

    def test_serve_stats_go_to_stderr(self, batch_jobs_file, capsys):
        assert main(["serve", "--jobs", batch_jobs_file, "--stats"]) == 0
        captured = capsys.readouterr()
        stats = json.loads(captured.err)
        assert stats["queue"]["submitted"] == 3
        assert set(stats["shards"]) == {"0", "1"}
        # The elastic-sharding surface: per-shard load accounting, the
        # per-name load map, the routing table, and the rebalancer state
        # are all part of the printed report.
        for shard in stats["shards"].values():
            assert shard["in_flight"] == 0 and shard["queue_depth"] == 0
            assert shard["dispatched"] == shard["completed"]
        assert set(stats["routing"]["owners"]) == set(stats["names"])
        assert stats["rebalance"]["moves"] == 0
        assert stats["rebalance"]["interval"] is None

    def test_serve_accepts_rebalance_flags(self, batch_jobs_file, capsys):
        assert (
            main(
                [
                    "serve",
                    "--jobs",
                    batch_jobs_file,
                    "--stats",
                    "--rebalance-interval",
                    "30",
                    "--max-imbalance",
                    "1.5",
                ]
            )
            == 0
        )
        stats = json.loads(capsys.readouterr().err)
        assert stats["rebalance"]["interval"] == 30.0
        assert stats["rebalance"]["max_imbalance"] == 1.5
        assert stats["rebalance"]["policy"] == "GreedyRebalancer"

    def test_serve_rejects_a_bad_imbalance_threshold(
        self, batch_jobs_file, capsys
    ):
        code = main(
            ["serve", "--jobs", batch_jobs_file, "--max-imbalance", "0.5"]
        )
        assert code == 2
        assert "max_imbalance" in capsys.readouterr().err

    def test_serve_reads_jobs_from_stdin(
        self, tmp_path, employee_db, employee_keys, capsys, monkeypatch
    ):
        import io

        path = tmp_path / "databases.json"
        path.write_text(
            json.dumps(
                {"databases": {"emp": database_to_json(employee_db, employee_keys)}}
            )
        )
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(
                json.dumps({"database": "emp", "query": _EMPLOYEE_QUERY}) + "\n\n"
            ),
        )
        assert main(["serve", "--jobs", str(path), "--stdin"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["satisfying"] == 2

    def test_serve_stdin_unknown_database_fails(
        self, tmp_path, employee_db, employee_keys, capsys, monkeypatch
    ):
        import io

        path = tmp_path / "databases.json"
        path.write_text(
            json.dumps(
                {"databases": {"emp": database_to_json(employee_db, employee_keys)}}
            )
        )
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(
                json.dumps({"database": "ghost", "query": _EMPLOYEE_QUERY}) + "\n"
            ),
        )
        assert main(["serve", "--jobs", str(path), "--stdin"]) == 2
        assert "ghost" in capsys.readouterr().err

    def test_serve_missing_file_fails(self, tmp_path, capsys):
        assert main(["serve", "--jobs", str(tmp_path / "missing.json")]) == 2
        assert "serve:" in capsys.readouterr().err

    def test_serve_empty_jobs_without_stdin_fails(
        self, tmp_path, employee_db, employee_keys, capsys
    ):
        path = tmp_path / "databases.json"
        path.write_text(
            json.dumps(
                {"databases": {"emp": database_to_json(employee_db, employee_keys)}}
            )
        )
        assert main(["serve", "--jobs", str(path)]) == 2
        assert "jobs" in capsys.readouterr().err
