"""Tests for the recorded hierarchy facts, error types and small utilities."""

import pytest

import repro
from repro import errors
from repro.lams import STRUCTURAL_FACTS, StructuralFact, TabularCompactor, Selector, level_of


class TestStructuralFacts:
    def test_facts_are_well_formed(self):
        assert len(STRUCTURAL_FACTS) >= 8
        for fact_ in STRUCTURAL_FACTS:
            assert isinstance(fact_, StructuralFact)
            assert fact_.statement and fact_.reference

    def test_key_statements_are_recorded(self):
        statements = " | ".join(fact_.statement for fact_ in STRUCTURAL_FACTS)
        assert "SpanL" in statements
        assert "FPRAS" in statements
        assert "Λ[k]" in statements or "Lambda" in statements

    def test_level_of_reports_the_syntactic_bound(self):
        compactor = TabularCompactor(
            k=3,
            domains_by_instance={"x": (("a",),)},
            selectors_by_instance={"x": {"c": Selector({})}},
        )
        assert level_of(compactor) == 3


class TestErrorHierarchy:
    def test_every_error_derives_from_repro_error(self):
        for name in (
            "SchemaError",
            "ArityError",
            "ConstraintError",
            "QueryError",
            "QueryParseError",
            "FragmentError",
            "EvaluationError",
            "ReductionError",
            "ApproximationError",
            "CompactorError",
        ):
            error_type = getattr(errors, name)
            assert issubclass(error_type, errors.ReproError)

    def test_arity_error_is_a_schema_error(self):
        assert issubclass(errors.ArityError, errors.SchemaError)

    def test_fragment_and_parse_errors_are_query_errors(self):
        assert issubclass(errors.FragmentError, errors.QueryError)
        assert issubclass(errors.QueryParseError, errors.QueryError)


class TestPackageSurface:
    def test_version_and_top_level_exports(self):
        assert repro.__version__
        for name in ("CQASolver", "Database", "PrimaryKeySet", "parse_query", "fact"):
            assert hasattr(repro, name)

    def test_top_level_all_is_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name
