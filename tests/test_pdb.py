"""Tests for the disjoint-independent probabilistic database substrate."""

from fractions import Fraction

import pytest

from repro.db import Database, fact
from repro.errors import FragmentError, ReproError
from repro.pdb import (
    DisjointIndependentPDB,
    ProbabilisticBlock,
    pdb_from_inconsistent_database,
    query_probability_bruteforce,
    query_probability_exact,
    query_probability_monte_carlo,
)
from repro.query import parse_query
from repro.repairs import count_repairs_satisfying


class TestProbabilisticBlock:
    def test_total_and_partial_blocks(self):
        total = ProbabilisticBlock((fact("R", 1, "a"),), (Fraction(1),))
        partial = ProbabilisticBlock((fact("R", 2, "a"),), (Fraction(1, 3),))
        assert total.is_total and total.absence_probability == 0
        assert not partial.is_total and partial.absence_probability == Fraction(2, 3)
        assert len(list(partial.outcomes())) == 2

    def test_validation(self):
        with pytest.raises(ReproError):
            ProbabilisticBlock((), ())
        with pytest.raises(ReproError):
            ProbabilisticBlock((fact("R", 1),), (Fraction(0),))
        with pytest.raises(ReproError):
            ProbabilisticBlock((fact("R", 1), fact("R", 2)), (Fraction(2, 3), Fraction(2, 3)))


class TestPdbModel:
    def test_from_inconsistent_database(self, employee_db, employee_keys):
        pdb, decomposition = pdb_from_inconsistent_database(employee_db, employee_keys)
        assert len(pdb) == 2
        assert pdb.world_count() == 4 == decomposition.total_repairs()
        worlds = list(pdb.possible_worlds())
        assert len(worlds) == 4
        assert sum(probability for _, probability in worlds) == 1

    def test_world_count_with_partial_blocks(self):
        pdb = DisjointIndependentPDB(
            [
                ProbabilisticBlock((fact("R", 1, "a"),), (Fraction(1, 2),)),
                ProbabilisticBlock(
                    (fact("R", 2, "a"), fact("R", 2, "b")), (Fraction(1, 2), Fraction(1, 2))
                ),
            ]
        )
        assert pdb.world_count() == 4  # (present/absent) x (a/b)


class TestQueryProbability:
    def test_employee_example_probability_is_one_half(
        self, employee_db, employee_keys, same_department_query
    ):
        pdb, _ = pdb_from_inconsistent_database(employee_db, employee_keys)
        exact = query_probability_exact(pdb, same_department_query)
        brute = query_probability_bruteforce(pdb, same_department_query)
        assert exact == brute == Fraction(1, 2)

    def test_probability_times_repairs_equals_cqa(self, employee_db, employee_keys):
        pdb, decomposition = pdb_from_inconsistent_database(employee_db, employee_keys)
        for text in ("Employee(1, x, 'HR')", "Employee(x, y, 'IT')", "Employee(3, x, y)"):
            query = parse_query(text)
            probability = query_probability_exact(pdb, query)
            count = count_repairs_satisfying(employee_db, employee_keys, query).satisfying
            assert probability * decomposition.total_repairs() == count

    def test_partial_block_probability(self):
        pdb = DisjointIndependentPDB(
            [ProbabilisticBlock((fact("R", 1, "a"),), (Fraction(1, 4),))]
        )
        query = parse_query("R(1, 'a')", auto_close=False)
        assert query_probability_exact(pdb, query) == Fraction(1, 4)
        assert query_probability_bruteforce(pdb, query) == Fraction(1, 4)

    def test_fo_query_requires_bruteforce(self, employee_db, employee_keys):
        pdb, _ = pdb_from_inconsistent_database(employee_db, employee_keys)
        with pytest.raises(FragmentError):
            query_probability_exact(pdb, parse_query("NOT Employee(1, 'Bob', 'HR')"))

    def test_monte_carlo_is_in_the_right_ballpark(
        self, employee_db, employee_keys, same_department_query
    ):
        pdb, _ = pdb_from_inconsistent_database(employee_db, employee_keys)
        estimate = query_probability_monte_carlo(pdb, same_department_query, samples=3000, rng=1)
        assert abs(estimate - 0.5) < 0.06
