"""Tests for the DNF counting problems and the SAT substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.problems import (
    CNFFormula,
    DisjointPositiveDNF,
    DisjointPositiveDNFCompactor,
    Literal,
    PositiveDNF,
    PositiveDNFCompactor,
    count_disjoint_positive_dnf,
    count_positive_dnf,
    count_satisfying_assignments,
    is_satisfiable,
)
from repro.workloads import random_disjoint_positive_dnf, random_positive_dnf


class TestCNF:
    def test_from_ints_and_counting(self):
        formula = CNFFormula.from_ints([[1, 2], [-1, 2]])
        assert formula.variables() == ("x1", "x2")
        # Satisfying assignments: x2=1 (two of them) plus x1=0,x2=0? no: clause1 fails.
        assert count_satisfying_assignments(formula) == 2
        assert is_satisfiable(formula)

    def test_unsatisfiable_formula(self):
        formula = CNFFormula.from_ints([[1], [-1]])
        assert count_satisfying_assignments(formula) == 0
        assert not is_satisfiable(formula)

    def test_literal_negation(self):
        literal = Literal("x", True)
        assert literal.negate() == Literal("x", False)
        assert str(literal.negate()) == "¬x"

    def test_empty_clause_rejected(self):
        with pytest.raises(ReproError):
            CNFFormula(((),))

    def test_is_kcnf(self):
        formula = CNFFormula.from_ints([[1, 2, 3], [1]])
        assert formula.is_kcnf(3) and not formula.is_kcnf(2)


class TestPositiveDNF:
    def test_simple_counts(self):
        formula = PositiveDNF(("x", "y", "z"), (("x", "y"),))
        # x=y=1, z free -> 2 assignments.
        assert count_positive_dnf(formula) == 2
        assert formula.count_bruteforce() == 2

    def test_pos2dnf_union(self):
        formula = PositiveDNF(("x", "y", "z"), (("x", "y"), ("y", "z")))
        assert count_positive_dnf(formula) == formula.count_bruteforce() == 3

    def test_empty_formula_counts_zero(self):
        formula = PositiveDNF(("x",), ())
        assert count_positive_dnf(formula) == 0

    def test_unknown_variable_rejected(self):
        with pytest.raises(ReproError):
            PositiveDNF(("x",), (("y",),))

    def test_compactor_verifies_and_matches_bruteforce(self):
        formula = random_positive_dnf(6, 5, 2, seed=1)
        compactor = PositiveDNFCompactor(k=formula.width)
        compactor.verify(formula)
        assert compactor.unfold_count(formula) == formula.count_bruteforce()

    @pytest.mark.parametrize("seed", range(5))
    def test_exact_matches_bruteforce_random(self, seed):
        formula = random_positive_dnf(7, 6, 3, seed=seed)
        assert count_positive_dnf(formula) == formula.count_bruteforce()


class TestDisjointPositiveDNF:
    def test_total_p_assignments(self):
        formula = DisjointPositiveDNF((("a", "b"), ("c", "d", "e")), ())
        assert formula.total_p_assignments() == 6
        assert count_disjoint_positive_dnf(formula) == 0

    def test_single_clause(self):
        formula = DisjointPositiveDNF((("a", "b"), ("c", "d")), (("a", "c"),))
        assert count_disjoint_positive_dnf(formula) == 1
        assert formula.count_bruteforce() == 1

    def test_clause_with_two_variables_of_the_same_part_is_invalid(self):
        formula = DisjointPositiveDNF((("a", "b"),), (("a", "b"),))
        compactor = DisjointPositiveDNFCompactor(k=2)
        assert not compactor.is_valid_certificate(formula, 0)
        assert count_disjoint_positive_dnf(formula) == 0
        assert formula.count_bruteforce() == 0

    def test_variable_in_two_parts_rejected(self):
        with pytest.raises(ReproError):
            DisjointPositiveDNF((("a",), ("a",)), ())

    def test_part_of_lookup(self):
        formula = DisjointPositiveDNF((("a", "b"), ("c",)), ())
        assert formula.part_of("c") == 1
        with pytest.raises(KeyError):
            formula.part_of("zzz")

    @pytest.mark.parametrize("seed", range(6))
    def test_exact_matches_bruteforce_random(self, seed):
        formula = random_disjoint_positive_dnf(5, 3, 7, 3, seed=seed)
        assert count_disjoint_positive_dnf(formula) == formula.count_bruteforce()

    def test_compactor_verify(self):
        formula = random_disjoint_positive_dnf(4, 2, 5, 2, seed=10)
        DisjointPositiveDNFCompactor(k=formula.width).verify(formula)


# --------------------------------------------------------------------------- #
# property: the compactor count equals brute force on random instances
# --------------------------------------------------------------------------- #
@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40, deadline=None)
def test_disjoint_dnf_exact_equals_bruteforce(parts, part_size, clauses, seed):
    formula = random_disjoint_positive_dnf(parts, part_size, clauses, 2, seed=seed)
    assert count_disjoint_positive_dnf(formula) == formula.count_bruteforce()
