"""Tests for Algorithm 1 (transducer) and Algorithm 2 (compactor) on #CQA."""

import pytest

from repro.db import Database, PrimaryKeySet, fact
from repro.lams import CQACompactor, GuessCheckExpandTransducer
from repro.query import parse_query
from repro.repairs import count_repairs_satisfying_naive
from repro.workloads import random_conjunctive_query
from tests.conftest import small_random_instance


class TestCQACompactor:
    def test_k_equals_keywidth(self, employee_keys, same_department_query):
        compactor = CQACompactor(same_department_query, employee_keys)
        assert compactor.k == 2

    def test_count_matches_paper_example(
        self, employee_db, employee_keys, same_department_query
    ):
        compactor = CQACompactor(same_department_query, employee_keys)
        assert compactor.count(employee_db) == 2

    def test_solution_domains_are_the_blocks(
        self, employee_db, employee_keys, same_department_query
    ):
        compactor = CQACompactor(same_department_query, employee_keys)
        domains = compactor.solution_domains(employee_db)
        assert len(domains) == 2
        assert all(len(domain) == 2 for domain in domains)

    def test_verify_definition_4_1(self, employee_db, employee_keys, same_department_query):
        CQACompactor(same_department_query, employee_keys).verify(employee_db)

    def test_candidate_space_contains_valid_certificates(
        self, employee_db, employee_keys, same_department_query
    ):
        compactor = CQACompactor(same_department_query, employee_keys)
        candidates = list(compactor.candidate_certificates(employee_db))
        valid = list(compactor.certificates(employee_db))
        assert set(valid) <= set(candidates)
        assert all(compactor.is_valid_certificate(employee_db, cert) for cert in valid)
        invalid = [c for c in candidates if c not in set(valid)]
        assert invalid, "the exhaustive candidate space must contain invalid guesses"
        assert not any(
            compactor.is_valid_certificate(employee_db, cert) for cert in invalid
        )

    def test_unkeyed_atoms_do_not_count_towards_selectors(self):
        database = Database(
            [
                fact("R", 1, "a"),
                fact("R", 1, "b"),
                fact("Ref", "a"),
            ]
        )
        keys = PrimaryKeySet.from_dict({"R": [1]})
        query = parse_query("R(x, y) AND Ref(y)")
        compactor = CQACompactor(query, keys)
        assert compactor.k == 1  # only the R atom is keyed
        selectors = compactor.selectors(database)
        assert all(selector.length <= 1 for selector in selectors)
        assert compactor.count(database) == 1

    def test_repairs_entailing_enumeration(self, employee_db, employee_keys, same_department_query):
        compactor = CQACompactor(same_department_query, employee_keys)
        repairs = list(compactor.repairs_entailing(employee_db))
        assert len(repairs) == 2
        for repair in repairs:
            assert fact("Employee", 1, "Bob", "IT") in repair


class TestGuessCheckExpandTransducer:
    def test_span_equals_unfold_on_the_example(
        self, employee_db, employee_keys, same_department_query
    ):
        compactor = CQACompactor(same_department_query, employee_keys)
        transducer = GuessCheckExpandTransducer(compactor)
        assert transducer.span(employee_db) == 2
        assert transducer.span_via_compactor(employee_db) == 2
        assert transducer.accepts(employee_db)

    def test_outputs_have_one_fact_per_block(
        self, employee_db, employee_keys, same_department_query
    ):
        compactor = CQACompactor(same_department_query, employee_keys)
        transducer = GuessCheckExpandTransducer(compactor)
        for output in transducer.accepted_outputs(employee_db):
            assert len(output) == 2  # one entry per block

    def test_candidate_space_yields_the_same_span(
        self, employee_db, employee_keys, same_department_query
    ):
        compactor = CQACompactor(same_department_query, employee_keys)
        faithful = GuessCheckExpandTransducer(compactor, use_candidate_space=True)
        assert faithful.span(employee_db) == 2

    @pytest.mark.parametrize("seed", range(5))
    def test_span_equals_naive_count_on_random_instances(self, seed):
        database, keys = small_random_instance(seed=seed + 200, blocks=4, max_block=3)
        query = random_conjunctive_query({"R": 2, "S": 2}, keys, target_keywidth=2, seed=seed)
        compactor = CQACompactor(query, keys)
        transducer = GuessCheckExpandTransducer(compactor)
        naive = count_repairs_satisfying_naive(database, keys, query)
        assert transducer.span(database) == naive
        assert transducer.span_via_compactor(database) == naive
