"""Unit tests for database persistence (CSV and JSON)."""

import json

import pytest

from repro.db import (
    Database,
    PrimaryKeySet,
    database_from_json,
    database_to_json,
    fact,
    load_csv_directory,
    load_json,
    save_csv_directory,
    save_json,
)
from repro.errors import SchemaError


class TestCsvRoundTrip:
    def test_save_and_load(self, tmp_path, employee_db):
        save_csv_directory(employee_db, tmp_path)
        loaded, keys = load_csv_directory(tmp_path, keys={"Employee": [1]})
        assert loaded.facts() == employee_db.facts()
        assert keys.has_key("Employee")

    def test_numeric_cells_are_coerced(self, tmp_path):
        (tmp_path / "R.csv").write_text("a,b\n1,2.5\nx,y\n")
        database, _ = load_csv_directory(tmp_path)
        assert fact("R", 1, 2.5) in database
        assert fact("R", "x", "y") in database

    def test_ragged_rows_are_rejected(self, tmp_path):
        (tmp_path / "R.csv").write_text("a,b\n1\n")
        with pytest.raises(SchemaError):
            load_csv_directory(tmp_path)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_csv_directory(tmp_path / "nope")


class TestJsonRoundTrip:
    def test_dict_round_trip(self, employee_db, employee_keys):
        payload = database_to_json(employee_db, employee_keys)
        # The payload must be JSON-serialisable as is.
        json.dumps(payload)
        loaded, keys = database_from_json(payload)
        assert loaded.facts() == employee_db.facts()
        assert keys == employee_keys

    def test_file_round_trip(self, tmp_path, employee_db, employee_keys):
        path = tmp_path / "employee.json"
        save_json(employee_db, path, employee_keys)
        loaded, keys = load_json(path)
        assert loaded.facts() == employee_db.facts()
        assert keys == employee_keys

    def test_round_trip_without_keys(self, employee_db):
        loaded, keys = database_from_json(database_to_json(employee_db))
        assert loaded.facts() == employee_db.facts()
        assert len(keys) == 0
