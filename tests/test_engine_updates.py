"""Tests for first-class updates in the engine and the persistent cache.

Covers the acceptance criteria of the snapshot/delta refactor:

* ``SolverPool.apply_delta`` on a delta touching k blocks invalidates only
  the selector entries pinned to those blocks (asserted through cache-hit
  provenance and the update report's kept/migrated/dropped counters);
* results after a delta are bit-identical to a cold sequential solver;
* a pool restarted against the persistent selector cache answers an
  unchanged job file with zero selector recomputations;
* the persistent cache shrugs off corruption and version skew;
* update entries flow end to end through job files, ``run_stream`` and the
  ``repro batch`` / ``repro update`` CLI commands.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.core import CQASolver
from repro.db import Database, Delta, PrimaryKeySet, database_to_json, fact
from repro.engine import (
    CountJob,
    SolverPool,
    UpdateJob,
    load_job_file,
    parse_job_document,
)
from repro.store import FORMAT_VERSION, SelectorDiskCache
from repro.errors import BatchSpecError, EngineError, FrozenDatabaseError
from repro.query import parse_query
from repro.workloads import update_stream

_R_QUERY = "EXISTS x, y. R(x, 'p', y)"
_S_QUERY = "EXISTS x, y. S(x, 'q', y)"


def _two_relation_instance():
    database = Database(
        [
            fact("R", 1, "p", "a"),
            fact("R", 1, "p", "b"),
            fact("R", 2, "p", "c"),
            fact("S", 1, "q", "x"),
            fact("S", 2, "q", "y"),
            fact("S", 2, "q", "z"),
        ]
    )
    keys = PrimaryKeySet.from_dict({"R": [1], "S": [1]})
    return database, keys


@pytest.fixture
def warm_pool():
    database, keys = _two_relation_instance()
    pool = SolverPool()
    pool.register("live", database, keys)
    pool.run(
        [
            CountJob(database="live", query=_R_QUERY),
            CountJob(database="live", query=_S_QUERY),
        ]
    )
    return pool


class TestRegisterFreezes:
    def test_registered_databases_are_frozen(self):
        database, keys = _two_relation_instance()
        pool = SolverPool()
        pool.register("live", database, keys)
        assert database.is_frozen
        with pytest.raises(FrozenDatabaseError):
            database.add(fact("R", 9, "p", "zz"))

    def test_equal_snapshots_share_cache_entries_across_names(self):
        database, keys = _two_relation_instance()
        twin = Database(database.facts())
        pool = SolverPool()
        pool.register("first", database, keys)
        pool.register("second", twin, keys)
        cold = pool.run_job(CountJob(database="first", query=_R_QUERY))
        warm = pool.run_job(CountJob(database="second", query=_R_QUERY))
        assert "selectors" in cold.cache_misses
        assert "selectors" in warm.cache_hits
        assert "decomposition" in warm.cache_hits


class TestApplyDelta:
    def test_unknown_name_raises(self):
        with pytest.raises(EngineError, match="unknown database"):
            SolverPool().apply_delta("ghost", Delta())

    def test_delta_invalidates_only_touched_blocks_entries(self, warm_pool):
        # The delta touches two S blocks; the R-query's selector entry pins
        # only R blocks and must survive (migrated), while the S-query's
        # entry must be dropped and recomputed.
        delta = Delta(
            inserted=[fact("S", 1, "q", "fresh")],
            deleted=[fact("S", 2, "q", "z")],
        )
        report = warm_pool.apply_delta("live", delta)
        assert report.touched_blocks == 2
        assert report.selectors_migrated == 1  # the R entry
        assert report.selectors_dropped == 1  # the S entry
        assert report.selectors_kept == 0
        assert report.blocks_before == report.blocks_after == 4

        recomputed_before = warm_pool.selector_recomputations
        r_result = warm_pool.run_job(CountJob(database="live", query=_R_QUERY))
        s_result = warm_pool.run_job(CountJob(database="live", query=_S_QUERY))
        assert "selectors" in r_result.cache_hits  # migrated, still warm
        assert "selectors" in s_result.cache_misses  # dropped, recomputed
        assert warm_pool.selector_recomputations == recomputed_before + 1

    def test_insert_into_queried_relation_drops_that_entry(self, warm_pool):
        # Inserts can create certificates anywhere in the relation, even in
        # a brand-new block no selector pins yet.
        delta = Delta(inserted=[fact("R", 99, "p", "new-block")])
        report = warm_pool.apply_delta("live", delta)
        assert report.selectors_dropped == 1  # the R entry
        assert report.selectors_migrated == 1  # the S entry
        r_result = warm_pool.run_job(CountJob(database="live", query=_R_QUERY))
        assert "selectors" in r_result.cache_misses

    def test_counts_after_delta_match_cold_sequential_solver(self, warm_pool):
        delta = Delta(
            inserted=[fact("R", 3, "p", "d"), fact("S", 7, "q", "w")],
            deleted=[fact("R", 1, "p", "b")],
        )
        warm_pool.apply_delta("live", delta)
        database, keys = warm_pool.lookup("live")
        solver = CQASolver(Database(database.facts()), keys)
        for query in (_R_QUERY, _S_QUERY):
            pooled = warm_pool.run_job(CountJob(database="live", query=query))
            expected = solver.count(parse_query(query))
            assert (pooled.satisfying, pooled.total) == (
                expected.satisfying,
                expected.total,
            )

    def test_migrated_entries_survive_index_shifts(self, warm_pool):
        # Deleting the whole first S block shifts every later block's index;
        # the R entry must be remapped, not stale.
        delta = Delta(deleted=[fact("S", 1, "q", "x")])
        report = warm_pool.apply_delta("live", delta)
        assert report.blocks_after == report.blocks_before - 1
        assert report.selectors_migrated == 1
        r_result = warm_pool.run_job(CountJob(database="live", query=_R_QUERY))
        assert "selectors" in r_result.cache_hits
        database, keys = warm_pool.lookup("live")
        expected = CQASolver(Database(database.facts()), keys).count(
            parse_query(_R_QUERY)
        )
        assert (r_result.satisfying, r_result.total) == (
            expected.satisfying,
            expected.total,
        )

    def test_noop_delta_migrates_everything(self, warm_pool):
        report = warm_pool.apply_delta(
            "live", Delta(deleted=[fact("R", 555, "p", "ghost")])
        )
        assert report.inserted == report.deleted == 0
        assert report.selectors_dropped == 0
        assert report.selectors_migrated == 2
        assert report.old_digest == report.new_digest


class TestPersistentSelectorCache:
    def _jobs(self):
        return [
            CountJob(database="live", query=_R_QUERY),
            CountJob(database="live", query=_S_QUERY),
        ]

    def test_restart_answers_with_zero_selector_recomputations(self, tmp_path):
        database, keys = _two_relation_instance()
        first = SolverPool(persist_dir=tmp_path)
        first.register("live", database, keys)
        baseline = first.run(self._jobs())
        assert first.selector_recomputations == 2

        restarted = SolverPool(persist_dir=tmp_path)
        restarted.register("live", Database(database.facts()), keys)
        replay = restarted.run(self._jobs())
        assert restarted.selector_recomputations == 0
        assert replay.counts() == baseline.counts()
        assert all(
            "selectors-disk" in result.cache_hits for result in replay.results
        )
        assert replay.cache_stats["selectors-disk"]["hits"] == 2

    def test_disk_entries_are_content_addressed_not_name_addressed(self, tmp_path):
        database, keys = _two_relation_instance()
        first = SolverPool(persist_dir=tmp_path)
        first.register("some-name", database, keys)
        first.run_job(CountJob(database="some-name", query=_R_QUERY))

        restarted = SolverPool(persist_dir=tmp_path)
        restarted.register("other-name", Database(database.facts()), keys)
        result = restarted.run_job(CountJob(database="other-name", query=_R_QUERY))
        assert "selectors-disk" in result.cache_hits

    def test_corrupt_entries_are_tolerated_and_cleaned(self, tmp_path):
        database, keys = _two_relation_instance()
        pool = SolverPool(persist_dir=tmp_path)
        pool.register("live", database, keys)
        pool.run(self._jobs())
        entries = sorted(tmp_path.glob("*.sel"))
        assert len(entries) == 2
        entries[0].write_bytes(b"RSEL" + os.urandom(60))  # checksum breaks
        entries[1].write_bytes(b"garbage")  # magic breaks

        restarted = SolverPool(persist_dir=tmp_path)
        restarted.register("live", Database(database.facts()), keys)
        replay = restarted.run(self._jobs())
        assert restarted.selector_recomputations == 2  # recomputed, not crashed
        assert replay.cache_stats["selectors"]["misses"] == 2
        stats = restarted.cache_stats()["selectors-disk"]
        assert stats["corrupt"] == 2
        # ... and the rewritten entries serve the next restart again.
        third = SolverPool(persist_dir=tmp_path)
        third.register("live", Database(database.facts()), keys)
        third.run(self._jobs())
        assert third.selector_recomputations == 0

    def test_version_skew_reads_as_a_miss(self, tmp_path):
        cache = SelectorDiskCache(tmp_path)
        database, keys = _two_relation_instance()
        pool = SolverPool(persist_dir=tmp_path)
        pool.register("live", database, keys)
        pool.run_job(CountJob(database="live", query=_R_QUERY))
        (entry,) = tmp_path.glob("*.sel")
        blob = entry.read_bytes()
        entry.write_bytes(
            blob[:4] + (FORMAT_VERSION + 1).to_bytes(4, "big") + blob[8:]
        )
        token = pool.snapshot_token("live")
        assert cache.load(token, _R_QUERY, (), ()) is None

    def test_worker_processes_share_the_persistent_cache(self, tmp_path):
        # Regression: persist_dir must reach the worker pools, or pooled
        # runs silently never touch the disk cache.
        database, keys = _two_relation_instance()
        first = SolverPool(persist_dir=tmp_path)
        first.register("live", database, keys)
        first.run(self._jobs(), workers=2)
        assert SelectorDiskCache(tmp_path).entry_count() == 2

        restarted = SolverPool(persist_dir=tmp_path)
        restarted.register("live", Database(database.facts()), keys)
        replay = restarted.run(self._jobs(), workers=2)
        assert all(
            "selectors-disk" in result.cache_hits for result in replay.results
        )

    def test_store_failure_is_nonfatal(self, tmp_path, monkeypatch):
        database, keys = _two_relation_instance()
        pool = SolverPool(persist_dir=tmp_path)
        pool.register("live", database, keys)
        monkeypatch.setattr(os, "replace", _raise_oserror)
        result = pool.run_job(CountJob(database="live", query=_R_QUERY))
        assert result.satisfying >= 0  # the count itself must succeed


def _raise_oserror(*_args, **_kwargs):
    raise OSError("disk full")


class TestUpdateJobsAndStreams:
    def test_update_job_json_round_trip(self):
        job = UpdateJob(
            database="live",
            delta=Delta(inserted=[fact("R", 1, "p", "a")]),
            label="feed",
        )
        assert UpdateJob.from_json(job.to_json()) == job

    def test_update_job_rejects_malformed_payloads(self):
        with pytest.raises(BatchSpecError):
            UpdateJob.from_json({"insert": []})
        with pytest.raises(BatchSpecError):
            UpdateJob.from_json({"update": "live", "surprise": 1})
        with pytest.raises(BatchSpecError):
            UpdateJob(database="", delta=Delta())
        with pytest.raises(BatchSpecError):
            UpdateJob(database="live", delta="not a delta")  # type: ignore[arg-type]

    def test_run_stream_interleaves_updates_in_order(self):
        database, keys = _two_relation_instance()
        pool = SolverPool()
        pool.register("live", database, keys)
        job = CountJob(database="live", query=_R_QUERY)
        update = UpdateJob(
            database="live", delta=Delta(inserted=[fact("R", 1, "p", "zz")])
        )
        report = pool.run_stream([job, update, job])
        assert len(report.results) == 2
        assert len(report.updates) == 1
        assert report.updates[0].index == 1
        before, after = report.results
        assert after.total > before.total  # the insert grew a block
        json.dumps(report.to_json())  # report stays JSON-able

    def test_run_stream_rejects_foreign_items(self):
        pool = SolverPool()
        with pytest.raises(EngineError, match="stream items"):
            pool.run_stream(["not a job"])  # type: ignore[list-item]

    def test_run_stream_pooled_segments_match_sequential(self):
        databases, stream = update_stream(jobs=12, update_every=4, seed=9)
        sequential = SolverPool()
        pooled = SolverPool()
        for name, (database, keys) in databases.items():
            sequential.register(name, Database(database.facts()), keys)
            pooled.register(name, Database(database.facts()), keys)
        first = sequential.run_stream(stream)
        second = pooled.run_stream(stream, workers=2)
        assert first.counts() == second.counts()

    def test_update_stream_is_deterministic(self):
        _, first = update_stream(jobs=10, update_every=3, seed=21)
        _, second = update_stream(jobs=10, update_every=3, seed=21)
        assert first == second
        assert any(isinstance(item, UpdateJob) for item in first)

    def test_job_file_update_entries(self, tmp_path):
        database, keys = _two_relation_instance()
        document = {
            "databases": {"live": database_to_json(database, keys)},
            "jobs": [
                {"database": "live", "query": _R_QUERY},
                {
                    "update": "live",
                    "insert": [{"relation": "R", "arguments": [1, "p", "zz"]}],
                },
                {"database": "live", "query": _R_QUERY},
            ],
        }
        databases, items = parse_job_document(document)
        assert isinstance(items[1], UpdateJob)
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps(document))
        assert [type(item) for item in load_job_file(path)[1]] == [
            CountJob,
            UpdateJob,
            CountJob,
        ]

    def test_job_file_update_referencing_unknown_database_fails(self):
        database, keys = _two_relation_instance()
        document = {
            "databases": {"live": database_to_json(database, keys)},
            "jobs": [{"update": "ghost", "insert": []}],
        }
        with pytest.raises(BatchSpecError, match="unknown database"):
            parse_job_document(document)


class TestUpdateCli:
    @pytest.fixture
    def instance_json(self, tmp_path):
        database, keys = _two_relation_instance()
        path = tmp_path / "db.json"
        path.write_text(json.dumps(database_to_json(database, keys)))
        return path

    def test_update_command_writes_next_snapshot(self, tmp_path, instance_json, capsys):
        delta_path = tmp_path / "delta.json"
        delta_path.write_text(
            json.dumps(
                {
                    "insert": [{"relation": "R", "arguments": [5, "p", "new"]}],
                    "delete": [{"relation": "S", "arguments": [1, "q", "x"]}],
                }
            )
        )
        output = tmp_path / "next.json"
        code = main(
            [
                "update",
                "--json",
                str(instance_json),
                "--delta",
                str(delta_path),
                "--output",
                str(output),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "facts: 6 -> 6" in printed
        assert "inserted: 1" in printed and "deleted: 1" in printed
        assert "touched blocks: 2" in printed
        updated, keys = __import__("repro.db", fromlist=["load_json"]).load_json(output)
        assert fact("R", 5, "p", "new") in updated
        assert fact("S", 1, "q", "x") not in updated
        assert keys.has_key("R") and keys.has_key("S")

    def test_update_command_rejects_bad_delta_files(self, tmp_path, instance_json, capsys):
        missing = main(
            [
                "update",
                "--json",
                str(instance_json),
                "--delta",
                str(tmp_path / "missing.json"),
                "--output",
                str(tmp_path / "out.json"),
            ]
        )
        assert missing == 2
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert (
            main(
                [
                    "update",
                    "--json",
                    str(instance_json),
                    "--delta",
                    str(bad),
                    "--output",
                    str(tmp_path / "out.json"),
                ]
            )
            == 2
        )
        malformed = tmp_path / "malformed.json"
        malformed.write_text(json.dumps({"surprise": []}))
        assert (
            main(
                [
                    "update",
                    "--json",
                    str(instance_json),
                    "--delta",
                    str(malformed),
                    "--output",
                    str(tmp_path / "out.json"),
                ]
            )
            == 2
        )
        assert capsys.readouterr().err.count("update:") == 3

    def test_batch_command_runs_update_entries(self, tmp_path, capsys):
        database, keys = _two_relation_instance()
        jobs_path = tmp_path / "jobs.json"
        jobs_path.write_text(
            json.dumps(
                {
                    "databases": {"live": database_to_json(database, keys)},
                    "jobs": [
                        {"database": "live", "query": _R_QUERY},
                        {
                            "update": "live",
                            "insert": [
                                {"relation": "R", "arguments": [1, "p", "zz"]}
                            ],
                            "label": "grow",
                        },
                        {"database": "live", "query": _R_QUERY},
                    ],
                }
            )
        )
        assert main(["batch", "--jobs", str(jobs_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["jobs"] == 2
        assert payload["summary"]["updates"] == 1
        assert payload["updates"][0]["label"] == "grow"
        first, second = payload["jobs"]
        assert second["total"] > first["total"]

    def test_batch_command_persist_cache_keeps_restarts_warm(self, tmp_path, capsys):
        database, keys = _two_relation_instance()
        jobs_path = tmp_path / "jobs.json"
        jobs_path.write_text(
            json.dumps(
                {
                    "databases": {"live": database_to_json(database, keys)},
                    "jobs": [{"database": "live", "query": _R_QUERY}],
                }
            )
        )
        cache_dir = tmp_path / "cache"
        for _ in range(2):
            assert (
                main(
                    [
                        "batch",
                        "--jobs",
                        str(jobs_path),
                        "--persist-cache",
                        str(cache_dir),
                    ]
                )
                == 0
            )
        first, second = [
            json.loads(line) for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert "selectors" in first["jobs"][0]["cache_misses"]
        assert "selectors-disk" in second["jobs"][0]["cache_hits"]
        assert first["jobs"][0]["satisfying"] == second["jobs"][0]["satisfying"]
