"""Tests for range queries across engine, server, HTTP and CLI.

What is pinned here:

* a ``CountJob`` with ``as_of_range`` round-trips through JSON, rejects
  malformed pairs loudly, and expands to per-version ``as_of`` jobs whose
  derived seeds are untouched — expansion is bit-identical to writing the
  N jobs by hand;
* ``SolverPool.run`` expands ranges in place (indices shift exactly as a
  hand-expanded batch would) and ``run_stream`` expands each range at its
  stream position, so endpoints resolve against the chain state created
  by updates *earlier in the same stream*;
* ``run_range`` answers one version per outcome in range order, respects
  ``first_index``, and reports a version whose snapshot cannot be
  materialised (compacted ancestors) **in band** as a
  :class:`RangeFailure` instead of poisoning the rest of the range;
* the shared walk feeds the ordinary token-keyed caches: a warm store
  recomputes nothing and repeated-version ranges coalesce
  (``coalesced_materialisations`` in ``cache_stats()``);
* the served path: ``AsyncServer.run_range`` is bit-identical to the
  in-process pool, ``POST /range`` streams chunked JSON-lines with
  failures in band and a terminating summary, whole-range backpressure
  answers **429 with Retry-After** exactly like ``/stream``, and the
  keep-alive connection survives the exchange;
* the ``repro range`` command and ``repro history --json`` round-trip
  through the CLI.
"""

import asyncio
import json
from dataclasses import replace

import pytest

from repro.cli import main
from repro.db import Database, Delta, PrimaryKeySet, database_to_json, fact
from repro.engine import CountJob, RangeFailure, SolverPool, UpdateJob
from repro.errors import BatchSpecError, EngineError, LineageError
from repro.server import AsyncServer, HttpServer, ServeClient
from repro.server import wire
from repro.workloads import range_workload

_R_QUERY = "EXISTS x, y. R(x, 'v1', y)"


def _versioned_instance():
    """A small instance plus two deltas: three recorded versions."""
    database = Database(
        [
            fact("R", 1, "v1", "a"),
            fact("R", 1, "v2", "b"),
            fact("R", 2, "v1", "c"),
            fact("S", 1, "v1", "d"),
        ]
    )
    keys = PrimaryKeySet.from_dict({"R": [1], "S": [1]})
    first = Delta(inserted=[fact("R", 3, "v1", "e")])
    second = Delta(deleted=[fact("R", 1, "v2", "b")])
    return database, keys, first, second


def _versioned_pool(**pool_kwargs):
    database, keys, first, second = _versioned_instance()
    pool = SolverPool(**pool_kwargs)
    pool.register("live", database, keys)
    pool.apply_delta("live", first)
    pool.apply_delta("live", second)
    return pool, database, keys


def _range_job(**extra):
    return CountJob(database="live", query=_R_QUERY, **extra)


class TestJobValidation:
    def test_as_of_range_round_trips_through_json(self):
        by_digest = _range_job(as_of_range=("a" * 64, "b" * 64))
        assert CountJob.from_json(by_digest.to_json()) == by_digest
        assert by_digest.to_json()["as_of_range"] == ["a" * 64, "b" * 64]
        mixed = _range_job(as_of_range=(-4, "a" * 64))
        assert CountJob.from_json(mixed.to_json()) == mixed
        # JSON lists normalise back to the tuple form on the way in.
        assert CountJob.from_json(
            {**mixed.to_json(), "as_of_range": [-4, "a" * 64]}
        ) == mixed
        assert "as_of_range" not in _range_job().to_json()

    def test_bad_ranges_are_rejected(self):
        with pytest.raises(BatchSpecError, match="mutually exclusive"):
            _range_job(as_of="a" * 64, as_of_range=(-1, 0))
        with pytest.raises(BatchSpecError, match="pair"):
            _range_job(as_of_range=(-1, 0, 1))
        with pytest.raises(BatchSpecError, match="pair"):
            _range_job(as_of_range="aa..bb")
        with pytest.raises(BatchSpecError, match="<= 0"):
            _range_job(as_of_range=(1, 2))
        with pytest.raises(BatchSpecError, match="at least 8"):
            _range_job(as_of_range=("abc", 0))

    def test_expansion_does_not_perturb_derived_seeds(self):
        pool, _, _ = _versioned_pool()
        ranged = _range_job(method="fpras", as_of_range=(-2, 0))
        for expanded in pool.expand_range(ranged):
            assert expanded.as_of_range is None
            assert expanded.effective_seed(7) == _range_job(
                method="fpras"
            ).effective_seed(7)


class TestPoolRange:
    def test_expansion_matches_the_recorded_chain_both_directions(self):
        pool, _, _ = _versioned_pool()
        digests = [record.digest for record in pool.lineage("live")]
        ascending = pool.expand_range(_range_job(as_of_range=(-2, 0)))
        assert [job.as_of for job in ascending] == digests
        descending = pool.expand_range(_range_job(as_of_range=(0, -2)))
        assert [job.as_of for job in descending] == digests[::-1]
        by_digest = pool.expand_range(
            _range_job(as_of_range=(digests[0], digests[1]))
        )
        assert [job.as_of for job in by_digest] == digests[:2]

    def test_run_range_is_bit_identical_to_independent_as_of_jobs(self):
        pool, database, keys = _versioned_pool()
        ranged = _range_job(method="certificate", as_of_range=(-2, 0))
        outcomes = pool.run_range(ranged, first_index=5)
        assert [outcome.index for outcome in outcomes] == [5, 6, 7]

        fresh, _, _ = _versioned_pool()
        for offset, expanded in enumerate(fresh.expand_range(ranged)):
            independent = fresh.run_job(expanded, index=5 + offset)
            assert outcomes[offset].count_fields() == independent.count_fields()
            assert outcomes[offset].job.as_of == independent.job.as_of

    def test_batch_runs_expand_ranges_in_place(self):
        pool, _, _ = _versioned_pool()
        jobs = [
            _range_job(method="certificate"),
            _range_job(method="certificate", as_of_range=(-2, 0)),
            _range_job(method="certificate", label="after"),
        ]
        report = pool.run(jobs)
        # One range over three versions: indices shift by two.
        assert [result.index for result in report.results] == [0, 1, 2, 3, 4]
        assert report.results[4].job.label == "after"

        hand = _versioned_pool()[0]
        expanded = [jobs[0], *hand.expand_range(jobs[1]), jobs[2]]
        hand_report = hand.run(expanded)
        assert [r.count_fields() for r in report.results] == [
            r.count_fields() for r in hand_report.results
        ]
        assert [r.job.as_of for r in report.results] == [
            r.job.as_of for r in hand_report.results
        ]

    def test_direct_run_of_a_range_job_is_rejected(self):
        pool, _, _ = _versioned_pool()
        with pytest.raises(EngineError, match="cannot run directly"):
            pool.run_job(_range_job(as_of_range=(-1, 0)))

    def test_streams_expand_ranges_against_their_position(self):
        """A range can reference versions created earlier in the stream."""
        database, keys, first, second = _versioned_instance()
        stream = [
            _range_job(method="certificate"),
            UpdateJob(database="live", delta=first),
            UpdateJob(database="live", delta=second),
            # At this position the chain has three versions; up front it
            # had one — expansion must happen at the stream position.
            _range_job(method="certificate", as_of_range=(-2, 0)),
        ]
        pool = SolverPool()
        pool.register("live", database, keys)
        report = pool.run_stream(stream)
        assert [result.index for result in report.results] == [0, 3, 4, 5]
        assert [update.index for update in report.updates] == [1, 2]

        # Hand-expanded equivalent: replay the updates on a scratch pool
        # to resolve the range, then run the flat stream.
        scratch = SolverPool()
        scratch.register("live", Database(database.facts()), keys)
        scratch.apply_delta("live", first)
        scratch.apply_delta("live", second)
        flat = [
            stream[0], stream[1], stream[2],
            *scratch.expand_range(stream[3]),
        ]
        fresh = SolverPool()
        fresh.register("live", Database(database.facts()), keys)
        hand_report = fresh.run_stream(flat)
        assert [r.count_fields() for r in report.results] == [
            r.count_fields() for r in hand_report.results
        ]
        assert [r.job.as_of for r in report.results] == [
            r.job.as_of for r in hand_report.results
        ]

    def test_compacted_ancestors_fail_in_band(self, tmp_path):
        pool, _, keys = _versioned_pool(persist_dir=tmp_path)
        with pytest.warns(UserWarning, match="compacted"):
            assert pool.checkpoint("live", compact=True) is not None
        head, _ = pool.lookup("live")
        # A *restarted* pool: the pre-checkpoint snapshots exist neither
        # in memory nor in the store, and their deltas were released.
        restarted = SolverPool(persist_dir=tmp_path)
        restarted.register("live", Database(head.facts()), keys)
        outcomes = restarted.run_range(_range_job(as_of_range=(-2, 0)))
        assert [type(outcome) for outcome in outcomes] == [
            RangeFailure, RangeFailure, type(outcomes[2])
        ]
        for index, outcome in enumerate(outcomes[:2]):
            assert outcome.index == index
            assert isinstance(outcome.error, LineageError)
        assert outcomes[2].index == 2
        assert outcomes[2].total > 0

    def test_shared_walk_feeds_the_caches_and_coalesces(self, tmp_path):
        pool, _, _ = _versioned_pool(persist_dir=tmp_path)
        first_pass = pool.run_range(
            _range_job(method="certificate", as_of_range=(-2, 0))
        )
        assert all(not isinstance(o, RangeFailure) for o in first_pass)
        # The same range again: every materialisation coalesces onto the
        # already-resolved snapshots and the warm pass recomputes nothing.
        before = pool.selector_recomputations
        second_pass = pool.run_range(
            _range_job(method="certificate", as_of_range=(-2, 0))
        )
        assert pool.selector_recomputations == before
        assert pool.cache_stats().get("coalesced_materialisations", 0) > 0
        assert [r.count_fields() for r in first_pass] == [
            r.count_fields() for r in second_pass
        ]


class TestRangeWorkload:
    def test_streamed_ranges_are_bit_identical_to_hand_expansion(self):
        registry, stream = range_workload(jobs=14, seed=2)
        ranged = [
            item
            for item in stream
            if isinstance(item, CountJob) and item.as_of_range is not None
        ]
        assert ranged, "the workload must emit range reads"

        def build_pool():
            pool = SolverPool()
            for name, (database, keys) in registry.items():
                pool.register(name, Database(database.facts()), keys)
            return pool

        report = build_pool().run_stream(stream)

        # Hand expansion: replay the stream's updates on a scratch pool,
        # resolving each range at its own position.
        scratch = build_pool()
        flat = []
        for item in stream:
            if isinstance(item, UpdateJob):
                scratch.apply_delta(item.database, item.delta)
                flat.append(item)
            elif item.as_of_range is not None:
                flat.extend(scratch.expand_range(item))
            else:
                flat.append(item)
        hand_report = build_pool().run_stream(flat)

        assert [r.count_fields() for r in report.results] == [
            r.count_fields() for r in hand_report.results
        ]
        assert [r.job.as_of for r in report.results] == [
            r.job.as_of for r in hand_report.results
        ]
        assert [u.index for u in report.updates] == [
            u.index for u in hand_report.updates
        ]


class TestServedRange:
    def test_server_range_is_bit_identical_to_the_pool(self):
        database, keys, first, second = _versioned_instance()
        ranged = _range_job(method="certificate", as_of_range=(-2, 0))

        async def run():
            server = AsyncServer(shards=1, queue_limit=8)
            server.register("live", database, keys)
            async with server:
                await server.submit(UpdateJob(database="live", delta=first), 0)
                await server.submit(UpdateJob(database="live", delta=second), 1)
                return await server.run_range(ranged, 2)

        served = asyncio.run(run())
        pool, _, _ = _versioned_pool()
        direct = pool.run_range(ranged, first_index=2)
        assert [r.index for r in served] == [2, 3, 4]
        assert [r.count_fields() for r in served] == [
            r.count_fields() for r in direct
        ]
        assert [r.job.as_of for r in served] == [r.job.as_of for r in direct]

    def test_plain_jobs_are_rejected_by_run_range(self):
        database, keys, _, _ = _versioned_instance()

        async def run():
            server = AsyncServer(shards=1, queue_limit=8)
            server.register("live", database, keys)
            async with server:
                with pytest.raises(EngineError, match="as_of_range"):
                    await server.run_range(_range_job(), 0)

        asyncio.run(run())

    def test_http_range_streams_results_with_failures_in_band(self, tmp_path):
        # A compacted store: the two pre-checkpoint versions are
        # unreachable, the head still answers — in band, over the wire.
        pool, database, keys = _versioned_pool(persist_dir=tmp_path)
        with pytest.warns(UserWarning, match="compacted"):
            pool.checkpoint("live", compact=True)
        head, _ = pool.lookup("live")

        async def run():
            server = AsyncServer(shards=1, persist_dir=tmp_path)
            server.register("live", Database(head.facts()), keys)
            async with server:
                async with HttpServer(server) as front:
                    async with ServeClient(front.host, front.port) as client:
                        job = _range_job(as_of_range=(-2, 0)).to_json()
                        documents = [doc async for doc in client.range(job)]
                        summary = client.last_stream_summary
                        # The keep-alive connection survived the
                        # chunked exchange.
                        health = await client.health()
            return documents, summary, health

        documents, summary, health = asyncio.run(run())
        assert summary == {"results": 1, "failures": 2}
        assert health["status"] == "ok"
        failures = [doc for doc in documents if "error" in doc]
        results = [doc for doc in documents if "error" not in doc]
        assert [f["index"] for f in failures] == [0, 1]
        assert all(f["status"] == 404 for f in failures)
        assert all(f["error"]["type"] == "LineageError" for f in failures)
        assert [r["index"] for r in results] == [2]
        assert results[0]["total"] > 0

    def test_full_queue_answers_429_for_the_whole_range(self):
        database, keys, first, _ = _versioned_instance()

        async def run():
            server = AsyncServer(shards=1, queue_limit=1, policy="reject")
            server.register("live", database, keys)
            async with server:
                await server.submit(UpdateJob(database="live", delta=first), 0)
                async with HttpServer(server) as front:
                    await server._slots.acquire()
                    try:
                        reader, writer = await asyncio.open_connection(
                            front.host, front.port
                        )
                        body = json.dumps(
                            _range_job(as_of_range=(-1, 0)).to_json()
                        ).encode()
                        writer.write(
                            wire.render_request(
                                "POST", "/range",
                                f"{front.host}:{front.port}", body,
                            )
                        )
                        await writer.drain()
                        response = await wire.read_response(reader)
                        writer.close()
                        await writer.wait_closed()
                    finally:
                        server._slots.release()
                    assert response.status == 429
                    assert wire.parse_retry_after(response.headers) is not None
                    assert response.json()["error"]["type"] == (
                        "ServerOverloadedError"
                    )
                    assert front.rejected == 1

        asyncio.run(run())


class TestRangeCLI:
    @pytest.fixture
    def instance_files(self, tmp_path):
        database, keys, first, second = _versioned_instance()
        db_path = tmp_path / "db.json"
        db_path.write_text(json.dumps(database_to_json(database, keys)))
        jobs = {
            "databases": {"live": {"path": "db.json"}},
            "jobs": [
                {"database": "live", "query": _R_QUERY},
                {"update": "live", **first.to_json()},
                {"update": "live", **second.to_json()},
            ],
        }
        jobs_path = tmp_path / "jobs.json"
        jobs_path.write_text(json.dumps(jobs))
        head = database.apply_delta(first).apply_delta(second)
        head_path = tmp_path / "head.json"
        head_path.write_text(json.dumps(database_to_json(head, keys)))
        return tmp_path, head_path, jobs_path

    def test_range_command_round_trip(self, instance_files, capsys):
        tmp_path, head_path, jobs_path = instance_files
        cache = tmp_path / "cache"
        assert main(["batch", "--jobs", str(jobs_path),
                     "--persist-cache", str(cache)]) == 0
        baseline = json.loads(capsys.readouterr().out)["jobs"][0]

        assert main([
            "range", "live", "--from", "-2", "--to", "0",
            "--json", str(head_path), "--query", _R_QUERY,
            "--persist-cache", str(cache),
        ]) == 0
        captured = capsys.readouterr()
        lines = [json.loads(line) for line in captured.out.strip().splitlines()]
        assert [line["index"] for line in lines] == [0, 1, 2]
        digests = [line["job"]["as_of"] for line in lines]
        assert len(set(digests)) == 3
        # The oldest version in the range is the pre-update root.
        assert lines[0]["satisfying"] == baseline["satisfying"]
        assert "3 result(s), 0 failure(s) over 3 version(s)" in captured.err

    def test_range_without_a_catalog_exits_2(self, instance_files, capsys):
        tmp_path, head_path, _ = instance_files
        assert main([
            "range", "ghost", "--from", "-1", "--to", "0",
            "--json", str(head_path), "--query", _R_QUERY,
            "--persist-cache", str(tmp_path / "empty"),
        ]) == 2
        assert "no recorded lineage" in capsys.readouterr().err

    def test_history_json_document(self, instance_files, capsys):
        tmp_path, _, jobs_path = instance_files
        cache = tmp_path / "cache"
        assert main(["batch", "--jobs", str(jobs_path),
                     "--persist-cache", str(cache)]) == 0
        capsys.readouterr()

        assert main(["history", "live", "--persist-cache", str(cache),
                     "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["name"] == "live"
        assert document["versions"] == 3
        assert [record["kind"] for record in document["records"]] == [
            "register", "delta", "delta",
        ]
        assert document["head"] == document["records"][-1]["digest"]
        assert document["elided"] == 0 and document["compacted"] == 0

        assert main(["history", "live", "--persist-cache", str(cache),
                     "--json", "--json-lines"]) == 2
        assert "not both" in capsys.readouterr().err
