"""Tests for on-disk cache GC and decomposition persistence.

What is pinned here:

* age- and count-bounded garbage collection evicts exactly the old/cold
  entries, keeps the newest (and recently *loaded*) ones, and never
  corrupts a surviving entry;
* GC evictions surface in the cache's ``stats()`` and through
  :meth:`SolverPool.cache_stats` / :meth:`SolverPool.collect_garbage`;
* **pinning** (regression): entries of the *live* snapshot of a
  registered name — the lineage head — are never evicted, however
  aggressive the bounds, so ``collect_garbage()`` can never force
  recomputation of active state.  Entries of ancestors (pre-delta
  snapshots) remain evictable;
* block decompositions persist alongside selectors: a cold restart
  against a warm ``persist_dir`` re-registers databases with **zero**
  decomposition recomputations, including snapshots produced by deltas.
"""

import os
import time

import pytest

from repro.db import BlockDecomposition, Delta, Fact
from repro.engine import (
    CountJob,
    DecompositionDiskCache,
    SelectorDiskCache,
    SolverPool,
)
from repro.query import parse_query
from repro.repairs import prepare_certificates
from repro.workloads import employee_example


def _employee_state():
    scenario = employee_example()
    return scenario.database, scenario.keys


def _queries(count):
    return [f"EXISTS x. Employee({index + 1}, x, 'HR')" for index in range(count)]


def _fill_selector_cache(directory, count):
    """Store ``count`` entries with strictly increasing mtimes; return keys."""
    database, keys = _employee_state()
    token = (database.content_digest(), keys.content_digest())
    cache = SelectorDiskCache(directory)
    stored = []
    for offset, query in enumerate(_queries(count)):
        prepared = prepare_certificates(database, keys, parse_query(query), ())
        assert cache.store(token, query, (), (), prepared)
        path = directory / cache.entry_name(token, query, (), ())
        stamp = time.time() - (count - offset) * 1000
        os.utime(path, (stamp, stamp))
        stored.append((token, query))
    return cache, stored


class TestGarbageCollection:
    def test_count_bound_keeps_the_newest_entries(self, tmp_path):
        cache, stored = _fill_selector_cache(tmp_path, count=5)
        evicted = cache.collect_garbage(max_entries=2)
        assert evicted == 3
        assert cache.entry_count() == 2
        assert cache.gc_evictions == 3
        for token, query in stored[:3]:  # the three oldest are gone
            assert cache.load(token, query, (), ()) is None
        for token, query in stored[3:]:  # the two newest survive, intact
            assert cache.load(token, query, (), ()) is not None

    def test_age_bound_evicts_only_expired_entries(self, tmp_path):
        cache, stored = _fill_selector_cache(tmp_path, count=4)
        # Entries are 4000, 3000, 2000 and 1000 seconds old.
        evicted = cache.collect_garbage(max_age_seconds=2500)
        assert evicted == 2
        assert cache.load(stored[0][0], stored[0][1], (), ()) is None
        assert cache.load(stored[3][0], stored[3][1], (), ()) is not None
        assert cache.stats()["gc_evictions"] == 2

    def test_loads_refresh_recency(self, tmp_path):
        cache, stored = _fill_selector_cache(tmp_path, count=3)
        token, oldest_query = stored[0]
        assert cache.load(token, oldest_query, (), ()) is not None  # touch
        cache.collect_garbage(max_entries=1)
        # The touched entry is now the most recently used and survives.
        assert cache.load(token, oldest_query, (), ()) is not None
        assert cache.entry_count() == 1

    def test_gc_never_corrupts_survivors(self, tmp_path):
        cache, stored = _fill_selector_cache(tmp_path, count=6)
        cache.collect_garbage(max_entries=3)
        survivors = [
            cache.load(token, query, (), ()) for token, query in stored[3:]
        ]
        assert all(value is not None for value in survivors)
        assert cache.corrupt == 0

    def test_bounds_configured_at_construction_apply_on_restart(self, tmp_path):
        _fill_selector_cache(tmp_path, count=5)
        restarted = SelectorDiskCache(tmp_path, max_entries=2)
        assert restarted.entry_count() == 2
        assert restarted.gc_evictions == 3

    def test_unbounded_collect_is_a_noop(self, tmp_path):
        cache, _ = _fill_selector_cache(tmp_path, count=3)
        assert cache.collect_garbage() == 0
        assert cache.entry_count() == 3


class TestPoolGarbageCollection:
    def test_pool_collect_garbage_evicts_only_stale_snapshots(self, tmp_path):
        """Per-layer eviction counts cover ancestors, never the live head."""
        database, keys = _employee_state()
        pool = SolverPool(persist_dir=tmp_path)
        pool.register("emp", database, keys)
        pool.run([CountJob(database="emp", query=query) for query in _queries(3)])
        assert pool.cache_stats()["selectors-disk"]["entries"] == 3
        assert pool.cache_stats()["decomposition-disk"]["entries"] == 1

        # Move the head: the old snapshot's entries become ancestors...
        pool.apply_delta(
            "emp", Delta(inserted=[Fact("Employee", (9, "Zoe", "HR"))])
        )
        pool.run([CountJob(database="emp", query=query) for query in _queries(3)])
        # ...and only they are evictable; the new head's are pinned.  The
        # checkpoint-snapshot layer exists (and is GC'd) but is empty here.
        evicted = pool.collect_garbage(max_entries=0)
        assert evicted == {
            "selectors-disk": 3,
            "decomposition-disk": 1,
            "snapshots-disk": 0,
            "calibration-disk": 0,
        }
        stats = pool.cache_stats()
        assert stats["selectors-disk"]["gc_evictions"] == 3
        assert stats["decomposition-disk"]["gc_evictions"] == 1
        assert stats["selectors-disk"]["entries"] == 3  # the live head's
        assert stats["decomposition-disk"]["entries"] == 1

    def test_pool_without_persist_dir_has_nothing_to_collect(self):
        assert SolverPool().collect_garbage(max_entries=0) == {}

    def test_eviction_makes_restarts_cold_but_never_wrong(self, tmp_path):
        database, keys = _employee_state()
        jobs = [CountJob(database="emp", query=query) for query in _queries(2)]
        first = SolverPool(persist_dir=tmp_path)
        first.register("emp", database, keys)
        baseline = first.run(jobs)
        # An outside force (a standalone cache over the same directory has
        # no registered names, hence no pins) wipes every entry.
        assert SelectorDiskCache(tmp_path).collect_garbage(max_entries=0) == 2
        assert DecompositionDiskCache(tmp_path).collect_garbage(max_entries=0) == 1

        restarted = SolverPool(persist_dir=tmp_path)
        restarted.register("emp", database, keys)
        replay = restarted.run(jobs)
        assert replay.counts() == baseline.counts()  # cold, not wrong
        assert restarted.selector_recomputations == len(jobs)


class TestGcPinningProtectsLiveSnapshots:
    """Regression: GC used to evict entries of the *current* snapshot of a
    registered name, forcing recomputation of active state on the next
    load.  Live snapshot tokens (the lineage heads) are now pinned."""

    def test_live_entries_survive_aggressive_gc(self, tmp_path):
        database, keys = _employee_state()
        jobs = [CountJob(database="emp", query=query) for query in _queries(3)]
        pool = SolverPool(persist_dir=tmp_path)
        pool.register("emp", database, keys)
        baseline = pool.run(jobs)
        assert pool.selector_recomputations == 3

        evicted = pool.collect_garbage(max_entries=0, max_age_seconds=0)
        assert evicted == {
            "selectors-disk": 0,
            "decomposition-disk": 0,
            "snapshots-disk": 0,
            "calibration-disk": 0,
        }
        assert pool.cache_stats()["selectors-disk"]["entries"] == 3

        # A restarted pool still serves the whole workload warm.
        restarted = SolverPool(persist_dir=tmp_path)
        restarted.register("emp", database, keys)
        replay = restarted.run(jobs)
        assert replay.counts() == baseline.counts()
        assert restarted.selector_recomputations == 0
        assert restarted.decomposition_recomputations == 0

    def test_restart_with_bounds_defers_startup_gc_until_pinned(self, tmp_path):
        """Regression: a restarted pool's startup GC must not run before
        registration pins the live tokens — an eager collection would
        evict the very entries the restart is about to serve from."""
        database, keys = _employee_state()
        jobs = [CountJob(database="emp", query=query) for query in _queries(2)]
        first = SolverPool(persist_dir=tmp_path)
        first.register("emp", database, keys)
        baseline = first.run(jobs)

        restarted = SolverPool(
            persist_dir=tmp_path, persist_max_entries=0, persist_max_age=0.0
        )
        restarted.register("emp", database, keys)
        replay = restarted.run(jobs)
        assert restarted.selector_recomputations == 0
        assert restarted.decomposition_recomputations == 0
        assert replay.counts() == baseline.counts()

    def test_construction_bounds_respect_pins_once_registered(self, tmp_path):
        database, keys = _employee_state()
        jobs = [CountJob(database="emp", query=query) for query in _queries(3)]
        pool = SolverPool(
            persist_dir=tmp_path, persist_max_entries=1, persist_max_age=0.0
        )
        pool.register("emp", database, keys)
        pool.run(jobs)
        # The configured bounds would evict everything, but every entry
        # belongs to the live snapshot.
        assert pool.collect_garbage() == {
            "selectors-disk": 0,
            "decomposition-disk": 0,
            "snapshots-disk": 0,
            "calibration-disk": 0,
        }
        assert pool.cache_stats()["selectors-disk"]["entries"] == 3

    def test_delta_moves_the_pin_to_the_new_head(self, tmp_path):
        database, keys = _employee_state()
        jobs = [CountJob(database="emp", query=query) for query in _queries(2)]
        pool = SolverPool(persist_dir=tmp_path)
        pool.register("emp", database, keys)
        pool.run(jobs)
        pool.apply_delta(
            "emp", Delta(inserted=[Fact("Employee", (8, "Kim", "IT"))])
        )
        replay = pool.run(jobs)

        # Old-snapshot entries (2 selectors, 1 decomposition) are now
        # evictable; the new head's entries survive the harshest bounds.
        evicted = pool.collect_garbage(max_entries=0, max_age_seconds=0)
        assert evicted == {
            "selectors-disk": 2,
            "decomposition-disk": 1,
            "snapshots-disk": 0,
            "calibration-disk": 0,
        }
        restarted = SolverPool(persist_dir=tmp_path)
        restarted.register("emp", database.apply_delta(
            Delta(inserted=[Fact("Employee", (8, "Kim", "IT"))])
        ), keys)
        assert restarted.run(jobs).counts() == replay.counts()
        assert restarted.selector_recomputations == 0
        assert restarted.decomposition_recomputations == 0


class TestDecompositionPersistence:
    def test_roundtrip_rebuilds_equal_blocks(self, tmp_path):
        database, keys = _employee_state()
        token = (database.content_digest(), keys.content_digest())
        cache = DecompositionDiskCache(tmp_path)
        original = BlockDecomposition(database, keys)
        assert cache.store(token, original)
        loaded = cache.load(token, database, keys)
        assert loaded.blocks == original.blocks
        assert loaded.total_repairs() == original.total_repairs()
        assert loaded.database is database  # reattached, not unpickled

    def test_corrupt_entries_are_misses_and_removed(self, tmp_path):
        database, keys = _employee_state()
        token = (database.content_digest(), keys.content_digest())
        cache = DecompositionDiskCache(tmp_path)
        cache.store(token, BlockDecomposition(database, keys))
        path = tmp_path / cache.entry_name(token)
        path.write_bytes(path.read_bytes()[:-7] + b"garbage")
        assert cache.load(token, database, keys) is None
        assert cache.corrupt == 1
        assert not path.exists()

    def test_cold_restart_recomputes_no_decompositions(self, tmp_path):
        database, keys = _employee_state()
        jobs = [CountJob(database="emp", query=query) for query in _queries(2)]
        first = SolverPool(persist_dir=tmp_path)
        first.register("emp", database, keys)
        baseline = first.run(jobs)
        assert first.decomposition_recomputations == 1

        restarted = SolverPool(persist_dir=tmp_path)
        restarted.register("emp", database, keys)
        replay = restarted.run(jobs)
        assert restarted.decomposition_recomputations == 0
        assert restarted.selector_recomputations == 0
        assert replay.counts() == baseline.counts()
        assert "decomposition-disk" in replay.results[0].cache_hits

    def test_delta_derived_snapshots_restart_warm_too(self, tmp_path):
        database, keys = _employee_state()
        jobs = [CountJob(database="emp", query=query) for query in _queries(2)]
        delta = Delta(inserted=[Fact("Employee", (9, "Zoe", "HR"))])

        first = SolverPool(persist_dir=tmp_path)
        first.register("emp", database, keys)
        first.run(jobs)
        first.apply_delta("emp", delta)
        updated = first.run(jobs)
        # The incrementally-derived decomposition was persisted, so a
        # restart against the *updated* snapshot rebuilds nothing.
        restarted = SolverPool(persist_dir=tmp_path)
        restarted.register("emp", database.apply_delta(delta), keys)
        replay = restarted.run(jobs)
        assert restarted.decomposition_recomputations == 0
        assert replay.counts() == updated.counts()
