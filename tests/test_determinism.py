"""Determinism regressions: same seed ⇒ same sequence, same estimate.

The engine's bit-identical guarantee (sequential vs pooled batches) rests
on three determinism properties pinned here:

* seeded samplers draw identical repair sequences,
* seeded estimators (FPRAS, Karp–Luby) produce identical estimates,
* the canonical block ordering ``≺_{D,Σ}`` is a total order independent of
  fact insertion order, including for key values that mix constant types
  (regression pin for ``_key_sort_token`` in :mod:`repro.db.blocks`).
"""

from __future__ import annotations

import random

import pytest

from repro.core import CQASolver
from repro.core.solver import count_query
from repro.db import Database, PrimaryKeySet, fact
from repro.db.blocks import BlockDecomposition, _key_sort_token
from repro.query import parse_query
from repro.repairs import enumerate_repairs, sample_repair_choices
from repro.workloads import InconsistentDatabaseSpec, random_inconsistent_database

SPEC = InconsistentDatabaseSpec(
    relations={"R": 2, "S": 3},
    blocks_per_relation=6,
    conflict_rate=0.5,
    max_block_size=3,
    domain_size=6,
)
QUERY_TEXT = "EXISTS x. R(x, 'v1')"


@pytest.fixture
def instance():
    return random_inconsistent_database(SPEC, seed=5)


class TestSeededSampling:
    def test_sample_repair_sequences_are_identical(self, instance):
        database, keys = instance
        first = CQASolver(database, keys, rng=42)
        second = CQASolver(database, keys, rng=42)
        for _ in range(8):
            assert first.sample_repair().sorted_facts() == second.sample_repair().sorted_facts()

    def test_sample_repair_choice_vectors_are_identical(self, instance):
        database, keys = instance
        decomposition = BlockDecomposition(database, keys)
        draws_a = [
            tuple(sample_repair_choices(decomposition, random.Random(seed)))
            for seed in range(10)
        ]
        draws_b = [
            tuple(sample_repair_choices(decomposition, random.Random(seed)))
            for seed in range(10)
        ]
        assert draws_a == draws_b

    def test_different_seeds_eventually_differ(self, instance):
        database, keys = instance
        decomposition = BlockDecomposition(database, keys)
        assert decomposition.total_repairs() > 1
        draws = {
            tuple(
                tuple(sample_repair_choices(decomposition, rng))
                for _ in range(4)
            )
            for rng in (random.Random(seed) for seed in range(5))
        }
        assert len(draws) > 1


class TestSeededEstimators:
    @pytest.mark.parametrize("method", ("fpras", "karp-luby"))
    def test_same_seed_same_estimate(self, instance, method):
        database, keys = instance
        query = parse_query(QUERY_TEXT)
        runs = [
            count_query(
                database, keys, query, method=method, epsilon=0.3, delta=0.2, rng=11
            )
            for _ in range(2)
        ]
        assert runs[0].satisfying == runs[1].satisfying
        assert runs[0].is_estimate

    @pytest.mark.parametrize("method", ("fpras", "karp-luby"))
    def test_solver_facade_matches_kernel_with_same_seed(self, instance, method):
        """CQASolver(rng=seed) and the kernel draw the same sample stream."""
        database, keys = instance
        solver = CQASolver(database, keys, rng=11)
        facade = solver.count(QUERY_TEXT, method=method, epsilon=0.3, delta=0.2)
        kernel = count_query(
            database,
            keys,
            parse_query(QUERY_TEXT),
            method=method,
            epsilon=0.3,
            delta=0.2,
            rng=11,
        )
        assert facade.satisfying == kernel.satisfying


class TestCanonicalBlockOrdering:
    def test_key_sort_token_orders_by_type_name_then_rendering(self):
        tokens = [
            _key_sort_token(("R", (value,)))
            for value in (10, "10", 2, "2", 2.5, True)
        ]
        assert tokens == [
            ("R", (("int", "10"),)),
            ("R", (("str", "10"),)),
            ("R", (("int", "2"),)),
            ("R", (("str", "2"),)),
            ("R", (("float", "2.5"),)),
            ("R", (("bool", "True"),)),
        ]

    def test_mixed_type_keys_get_a_pinned_total_order(self):
        """Regression pin: (type name, str) lexicographic, so bool < float <
        int < str, and ints order as strings ('10' < '2')."""
        facts = [
            fact("R", 10, "a"),
            fact("R", "10", "b"),
            fact("R", 2, "c"),
            fact("R", "2", "d"),
            fact("R", 2.5, "e"),
            fact("R", True, "f"),
        ]
        keys = PrimaryKeySet.from_dict({"R": [1]})
        decomposition = BlockDecomposition(Database(facts), keys)
        ordered_keys = [block.key_value[1] for block in decomposition]
        assert ordered_keys == [(True,), (2.5,), (10,), (2,), ("10",), ("2",)]

    def test_block_order_is_insertion_order_independent(self, instance):
        database, keys = instance
        facts = database.sorted_facts()
        shuffled = list(facts)
        random.Random(3).shuffle(shuffled)
        forward = BlockDecomposition(Database(facts), keys)
        scrambled = BlockDecomposition(Database(shuffled), keys)
        assert [block.key_value for block in forward] == [
            block.key_value for block in scrambled
        ]
        assert [tuple(block.facts) for block in forward] == [
            tuple(block.facts) for block in scrambled
        ]

    def test_enumeration_order_is_canonical(self, instance):
        database, keys = instance
        first = [
            repair.sorted_facts()
            for repair in enumerate_repairs(database, keys, limit=6)
        ]
        second = [
            repair.sorted_facts()
            for repair in enumerate_repairs(database, keys, limit=6)
        ]
        assert first == second
