"""Disjoint-independent probabilistic databases (the substrate of [5]).

Used as the baseline the paper's FPRAS is compared against and to exercise
the correspondence ``P(Q) = #CQA(Q, Σ)(D) / |rep(D, Σ)|`` for uniform
block probabilities.
"""

from .model import DisjointIndependentPDB, ProbabilisticBlock, pdb_from_inconsistent_database
from .probability import (
    query_probability_bruteforce,
    query_probability_exact,
    query_probability_monte_carlo,
)

__all__ = [
    "DisjointIndependentPDB",
    "ProbabilisticBlock",
    "pdb_from_inconsistent_database",
    "query_probability_bruteforce",
    "query_probability_exact",
    "query_probability_monte_carlo",
]
