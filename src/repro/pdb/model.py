"""Disjoint-independent probabilistic databases.

The paper's FPRAS discussion (Section 6) compares against the scheme of
Dalvi and Suciu for query probability over *disjoint-independent*
probabilistic databases: the facts are partitioned into blocks, at most one
fact of each block is present in a possible world, facts of the same block
are mutually exclusive (disjoint) and facts of different blocks are
independent.  #CQA under primary keys is the special case where every block
has total probability 1 and its facts are equiprobable — then every
possible world is a repair and

    ``P(Q) = #CQA(Q, Σ)(D) / |rep(D, Σ)|``.

This module provides the PDB model and that correspondence; exact and
approximate query-probability computation live in
:mod:`repro.pdb.probability`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..db.blocks import BlockDecomposition
from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..db.facts import Fact
from ..errors import ReproError

__all__ = ["ProbabilisticBlock", "DisjointIndependentPDB", "pdb_from_inconsistent_database"]


@dataclass(frozen=True)
class ProbabilisticBlock:
    """One block: mutually exclusive facts with their probabilities.

    The probabilities must be positive and sum to at most 1; the residual
    mass is the probability that *no* fact of the block is present.
    """

    facts: Tuple[Fact, ...]
    probabilities: Tuple[Fraction, ...]

    def __post_init__(self) -> None:
        if len(self.facts) != len(self.probabilities):
            raise ReproError("each fact of a block needs exactly one probability")
        if not self.facts:
            raise ReproError("a probabilistic block must contain at least one fact")
        if any(probability <= 0 for probability in self.probabilities):
            raise ReproError("fact probabilities must be positive")
        if sum(self.probabilities, Fraction(0)) > 1:
            raise ReproError(
                f"block probabilities sum to {sum(self.probabilities, Fraction(0))} > 1"
            )

    @property
    def absence_probability(self) -> Fraction:
        """Probability that no fact of the block is present."""
        return Fraction(1) - sum(self.probabilities, Fraction(0))

    @property
    def is_total(self) -> bool:
        """True iff some fact of the block is present in every world."""
        return self.absence_probability == 0

    def outcomes(self) -> Iterator[Tuple[Optional[Fact], Fraction]]:
        """All outcomes of the block: each fact, plus absence when possible."""
        for fact_, probability in zip(self.facts, self.probabilities):
            yield fact_, probability
        if not self.is_total:
            yield None, self.absence_probability

    def __len__(self) -> int:
        return len(self.facts)


class DisjointIndependentPDB:
    """A disjoint-independent probabilistic database: independent blocks."""

    def __init__(self, blocks: Sequence[ProbabilisticBlock]) -> None:
        self._blocks = tuple(blocks)

    @property
    def blocks(self) -> Tuple[ProbabilisticBlock, ...]:
        """The blocks, in a fixed order."""
        return self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def all_facts(self) -> Tuple[Fact, ...]:
        """Every fact that can occur in some possible world."""
        return tuple(fact_ for block in self._blocks for fact_ in block.facts)

    def world_count(self) -> int:
        """Number of possible worlds (product of per-block outcome counts)."""
        total = 1
        for block in self._blocks:
            total *= len(block) + (0 if block.is_total else 1)
        return total

    def possible_worlds(self) -> Iterator[Tuple[Database, Fraction]]:
        """Enumerate (world, probability) pairs — exponential, small PDBs only."""
        import itertools

        outcome_lists = [list(block.outcomes()) for block in self._blocks]
        for combination in itertools.product(*outcome_lists):
            probability = Fraction(1)
            facts: List[Fact] = []
            for outcome, outcome_probability in combination:
                probability *= outcome_probability
                if outcome is not None:
                    facts.append(outcome)
            yield Database(facts), probability


def pdb_from_inconsistent_database(
    database: Database, keys: PrimaryKeySet
) -> Tuple[DisjointIndependentPDB, BlockDecomposition]:
    """The uniform-block PDB whose worlds are exactly the repairs of ``(D, Σ)``.

    Every block of the decomposition becomes a probabilistic block whose
    facts are equiprobable and whose probabilities sum to 1; the possible
    worlds are then precisely the repairs, each with probability
    ``1/|rep(D, Σ)|`` — the correspondence used by the reduction of #CQA to
    DisjPDB query probability discussed after Corollary 6.4.
    """
    decomposition = BlockDecomposition(database, keys)
    blocks = []
    for block in decomposition.blocks:
        share = Fraction(1, len(block))
        blocks.append(
            ProbabilisticBlock(tuple(block.facts), tuple(share for _ in block.facts))
        )
    return DisjointIndependentPDB(blocks), decomposition
