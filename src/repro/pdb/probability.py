"""Query probability over disjoint-independent probabilistic databases.

Three evaluation strategies, mirroring the counting side of the library:

* :func:`query_probability_bruteforce` — enumerate possible worlds; the
  oracle for tests (exponential).
* :func:`query_probability_exact` — inclusion–exclusion over the query's
  certificates (homomorphisms with block-consistent images), each of which
  is an independent "box event" over the blocks; exact and feasible
  whenever the number of certificates is moderate.
* :func:`query_probability_monte_carlo` — naive world sampling; included
  because it is exactly the estimator whose sample complexity blows up when
  the probability is small, i.e. the reason Dalvi–Suciu (and the paper) use
  the complex sample space instead.

For the uniform PDB arising from an inconsistent database the exact
probability times the number of repairs equals #CQA — the correspondence
exercised by the test suite and benchmark E6.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..db.database import Database
from ..db.facts import Fact
from ..errors import FragmentError
from ..query.ast import Query
from ..query.classify import is_existential_positive
from ..query.evaluation import holds
from ..query.homomorphism import find_homomorphisms, homomorphism_image
from ..query.rewriting import UCQ, to_ucq
from .model import DisjointIndependentPDB

__all__ = [
    "query_probability_bruteforce",
    "query_probability_exact",
    "query_probability_monte_carlo",
]

#: An event "these blocks take exactly these facts": block index -> fact.
_BoxEvent = Tuple[Tuple[int, Fact], ...]


def query_probability_bruteforce(pdb: DisjointIndependentPDB, query: Query) -> Fraction:
    """Exact probability by enumerating every possible world (oracle)."""
    probability = Fraction(0)
    for world, world_probability in pdb.possible_worlds():
        if holds(query, world):
            probability += world_probability
    return probability


def _certificate_events(
    pdb: DisjointIndependentPDB, ucq: UCQ
) -> List[_BoxEvent]:
    """The box events of the query's certificates over the PDB's blocks."""
    all_facts = Database(pdb.all_facts())
    block_of_fact: Dict[Fact, int] = {}
    for block_index, block in enumerate(pdb.blocks):
        for fact_ in block.facts:
            block_of_fact[fact_] = block_index

    events: List[_BoxEvent] = []
    seen = set()
    for disjunct in ucq.disjuncts:
        if disjunct.answer_bindings:
            raise FragmentError("query probability requires a Boolean query")
        for assignment in find_homomorphisms(disjunct.atoms, all_facts):
            image = homomorphism_image(disjunct.atoms, assignment)
            event: Dict[int, Fact] = {}
            consistent = True
            for fact_ in image:
                block_index = block_of_fact[fact_]
                if block_index in event and event[block_index] != fact_:
                    consistent = False
                    break
                event[block_index] = fact_
            if not consistent:
                continue
            key = tuple(sorted(event.items()))
            if key not in seen:
                seen.add(key)
                events.append(key)
    return events


def _fact_probability(pdb: DisjointIndependentPDB, block_index: int, fact_: Fact) -> Fraction:
    block = pdb.blocks[block_index]
    return block.probabilities[block.facts.index(fact_)]


def query_probability_exact(
    pdb: DisjointIndependentPDB, query: Union[Query, UCQ]
) -> Fraction:
    """Exact probability by inclusion–exclusion over certificate events.

    Requires an existential positive query.  Two events intersect
    consistently when they agree on every commonly constrained block; the
    probability of a (consistent) intersection is the product of the
    probabilities of the pinned facts, by block independence.
    """
    if isinstance(query, Query):
        if not is_existential_positive(query):
            raise FragmentError(
                "exact certificate-based probability requires an existential "
                "positive query; use query_probability_bruteforce for FO"
            )
        ucq = to_ucq(query)
    else:
        ucq = query
    events = _certificate_events(pdb, ucq)
    total = Fraction(0)

    def recurse(start: int, merged: Dict[int, Fact], depth: int) -> None:
        nonlocal total
        for index in range(start, len(events)):
            event = events[index]
            conflict = False
            added: List[int] = []
            for block_index, fact_ in event:
                existing = merged.get(block_index)
                if existing is None:
                    merged[block_index] = fact_
                    added.append(block_index)
                elif existing != fact_:
                    conflict = True
                    break
            if not conflict:
                probability = Fraction(1)
                for block_index, fact_ in merged.items():
                    probability *= _fact_probability(pdb, block_index, fact_)
                total += probability if depth % 2 == 0 else -probability
                recurse(index + 1, merged, depth + 1)
            for block_index in added:
                del merged[block_index]

    recurse(0, {}, 0)
    return total


def query_probability_monte_carlo(
    pdb: DisjointIndependentPDB,
    query: Query,
    samples: int,
    rng: Optional[Union[random.Random, int]] = None,
) -> float:
    """Naive Monte-Carlo estimate: sample worlds, evaluate the query.

    Unbiased, but needs on the order of ``1/P(Q)`` samples to see a single
    positive world — the problem the complex-sample-space FPRAS avoids.
    """
    if isinstance(rng, int):
        rng = random.Random(rng)
    elif rng is None:
        rng = random.Random()
    hits = 0
    for _ in range(samples):
        facts: List[Fact] = []
        for block in pdb.blocks:
            draw = rng.random()
            cumulative = 0.0
            chosen: Optional[Fact] = None
            for fact_, probability in zip(block.facts, block.probabilities):
                cumulative += float(probability)
                if draw < cumulative:
                    chosen = fact_
                    break
            if chosen is not None:
                facts.append(chosen)
        if holds(query, Database(facts)):
            hits += 1
    return hits / samples if samples else 0.0
