"""Public façade: the :class:`CQASolver` high-level API.

:func:`count_query` is the solver-free counting kernel the façade (and the
batch engine in :mod:`repro.engine`) delegates to.
"""

from .solver import CQAResult, CQASolver, QueryDiagnostics, count_query

__all__ = ["CQAResult", "CQASolver", "QueryDiagnostics", "count_query"]
