"""Public façade: the :class:`CQASolver` high-level API.

:func:`count_query` is the solver-free counting kernel the façade (and the
batch engine in :mod:`repro.engine`) delegates to.
"""

from .solver import (
    CQAResult,
    CQASolver,
    QueryDiagnostics,
    build_sampling_plan,
    count_query,
    count_query_anytime,
)

__all__ = [
    "CQAResult",
    "CQASolver",
    "QueryDiagnostics",
    "build_sampling_plan",
    "count_query",
    "count_query_anytime",
]
