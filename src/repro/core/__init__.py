"""Public façade: the :class:`CQASolver` high-level API."""

from .solver import CQAResult, CQASolver, QueryDiagnostics

__all__ = ["CQAResult", "CQASolver", "QueryDiagnostics"]
