"""The public façade: :class:`CQASolver`.

A solver is bound to one inconsistent database and one set of primary keys
and exposes, behind a single object, every operation the paper discusses:

* total repair counting and repair enumeration/sampling,
* the decision problem #CQA>0,
* exact #CQA counting (naive / certificate-based),
* the FPRAS of Corollary 6.4 and the Karp–Luby baseline,
* relative frequencies and answer rankings,
* query diagnostics (fragment, keywidth, the Λ-level the instance lives in).

The block decomposition is computed once and shared by every call.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple, Union

from ..db.blocks import BlockDecomposition
from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..db.facts import Constant
from ..errors import FragmentError
from ..query.ast import Query
from ..query.classify import QueryClass, classify, is_existential_positive
from ..query.keywidth import keywidth, max_disjunct_keywidth
from ..query.parser import parse_query
from ..query.rewriting import UCQ, to_ucq
from ..query.substitution import bind_answer
from ..approx.anytime import AnytimeResult, SamplingPlan, run_plan
from ..approx.cqa_fpras import CQAFpras, CQAFprasResult
from ..approx.karp_luby import estimate_union_karp_luby, karp_luby_plan
from ..repairs.counting import (
    CountReport,
    PreparedCertificates,
    count_repairs_satisfying,
    prepare_certificates,
)
from ..repairs.decision import decide
from ..repairs.enumeration import count_total_repairs, enumerate_repairs, sample_repair
from ..repairs.frequency import AnswerFrequency, answer_frequencies

__all__ = [
    "CQAResult",
    "QueryDiagnostics",
    "CQASolver",
    "build_sampling_plan",
    "count_query",
    "count_query_anytime",
]

#: Methods handled by the randomised estimators rather than the exact counters.
RANDOMISED_METHODS = ("fpras", "karp-luby")


@dataclass(frozen=True)
class QueryDiagnostics:
    """Static facts about a query w.r.t. the solver's key set."""

    query_class: QueryClass
    keywidth: int
    max_disjunct_keywidth: Optional[int]
    disjuncts: Optional[int]
    admits_fpras: bool
    lambda_level: Optional[int]

    def __str__(self) -> str:
        level = f"Λ[{self.lambda_level}]" if self.lambda_level is not None else "#P (no Λ level)"
        return (
            f"{self.query_class}; kw={self.keywidth}; "
            f"level={level}; FPRAS={'yes' if self.admits_fpras else 'no (unless RP=NP)'}"
        )


@dataclass(frozen=True)
class CQAResult:
    """The answer to a #CQA request, with provenance.

    ``satisfying`` is exact when ``method`` is an exact strategy and an
    estimate when the FPRAS or the Karp–Luby baseline produced it (the
    ``is_estimate`` flag records which).
    """

    satisfying: float
    total: int
    method: str
    is_estimate: bool
    answer: Tuple[Constant, ...]
    details: object = None

    @property
    def frequency(self) -> float:
        """Relative frequency of the answer (estimated iff the count is)."""
        if self.total == 0:
            return 0.0
        return self.satisfying / self.total

    @property
    def exact_frequency(self) -> Fraction:
        """Exact frequency as a fraction; only valid for exact methods."""
        if self.is_estimate:
            raise ValueError("exact_frequency is undefined for estimated results")
        if self.total == 0:
            return Fraction(0)
        return Fraction(int(self.satisfying), self.total)

    def __str__(self) -> str:
        kind = "≈" if self.is_estimate else "="
        return (
            f"#CQA {kind} {self.satisfying:g} of {self.total} repairs "
            f"(frequency {kind} {self.frequency:.4f}, method={self.method})"
        )


def count_query(
    database: Database,
    keys: PrimaryKeySet,
    query: Union[Query, str],
    answer: Sequence[Constant] = (),
    method: str = "auto",
    epsilon: float = 0.1,
    delta: float = 0.05,
    max_samples: Optional[int] = None,
    rng: Optional[Union[random.Random, int]] = None,
    decomposition: Optional[BlockDecomposition] = None,
    prepared: Optional[PreparedCertificates] = None,
    map_fn=None,
) -> CQAResult:
    """The solver-free counting kernel behind :meth:`CQASolver.count`.

    A module-level function taking only picklable inputs, so worker
    processes (and anything else that does not want to build a
    :class:`CQASolver`) can run every counting strategy directly.  All
    provenance-preserving state can be supplied from caches:

    ``decomposition``
        A precomputed block decomposition of ``(database, keys)``.
    ``prepared``
        A precomputed :class:`~repro.repairs.counting.PreparedCertificates`
        for the *answer-bound* query (certificate-family exact methods, the
        FPRAS selector membership and the Karp–Luby estimator all reuse it).
    ``map_fn``
        Optional parallel map applied across connected components of the
        union-of-boxes computation (decomposed exact counts only).

    ``rng`` may be a seed or a generator; it is only consulted by the
    randomised methods, which makes seeded calls fully deterministic.
    """
    if isinstance(query, str):
        query = parse_query(query)
    answer = tuple(answer)
    if isinstance(rng, int):
        rng = random.Random(rng)
    elif rng is None:
        rng = random.Random()
    if decomposition is None:
        decomposition = BlockDecomposition(database, keys)

    if method not in RANDOMISED_METHODS:
        report: CountReport = count_repairs_satisfying(
            database,
            keys,
            query,
            answer,
            method=method,
            decomposition=decomposition,
            prepared=prepared,
            map_fn=map_fn,
        )
        return CQAResult(
            satisfying=report.satisfying,
            total=report.total,
            method=report.method,
            is_estimate=False,
            answer=answer,
            details=report,
        )

    if method == "fpras":
        if prepared is not None:
            scheme = CQAFpras(prepared.ucq, keys, max_samples=max_samples)
            result: CQAFprasResult = scheme.estimate(
                database,
                epsilon,
                delta,
                answer=(),
                rng=rng,
                decomposition=decomposition,
                prepared=prepared,
            )
        else:
            scheme = CQAFpras(query, keys, max_samples=max_samples)
            result = scheme.estimate(
                database,
                epsilon,
                delta,
                answer=answer,
                rng=rng,
                decomposition=decomposition,
            )
        return CQAResult(
            satisfying=result.estimate,
            total=result.total_repairs,
            method="fpras",
            is_estimate=True,
            answer=answer,
            details=result,
        )

    # Karp-Luby over the certificate boxes.
    if prepared is None:
        bound = bind_answer(query, answer) if query.arity else query
        if answer and not query.arity:
            raise FragmentError("a Boolean query takes no answer tuple")
        if not is_existential_positive(bound):
            raise FragmentError(
                "randomised estimation requires an existential positive query"
            )
        prepared = prepare_certificates(
            database, keys, bound, decomposition=decomposition
        )
    result = estimate_union_karp_luby(
        decomposition.block_sizes(),
        prepared.selectors,
        epsilon,
        delta,
        rng=rng,
        max_samples=max_samples,
    )
    return CQAResult(
        satisfying=result.estimate,
        total=decomposition.total_repairs(),
        method="karp-luby",
        is_estimate=True,
        answer=answer,
        details=result,
    )


def build_sampling_plan(
    database: Database,
    keys: PrimaryKeySet,
    query: Union[Query, str],
    answer: Sequence[Constant] = (),
    method: str = "fpras",
    epsilon: float = 0.1,
    delta: float = 0.05,
    max_samples: Optional[int] = None,
    rng: Optional[Union[random.Random, int]] = None,
    decomposition: Optional[BlockDecomposition] = None,
    prepared: Optional[PreparedCertificates] = None,
) -> Tuple[SamplingPlan, BlockDecomposition]:
    """Prepare (but do not run) a randomised method's sampling plan.

    The plan draws from ``rng`` in exactly the order the fixed
    :func:`count_query` path would, so running it to its full budget is
    bit-identical to the fixed-(ε, δ) result for the same seed.  Only the
    randomised methods have plans; exact methods raise.
    """
    if method not in RANDOMISED_METHODS:
        raise FragmentError(
            f"only the randomised methods {RANDOMISED_METHODS} have sampling "
            f"plans, got {method!r}"
        )
    if isinstance(query, str):
        query = parse_query(query)
    answer = tuple(answer)
    if isinstance(rng, int):
        rng = random.Random(rng)
    elif rng is None:
        rng = random.Random()
    if decomposition is None:
        decomposition = BlockDecomposition(database, keys)

    if method == "fpras":
        if prepared is not None:
            scheme = CQAFpras(prepared.ucq, keys, max_samples=max_samples)
            plan = scheme.plan(
                database,
                epsilon,
                delta,
                answer=(),
                rng=rng,
                decomposition=decomposition,
                prepared=prepared,
            )
        else:
            scheme = CQAFpras(query, keys, max_samples=max_samples)
            plan = scheme.plan(
                database,
                epsilon,
                delta,
                answer=answer,
                rng=rng,
                decomposition=decomposition,
            )
        return plan, decomposition

    if prepared is None:
        bound = bind_answer(query, answer) if query.arity else query
        if answer and not query.arity:
            raise FragmentError("a Boolean query takes no answer tuple")
        if not is_existential_positive(bound):
            raise FragmentError(
                "randomised estimation requires an existential positive query"
            )
        prepared = prepare_certificates(
            database, keys, bound, decomposition=decomposition
        )
    plan = karp_luby_plan(
        decomposition.block_sizes(),
        prepared.selectors,
        epsilon,
        delta,
        rng=rng,
        max_samples=max_samples,
    )
    return plan, decomposition


def count_query_anytime(
    database: Database,
    keys: PrimaryKeySet,
    query: Union[Query, str],
    answer: Sequence[Constant] = (),
    method: str = "fpras",
    epsilon: float = 0.1,
    delta: float = 0.05,
    max_samples: Optional[int] = None,
    rng: Optional[Union[random.Random, int]] = None,
    decomposition: Optional[BlockDecomposition] = None,
    prepared: Optional[PreparedCertificates] = None,
    max_latency: Optional[float] = None,
    max_error: Optional[float] = None,
    chunk_size: Optional[int] = None,
    calibrator=None,
    alpha: float = 0.1,
    clock=None,
) -> Tuple[CQAResult, AnytimeResult]:
    """The anytime counterpart of :func:`count_query`.

    Runs the randomised method through the chunked anytime driver,
    stopping on whichever of ``max_latency`` / ``max_error`` / the
    sample budget fires first, and returns the counting result together
    with the full :class:`~repro.approx.anytime.AnytimeResult` trace
    (snapshots, stop reason, native estimator record).  With no latency
    or error cap, the result is bit-identical to :func:`count_query`
    under the same seed.
    """
    answer = tuple(answer)
    plan, decomposition = build_sampling_plan(
        database,
        keys,
        query,
        answer=answer,
        method=method,
        epsilon=epsilon,
        delta=delta,
        max_samples=max_samples,
        rng=rng,
        decomposition=decomposition,
        prepared=prepared,
    )
    driver_kwargs = {}
    if clock is not None:
        driver_kwargs["clock"] = clock
    anytime = run_plan(
        plan,
        max_latency=max_latency,
        max_error=max_error,
        chunk_size=chunk_size,
        calibrator=calibrator,
        alpha=alpha,
        **driver_kwargs,
    )
    record = anytime.result
    total = (
        record.total_repairs
        if isinstance(record, CQAFprasResult)
        else decomposition.total_repairs()
    )
    result = CQAResult(
        satisfying=record.estimate,
        total=total,
        method=method,
        is_estimate=True,
        answer=answer,
        details=record,
    )
    return result, anytime


class CQASolver:
    """Counting-based consistent query answering over one database.

    Parameters
    ----------
    database:
        The (possibly inconsistent) database ``D``.
    keys:
        The set ``Σ`` of primary keys.
    rng:
        Random generator or seed shared by the randomised methods; pass a
        seed for reproducible experiments.
    """

    def __init__(
        self,
        database: Database,
        keys: PrimaryKeySet,
        rng: Optional[Union[random.Random, int]] = None,
    ) -> None:
        self._database = database
        self._keys = keys
        if isinstance(rng, int):
            rng = random.Random(rng)
        self._rng = rng if rng is not None else random.Random()
        self._decomposition = BlockDecomposition(database, keys)

    # ------------------------------------------------------------------ #
    # static structure
    # ------------------------------------------------------------------ #
    @property
    def database(self) -> Database:
        """The database the solver is bound to."""
        return self._database

    @property
    def keys(self) -> PrimaryKeySet:
        """The primary keys the solver is bound to."""
        return self._keys

    @property
    def decomposition(self) -> BlockDecomposition:
        """The (cached) block decomposition ``B1 ≺ ... ≺ Bn``."""
        return self._decomposition

    def is_consistent(self) -> bool:
        """True iff the database satisfies every key (a single repair: itself)."""
        return self._decomposition.is_consistent()

    def total_repairs(self) -> int:
        """``|rep(D, Σ)|`` — polynomial-time, the denominator of frequencies."""
        return self._decomposition.total_repairs()

    def repairs(self, limit: Optional[int] = None):
        """Enumerate repairs (optionally limited); exponential in general."""
        return enumerate_repairs(
            self._database, self._keys, decomposition=self._decomposition, limit=limit
        )

    def sample_repair(self) -> Database:
        """Draw one repair uniformly at random."""
        return sample_repair(
            self._database, self._keys, rng=self._rng, decomposition=self._decomposition
        )

    # ------------------------------------------------------------------ #
    # query handling
    # ------------------------------------------------------------------ #
    @staticmethod
    def _as_query(query: Union[Query, str]) -> Query:
        if isinstance(query, str):
            return parse_query(query)
        return query

    def diagnostics(self, query: Union[Query, str]) -> QueryDiagnostics:
        """Fragment, keywidth and complexity placement of a query."""
        parsed = self._as_query(query)
        fragment = classify(parsed)
        width = keywidth(parsed, self._keys)
        positive = is_existential_positive(parsed)
        if positive:
            try:
                ucq = to_ucq(parsed)
                disjuncts = len(ucq.disjuncts)
                per_disjunct = max_disjunct_keywidth(ucq, self._keys)
            except FragmentError:
                disjuncts = None
                per_disjunct = None
        else:
            disjuncts = None
            per_disjunct = None
        return QueryDiagnostics(
            query_class=fragment,
            keywidth=width,
            max_disjunct_keywidth=per_disjunct,
            disjuncts=disjuncts,
            admits_fpras=positive,
            lambda_level=width if positive else None,
        )

    def entails_some_repair(
        self, query: Union[Query, str], answer: Sequence[Constant] = ()
    ) -> bool:
        """The decision problem #CQA>0 for the given query/answer."""
        parsed = self._as_query(query)
        if parsed.arity:
            parsed = bind_answer(parsed, answer)
        elif answer:
            raise FragmentError("a Boolean query takes no answer tuple")
        return decide(self._database, self._keys, parsed)

    # ------------------------------------------------------------------ #
    # counting
    # ------------------------------------------------------------------ #
    def count(
        self,
        query: Union[Query, str],
        answer: Sequence[Constant] = (),
        method: str = "auto",
        epsilon: float = 0.1,
        delta: float = 0.05,
        max_samples: Optional[int] = None,
    ) -> CQAResult:
        """Count (or estimate) the repairs entailing the query.

        ``method`` is one of the exact strategies of
        :func:`repro.repairs.counting.count_repairs_satisfying` (``auto``,
        ``naive``, ``certificate``, ``inclusion-exclusion``,
        ``enumeration``) or one of the randomised ones: ``fpras`` (the
        paper's natural-sample-space scheme) and ``karp-luby`` (the
        complex-sample-space baseline).  ``epsilon``/``delta`` only apply to
        the randomised methods.

        The computation itself is :func:`count_query`, the solver-free
        kernel; the solver contributes its cached decomposition and its
        shared random generator.
        """
        return count_query(
            self._database,
            self._keys,
            self._as_query(query),
            answer=answer,
            method=method,
            epsilon=epsilon,
            delta=delta,
            max_samples=max_samples,
            rng=self._rng,
            decomposition=self._decomposition,
        )

    # ------------------------------------------------------------------ #
    # frequencies and classical CQA notions
    # ------------------------------------------------------------------ #
    def frequency(
        self,
        query: Union[Query, str],
        answer: Sequence[Constant] = (),
        method: str = "auto",
    ) -> Fraction:
        """Exact relative frequency of ``answer`` for ``query``."""
        result = self.count(query, answer, method=method)
        return result.exact_frequency

    def answer_ranking(
        self, query: Union[Query, str], method: str = "auto"
    ) -> List[AnswerFrequency]:
        """All candidate answers ranked by exact relative frequency."""
        parsed = self._as_query(query)
        return answer_frequencies(
            self._database,
            self._keys,
            parsed,
            method=method,
            decomposition=self._decomposition,
        )

    def certain_answers(self, query: Union[Query, str]) -> List[Tuple[Constant, ...]]:
        """Classical certain answers (frequency 1)."""
        return [item.answer for item in self.answer_ranking(query) if item.is_certain]

    def possible_answers(self, query: Union[Query, str]) -> List[Tuple[Constant, ...]]:
        """Possible answers (frequency > 0)."""
        return [item.answer for item in self.answer_ranking(query) if item.is_possible]
