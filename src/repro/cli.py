"""Command-line interface.

The CLI wraps the :class:`~repro.core.CQASolver` façade so the library can
be used from the shell on databases stored as JSON (see
:func:`repro.db.io.save_json`) or as a directory of CSV files::

    python -m repro inspect  --json employees.json
    python -m repro repairs  --json employees.json
    python -m repro decide   --json employees.json --query "Employee(1, x, 'HR')"
    python -m repro count    --json employees.json \
        --query "EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)" \
        --method fpras --epsilon 0.1 --delta 0.05
    python -m repro rank     --json employees.json \
        --query "Employee(1, x, y)" --answer-vars x,y
    python -m repro batch    --jobs jobs.json --workers 4
    python -m repro update   --json employees.json --delta delta.json \
        --output employees-v2.json
    python -m repro serve    --jobs jobs.json --shards 2 --queue-limit 16
    python -m repro serve    --jobs databases.json --stdin < jobs.jsonl
    python -m repro history  employees --persist-cache cache/ --limit 20
    python -m repro range    employees --from -5 --to 0 --json employees.json \
        --query "Employee(1, x, 'HR')" --persist-cache cache/
    python -m repro rollback employees 1a2b3c4d5e6f --json employees.json \
        --persist-cache cache/ --output employees-rolled-back.json
    python -m repro checkpoint employees --json employees.json \
        --persist-cache cache/
    python -m repro gc --persist-cache cache/ --max-bytes 50000000 \
        --pin employees

Every command prints a small, line-oriented report to stdout (``batch``
prints a JSON report, ``serve`` streams JSON-lines results, ``history``
one line per recorded snapshot) and exits with status 0 on success;
malformed input exits with status 2 and a message on stderr (argparse's
convention).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from . import __version__
from .core import CQASolver
from .db import Database, PrimaryKeySet, load_csv_directory, load_json
from .errors import ReproError
from .query import parse_query

__all__ = ["build_parser", "main"]


def _load_instance(arguments: argparse.Namespace) -> tuple:
    """Load (database, keys) from the --json or --csv-dir arguments."""
    if arguments.json:
        database, keys = load_json(arguments.json)
    else:
        key_spec = {}
        for item in arguments.key or []:
            relation, _, positions = item.partition("=")
            if not positions:
                raise SystemExit(
                    f"--key expects RELATION=pos1,pos2 (got {item!r})"
                )
            key_spec[relation] = [int(position) for position in positions.split(",")]
        database, keys = load_csv_directory(arguments.csv_dir, keys=key_spec)
    if arguments.key and arguments.json:
        raise SystemExit("--key is only meaningful together with --csv-dir")
    return database, keys


def _parse_cli_query(arguments: argparse.Namespace):
    answer_variables = []
    if getattr(arguments, "answer_vars", None):
        answer_variables = [name.strip() for name in arguments.answer_vars.split(",") if name.strip()]
    return parse_query(arguments.query, answer_variables=answer_variables)


def _add_instance_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--json", help="database JSON file (schema, keys, facts)")
    source.add_argument("--csv-dir", help="directory with one CSV file per relation")
    parser.add_argument(
        "--key",
        action="append",
        metavar="RELATION=POS1,POS2",
        help="primary key for a relation when loading from CSV (repeatable)",
    )


def _add_query_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--query", required=True, help="query in the textual syntax")
    parser.add_argument(
        "--answer-vars",
        help="comma-separated answer variables (omit for a Boolean query)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Counting database repairs under primary keys (PODS 2019 reproduction).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    inspect = subparsers.add_parser("inspect", help="summarise the database and its conflicts")
    _add_instance_arguments(inspect)

    repairs = subparsers.add_parser("repairs", help="count (and optionally list) the repairs")
    _add_instance_arguments(repairs)
    repairs.add_argument("--list", type=int, default=0, metavar="N", help="print up to N repairs")

    decide = subparsers.add_parser("decide", help="is the query entailed by some repair?")
    _add_instance_arguments(decide)
    _add_query_arguments(decide)
    decide.add_argument("--answer", help="comma-separated answer tuple for non-Boolean queries")

    count = subparsers.add_parser("count", help="count the repairs entailing the query")
    _add_instance_arguments(count)
    _add_query_arguments(count)
    count.add_argument("--answer", help="comma-separated answer tuple for non-Boolean queries")
    count.add_argument(
        "--method",
        default="auto",
        choices=["auto", "naive", "certificate", "inclusion-exclusion", "enumeration", "fpras", "karp-luby"],
    )
    count.add_argument("--epsilon", type=float, default=0.1)
    count.add_argument("--delta", type=float, default=0.05)
    count.add_argument("--seed", type=int, default=None, help="seed for the randomised methods")

    rank = subparsers.add_parser("rank", help="rank candidate answers by relative frequency")
    _add_instance_arguments(rank)
    _add_query_arguments(rank)
    rank.add_argument("--top", type=int, default=0, metavar="N", help="print only the top N answers")

    batch = subparsers.add_parser(
        "batch", help="run a batch of counting jobs through the SolverPool engine"
    )
    batch.add_argument(
        "--jobs",
        required=True,
        metavar="FILE",
        help="JSON job file: {'databases': {...}, 'jobs': [...]} "
        "(see repro.engine.jobfile)",
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size; 1 runs sequentially (default)",
    )
    batch.add_argument(
        "--indent", type=int, default=None, help="indent the JSON report for humans"
    )
    batch.add_argument(
        "--persist-cache",
        metavar="DIR",
        default=None,
        help="directory for the persistent selector cache; re-running an "
        "unchanged job file against the same directory recomputes nothing",
    )
    batch.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="K",
        help="cut a compaction checkpoint every K effective deltas "
        "(requires --persist-cache); deep as_of replays then start at "
        "the nearest checkpoint",
    )
    batch.add_argument(
        "--max-latency",
        type=float,
        default=None,
        metavar="SECONDS",
        help="anytime SLA for the randomised jobs: stop sampling after "
        "SECONDS and report the running estimate with its interval",
    )
    batch.add_argument(
        "--max-error",
        type=float,
        default=None,
        metavar="FRACTION",
        help="anytime SLA for the randomised jobs: stop sampling once the "
        "interval is relatively tighter than FRACTION",
    )
    batch.add_argument(
        "--calibrate-from",
        metavar="FILE",
        default=None,
        help="job file of held-out calibration jobs; every randomised one "
        "is run both sampled and exactly, and the residuals conformally "
        "calibrate the intervals of the batch's anytime jobs",
    )

    serve = subparsers.add_parser(
        "serve",
        help="serve a job stream through the sharded async server",
    )
    serve.add_argument(
        "--jobs",
        required=True,
        metavar="FILE",
        help="JSON job file: {'databases': {...}, 'jobs': [...]}; with "
        "--stdin the 'jobs' array may be empty and jobs arrive as "
        "JSON-lines on stdin",
    )
    serve.add_argument(
        "--stdin",
        action="store_true",
        help="read jobs as JSON-lines from stdin (after the file's jobs)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=2,
        help="worker shards; each owns a disjoint set of databases (default 2)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="bound on in-flight jobs before backpressure applies (default 64)",
    )
    serve.add_argument(
        "--policy",
        choices=["wait", "reject"],
        default="wait",
        help="what a full queue does to the submitter (default: wait)",
    )
    serve.add_argument(
        "--persist-cache",
        metavar="DIR",
        default=None,
        help="directory for the persistent selector/decomposition caches",
    )
    serve.add_argument(
        "--cache-max-entries",
        type=int,
        default=None,
        metavar="N",
        help="GC bound: keep at most N entries per on-disk cache layer",
    )
    serve.add_argument(
        "--cache-max-age",
        type=float,
        default=None,
        metavar="SECONDS",
        help="GC bound: evict on-disk entries older than SECONDS",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="K",
        help="each shard cuts a compaction checkpoint every K effective "
        "deltas of an owned name (requires --persist-cache)",
    )
    serve.add_argument(
        "--auto-checkpoint",
        action="store_true",
        help="adaptive checkpoint placement instead of a fixed interval: "
        "each shard observes its as_of replays and checkpoints hot deep "
        "chain positions where the modeled replay saving pays (requires "
        "--persist-cache; mutually exclusive with --checkpoint-every)",
    )
    serve.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="GC bound: one global byte budget for the shared store, "
        "split between the entry kinds by observed hit-rate-per-byte",
    )
    serve.add_argument(
        "--rebalance-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="run the load rebalancer every SECONDS, moving hot database "
        "names to cold shards with a warm cache handoff (default: off)",
    )
    serve.add_argument(
        "--max-imbalance",
        type=float,
        default=2.0,
        metavar="RATIO",
        help="rebalance only while the hottest shard carries more than "
        "RATIO times the mean shard load (default 2.0)",
    )
    serve.add_argument(
        "--stats",
        action="store_true",
        help="print the server's aggregated stats JSON to stderr at the end",
    )
    serve.add_argument(
        "--http",
        type=int,
        default=None,
        metavar="PORT",
        help="serve the HTTP network front on PORT instead of streaming "
        "results to stdout (0 picks a free port; the bound address is "
        "printed as a JSON ready line); the job file then only declares "
        "databases",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for --http (default 127.0.0.1)",
    )
    serve.add_argument(
        "--max-latency",
        type=float,
        default=None,
        metavar="SECONDS",
        help="anytime SLA applied to every randomised count job: stop "
        "sampling after SECONDS and serve the interval",
    )
    serve.add_argument(
        "--max-error",
        type=float,
        default=None,
        metavar="FRACTION",
        help="anytime SLA applied to every randomised count job: refine "
        "until the interval is relatively tighter than FRACTION",
    )
    serve.add_argument(
        "--calibrate-from",
        metavar="FILE",
        default=None,
        help="job file of held-out calibration jobs run at startup; the "
        "residuals conformally calibrate served anytime intervals",
    )

    range_command = subparsers.add_parser(
        "range",
        help="count one query against every recorded version in a range",
    )
    range_command.add_argument(
        "name", help="registration name whose recorded versions to query"
    )
    range_command.add_argument(
        "--from",
        dest="ref_lo",
        required=True,
        metavar="REF",
        help="first version: a recorded content digest (or unique "
        ">=8-character prefix), or a non-positive chain index like -5",
    )
    range_command.add_argument(
        "--to",
        dest="ref_hi",
        required=True,
        metavar="REF",
        help="last version (inclusive; same reference syntax as --from); "
        "swap the endpoints for newest-first output",
    )
    _add_instance_arguments(range_command)
    _add_query_arguments(range_command)
    range_command.add_argument(
        "--answer", help="comma-separated answer tuple for non-Boolean queries"
    )
    range_command.add_argument(
        "--method",
        default="auto",
        choices=["auto", "naive", "certificate", "inclusion-exclusion",
                 "enumeration", "fpras", "karp-luby"],
    )
    range_command.add_argument("--epsilon", type=float, default=0.1)
    range_command.add_argument("--delta", type=float, default=0.05)
    range_command.add_argument(
        "--seed", type=int, default=None, help="seed for the randomised methods"
    )
    range_command.add_argument(
        "--persist-cache",
        required=True,
        metavar="DIR",
        help="store directory whose snapshot catalog holds the lineage "
        "(the same directory batch/serve persist into)",
    )

    history = subparsers.add_parser(
        "history",
        help="show the recorded snapshot lineage of a database name",
    )
    history.add_argument("name", help="registration name the lineage belongs to")
    history.add_argument(
        "--persist-cache",
        required=True,
        metavar="DIR",
        help="store directory whose snapshot catalog holds the lineage "
        "(the same directory batch/serve persist into)",
    )
    history.add_argument(
        "--limit",
        type=int,
        default=0,
        metavar="N",
        help="print only the N newest records (long chains stay readable; "
        "the footer reports how many were elided)",
    )
    history.add_argument(
        "--json-lines",
        action="store_true",
        help="emit one JSON object per record instead of the table",
    )
    history.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON document (records, head, "
        "checkpoints, elided/compacted counts) instead of the table",
    )

    rollback = subparsers.add_parser(
        "rollback",
        help="re-register a recorded ancestor snapshot as the head",
    )
    rollback.add_argument("name", help="registration name to roll back")
    rollback.add_argument(
        "digest",
        help="ancestor reference: a recorded content digest (or unique "
        ">=8-character prefix), or a non-positive chain index like -2",
    )
    _add_instance_arguments(rollback)
    rollback.add_argument(
        "--persist-cache",
        required=True,
        metavar="DIR",
        help="store directory holding the name's snapshot catalog; the "
        "rollback is recorded there as a new lineage head",
    )
    rollback.add_argument(
        "--output",
        required=True,
        metavar="FILE",
        help="where to write the rolled-back database JSON snapshot",
    )

    checkpoint = subparsers.add_parser(
        "checkpoint",
        help="persist the current head snapshot as a compaction checkpoint",
    )
    checkpoint.add_argument("name", help="registration name to checkpoint")
    _add_instance_arguments(checkpoint)
    checkpoint.add_argument(
        "--persist-cache",
        required=True,
        metavar="DIR",
        help="store directory holding the name's snapshot catalog; the "
        "full snapshot is persisted there and the chain position marked",
    )

    gc = subparsers.add_parser(
        "gc",
        help="garbage-collect a persistent store directory offline",
    )
    gc.add_argument(
        "--persist-cache",
        required=True,
        metavar="DIR",
        help="store directory to collect (the same directory batch/serve "
        "persist into)",
    )
    gc.add_argument(
        "--max-entries",
        type=int,
        default=None,
        metavar="N",
        help="keep at most N entries per on-disk cache layer",
    )
    gc.add_argument(
        "--max-age",
        type=float,
        default=None,
        metavar="SECONDS",
        help="evict entries older than SECONDS",
    )
    gc.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="one global byte budget across the entry kinds "
        "(*.sel/*.dec/*.snp/*.cal), split by observed hit-rate-per-byte",
    )
    gc.add_argument(
        "--pin",
        action="append",
        metavar="NAME",
        help="exempt the recorded head snapshot of NAME (its catalog "
        "lineage must exist in the store directory; repeatable)",
    )
    gc.add_argument(
        "--indent", type=int, default=None, help="indent the JSON report"
    )

    update = subparsers.add_parser(
        "update",
        help="apply a delta (inserted/deleted facts) to a stored database",
    )
    _add_instance_arguments(update)
    update.add_argument(
        "--delta",
        required=True,
        metavar="FILE",
        help="delta JSON file: {'insert': [facts...], 'delete': [facts...]}",
    )
    update.add_argument(
        "--output",
        required=True,
        metavar="FILE",
        help="where to write the updated database JSON snapshot",
    )

    return parser


def _parse_answer(text: Optional[str]) -> tuple:
    if not text:
        return ()
    values: List[object] = []
    for piece in text.split(","):
        piece = piece.strip()
        try:
            values.append(int(piece))
        except ValueError:
            values.append(piece)
    return tuple(values)


def _check_sla_flags(arguments: argparse.Namespace) -> None:
    """Shared validation of the anytime SLA flags (batch and serve)."""
    if arguments.max_latency is not None and arguments.max_latency <= 0:
        raise ReproError(f"--max-latency must be > 0, got {arguments.max_latency}")
    if arguments.max_error is not None and arguments.max_error <= 0:
        raise ReproError(f"--max-error must be > 0, got {arguments.max_error}")


def _with_sla(item, max_latency, max_error):
    """Apply the CLI's SLA knobs to one stream item.

    Only randomised count jobs are touched (exact methods reject the
    knobs by contract); jobs carrying their own knobs keep them.
    """
    from dataclasses import replace

    from .engine import CountJob

    if not isinstance(item, CountJob) or not item.is_randomised:
        return item
    knobs = {}
    if max_latency is not None and item.max_latency is None:
        knobs["max_latency"] = max_latency
    if max_error is not None and item.max_error is None:
        knobs["max_error"] = max_error
    return replace(item, **knobs) if knobs else item


def _run_batch(arguments: argparse.Namespace) -> int:
    """The ``batch`` command: load a job file, run it, print a JSON report."""
    # Imported lazily: the engine pulls in the process-pool machinery, which
    # the single-query commands never need.
    from .engine import CountJob, SolverPool, load_job_file

    try:
        if arguments.checkpoint_every is not None:
            if arguments.checkpoint_every < 1:
                raise ReproError("--checkpoint-every must be >= 1")
            if not arguments.persist_cache:
                raise ReproError("--checkpoint-every requires --persist-cache")
        _check_sla_flags(arguments)
        databases, jobs = load_job_file(arguments.jobs)
        if arguments.max_latency is not None or arguments.max_error is not None:
            jobs = [
                _with_sla(item, arguments.max_latency, arguments.max_error)
                for item in jobs
            ]
        pool = SolverPool(
            persist_dir=arguments.persist_cache,
            checkpoint_every=arguments.checkpoint_every,
        )
        for name, (database, keys) in databases.items():
            pool.register(name, database, keys)
        calibration = None
        if arguments.calibrate_from:
            held_out_databases, held_out = load_job_file(arguments.calibrate_from)
            for name, (database, keys) in held_out_databases.items():
                if name not in databases:
                    pool.register(name, database, keys)
            calibration = pool.calibrate_from(
                [item for item in held_out if isinstance(item, CountJob)]
            )
        report = pool.run_stream(jobs, workers=arguments.workers)
    except ReproError as exc:
        print(f"batch: {exc}", file=sys.stderr)
        return 2
    document = report.to_json()
    if calibration is not None:
        document["calibration"] = calibration
    print(json.dumps(document, indent=arguments.indent))
    return 0


def _run_serve(arguments: argparse.Namespace) -> int:
    """The ``serve`` command: job stream in, JSON-lines results out.

    Results are emitted in *completion* order, one JSON object per line,
    each carrying its stream ``index`` (and ``"type": "update"`` for delta
    reports) — the streaming shape a service client consumes.  With
    ``--stdin``, jobs are read lazily line by line after the job file's own
    jobs, so queue backpressure propagates to the input reader.

    With ``--http PORT`` the command becomes a network service instead:
    the job file only declares databases, the HTTP front binds to
    ``--host``/PORT (0 picks a free port), a single JSON ready line with
    the bound address is printed to stdout, and the process serves until
    interrupted.
    """
    import asyncio

    from .engine import CountJob, UpdateReport, load_job_file, parse_stream_item
    from .server import AsyncServer

    try:
        if arguments.checkpoint_every is not None:
            if arguments.checkpoint_every < 1:
                raise ReproError("--checkpoint-every must be >= 1")
            if not arguments.persist_cache:
                raise ReproError("--checkpoint-every requires --persist-cache")
        if arguments.auto_checkpoint:
            if arguments.checkpoint_every is not None:
                raise ReproError(
                    "--auto-checkpoint and --checkpoint-every are "
                    "mutually exclusive"
                )
            if not arguments.persist_cache:
                raise ReproError("--auto-checkpoint requires --persist-cache")
        if arguments.cache_max_bytes is not None:
            if arguments.cache_max_bytes < 0:
                raise ReproError("--cache-max-bytes must be >= 0")
            if not arguments.persist_cache:
                raise ReproError("--cache-max-bytes requires --persist-cache")
        _check_sla_flags(arguments)
        if arguments.http is not None and arguments.stdin:
            raise ReproError("--http and --stdin are mutually exclusive")
        databases, file_jobs = load_job_file(
            arguments.jobs,
            require_jobs=not (arguments.stdin or arguments.http is not None),
        )
        if arguments.http is not None and file_jobs:
            raise ReproError(
                "--http serves jobs over the network; the job file must "
                f"only declare databases (found {len(file_jobs)} jobs)"
            )
        held_out_jobs = []
        if arguments.calibrate_from:
            held_out_databases, held_out = load_job_file(arguments.calibrate_from)
            for name, pair in held_out_databases.items():
                databases.setdefault(name, pair)
            held_out_jobs = [
                item for item in held_out if isinstance(item, CountJob)
            ]
    except ReproError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2

    def stream_items():
        for item in file_jobs:
            yield _with_sla(item, arguments.max_latency, arguments.max_error)
        if arguments.stdin:
            for line in sys.stdin:
                line = line.strip()
                if not line:
                    continue
                payload = json.loads(line)
                item = parse_stream_item(payload)
                if item.database not in databases:
                    raise ReproError(
                        f"job references unknown database {item.database!r}; "
                        f"declared: {sorted(databases)}"
                    )
                yield _with_sla(item, arguments.max_latency, arguments.max_error)

    checkpoint_policy = None
    if arguments.auto_checkpoint:
        from .store import AdaptiveCheckpointPolicy

        checkpoint_policy = AdaptiveCheckpointPolicy()

    async def _serve() -> int:
        server = AsyncServer(
            shards=arguments.shards,
            queue_limit=arguments.queue_limit,
            policy=arguments.policy,
            persist_dir=arguments.persist_cache,
            persist_max_entries=arguments.cache_max_entries,
            persist_max_age=arguments.cache_max_age,
            persist_max_bytes=arguments.cache_max_bytes,
            checkpoint_every=arguments.checkpoint_every,
            checkpoint_policy=checkpoint_policy,
            rebalance_interval=arguments.rebalance_interval,
            max_imbalance=arguments.max_imbalance,
        )
        for name, (database, keys) in databases.items():
            server.register(name, database, keys)
        async with server:
            if held_out_jobs:
                calibration = await server.calibrate_from(held_out_jobs)
                print(
                    json.dumps({"calibration": calibration}), file=sys.stderr
                )
            if arguments.http is not None:
                from .server import HttpServer

                async with HttpServer(
                    server, host=arguments.host, port=arguments.http
                ) as front:
                    # The ready line: the one stdout line a launcher
                    # needs to find the (possibly OS-assigned) port.
                    print(
                        json.dumps(
                            {"http": {"host": front.host, "port": front.port}}
                        ),
                        flush=True,
                    )
                    await front.serve_forever()
                return 0
            async for result in server.results(stream_items()):
                payload = result.to_json()
                if isinstance(result, UpdateReport):
                    payload["type"] = "update"
                print(json.dumps(payload), flush=True)
            if arguments.stats:
                print(json.dumps(await server.stats()), file=sys.stderr)
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        # The expected way to stop `serve --http`: a clean exit, with the
        # asyncio.run teardown having stopped shards and connections.
        return 0
    except (ReproError, json.JSONDecodeError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2


def _run_history(arguments: argparse.Namespace) -> int:
    """The ``history`` command: print a name's persisted snapshot lineage.

    Reads the snapshot catalog straight from the store directory — no
    databases are loaded and no engine is started, so history is
    inspectable even while a server owns the data.  Checkpointed chain
    positions (full snapshots persisted for fast replay) are marked with
    ``*`` in the table (``"checkpoint": true`` in ``--json-lines``), and
    ``--limit`` keeps long compacted chains readable instead of dumping
    every record unconditionally.
    """
    from datetime import datetime, timezone

    from .store import SnapshotCatalog

    if arguments.limit < 0:
        print(
            f"history: --limit must be >= 0, got {arguments.limit}",
            file=sys.stderr,
        )
        return 2
    if arguments.json and arguments.json_lines:
        print("history: pass --json or --json-lines, not both", file=sys.stderr)
        return 2
    catalog = SnapshotCatalog(arguments.persist_cache)
    lineage = catalog.lineage(arguments.name)
    if not len(lineage):
        print(
            f"history: no recorded lineage for {arguments.name!r} in "
            f"{arguments.persist_cache}",
            file=sys.stderr,
        )
        return 2
    checkpointed = {
        record.sequence for record in catalog.checkpoints(arguments.name, lineage)
    }
    records = list(lineage)
    elided = 0
    if arguments.limit:
        elided = max(0, len(records) - arguments.limit)
        records = records[-arguments.limit:]
    if arguments.json:
        head = lineage.head
        document = {
            "name": arguments.name,
            "records": [
                {
                    **record.to_json(),
                    "checkpoint": record.sequence in checkpointed,
                }
                for record in records
            ],
            "head": head.digest,
            "versions": len(lineage),
            "checkpoints": sorted(checkpointed),
            "elided": elided,
            "compacted": sum(
                1
                for record in lineage
                if getattr(record, "compacted", None) is not None
            ),
        }
        print(json.dumps(document))
        return 0
    if elided and not arguments.json_lines:
        print(f"... ({elided} older record(s) elided; drop --limit to see all)")
    for record in records:
        marker = record.sequence in checkpointed
        if arguments.json_lines:
            payload = record.to_json()
            if marker:
                payload["checkpoint"] = True
            print(json.dumps(payload))
            continue
        stamp = datetime.fromtimestamp(record.wall_time, timezone.utc)
        parent = record.parent_digest[:12] if record.parent_digest else "-"
        compacted = getattr(record, "compacted", None)
        if record.delta is not None:
            change = f"+{len(record.delta.inserted)}/-{len(record.delta.deleted)}"
        elif compacted is not None:
            # Payload released by compaction; the recorded fact counts
            # remain — parentheses mark "counts only, not replayable".
            change = f"(+{compacted[0]}/-{compacted[1]})"
        else:
            change = "-"
        print(
            f"#{record.sequence}{'*' if marker else ' '} {record.kind:<8}  "
            f"{record.digest[:12]}  parent {parent:<12}  {change:<8}  "
            f"{stamp.strftime('%Y-%m-%dT%H:%M:%SZ')}"
        )
    head = lineage.head
    compacted_total = sum(
        1 for record in lineage if getattr(record, "compacted", None) is not None
    )
    print(
        f"head: {head.digest} ({len(lineage)} recorded version(s), "
        f"{len(checkpointed)} checkpoint(s))"
    )
    if compacted_total:
        print(
            f"compacted: {compacted_total} record(s) hold counts only "
            f"(in parentheses); their delta payloads were released and "
            f"non-checkpointed ancestors below them cannot be replayed"
        )
    return 0


def _parse_snapshot_ref(text: str) -> object:
    """Parse one CLI snapshot reference (rollback/range share the rule).

    Non-positive integers are chain indices ("-2" = two versions ago);
    anything else — including all-digit digest prefixes, which are
    necessarily positive — stays a digest string.
    """
    try:
        if int(text) <= 0:
            return int(text)
    except ValueError:
        pass
    return text


def _run_range(arguments: argparse.Namespace) -> int:
    """The ``range`` command: one query against every version in a range.

    Loads the current head snapshot, verifies it against the recorded
    chain (a stale input file must never count against the wrong
    history), and runs one :class:`CountJob` carrying ``as_of_range``
    through :meth:`SolverPool.run_range` — the engine materialises the
    whole range via a single shared replay walk, so an N-version range
    costs one chain traversal, not N.  Output is JSON-lines: one result
    document per version in range order, failed versions in band as
    ``{"index": …, "error": …}``, then a summary line on stderr.
    """
    from .engine import CountJob, SolverPool
    from .engine.executor import RangeFailure
    from .store import SnapshotCatalog

    database, keys = _load_instance(arguments)
    try:
        chain = SnapshotCatalog(arguments.persist_cache).lineage(arguments.name)
        head = chain.head
        if head is None:
            raise ReproError(
                f"no recorded lineage for {arguments.name!r} in "
                f"{arguments.persist_cache}"
            )
        if (
            database.content_digest(),
            keys.content_digest(),
        ) != (head.digest, head.keys_digest):
            raise ReproError(
                f"the provided snapshot ({database.content_digest()[:12]}) "
                f"is not the recorded head of {arguments.name!r} "
                f"({head.digest[:12]}); pass the current head database"
            )
        answer = _parse_answer(arguments.answer)
        job = CountJob(
            database=arguments.name,
            query=arguments.query,
            answer=answer,
            answer_variables=tuple(
                name.strip()
                for name in (arguments.answer_vars or "").split(",")
                if name.strip()
            ),
            method=arguments.method,
            epsilon=arguments.epsilon,
            delta=arguments.delta,
            seed=arguments.seed,
            as_of_range=(
                _parse_snapshot_ref(arguments.ref_lo),
                _parse_snapshot_ref(arguments.ref_hi),
            ),
        )
        pool = SolverPool(persist_dir=arguments.persist_cache)
        pool.register(arguments.name, database, keys)
        outcomes = pool.run_range(job)
    except ReproError as exc:
        print(f"range: {exc}", file=sys.stderr)
        return 2
    failures = 0
    for outcome in outcomes:
        if isinstance(outcome, RangeFailure):
            failures += 1
            payload = {
                "index": outcome.index,
                "error": {
                    "type": type(outcome.error).__name__,
                    "message": str(outcome.error),
                },
            }
        else:
            payload = outcome.to_json()
        print(json.dumps(payload), flush=True)
    print(
        f"range: {len(outcomes) - failures} result(s), {failures} failure(s) "
        f"over {len(outcomes)} version(s)",
        file=sys.stderr,
    )
    return 0 if failures == 0 else 1


def _run_checkpoint(arguments: argparse.Namespace) -> int:
    """The ``checkpoint`` command: compact the chain at the current head.

    Loads the head snapshot, verifies it against the recorded chain (a
    stale input file must never checkpoint the wrong state), persists the
    full database through the store's snapshot entries and marks the
    chain position in the catalog.  Later deep ``as_of`` replays — by any
    process sharing the store — start at this checkpoint.
    """
    from .engine import SolverPool
    from .store import SnapshotCatalog

    database, keys = _load_instance(arguments)
    try:
        chain = SnapshotCatalog(arguments.persist_cache).lineage(arguments.name)
        head = chain.head
        if head is None:
            # A typo'd name must not pollute the catalog with a new chain.
            raise ReproError(
                f"no recorded lineage for {arguments.name!r} in "
                f"{arguments.persist_cache}"
            )
        if (
            database.content_digest(),
            keys.content_digest(),
        ) != (head.digest, head.keys_digest):
            raise ReproError(
                f"the provided snapshot ({database.content_digest()[:12]}) "
                f"is not the recorded head of {arguments.name!r} "
                f"({head.digest[:12]}); pass the current head database"
            )
        pool = SolverPool(persist_dir=arguments.persist_cache)
        pool.register(arguments.name, database, keys)
        record = pool.checkpoint(arguments.name)
        if record is None:
            raise ReproError(
                f"the snapshot of {arguments.name!r} could not be persisted"
            )
    except ReproError as exc:
        print(f"checkpoint: {exc}", file=sys.stderr)
        return 2
    print(f"checkpointed: #{record.sequence} {record.digest}")
    print(f"checkpoints: {len(pool.checkpoints(arguments.name))}")
    return 0


def _run_rollback(arguments: argparse.Namespace) -> int:
    """The ``rollback`` command: make a recorded ancestor the head again.

    The ancestor is materialised by replaying the catalog's effective
    delta chain backwards from the provided head snapshot (digest-verified
    along the way), written to ``--output``, and recorded in the catalog
    as the new lineage head — so subsequent ``batch``/``serve`` runs that
    register the output file adopt the full history, rollback included.

    Everything is validated *before* the catalog is touched: the
    reference must resolve, and the provided snapshot must be the
    recorded head — a failed rollback (or a stale input file) must never
    move the persisted lineage.
    """
    from .db import save_json
    from .engine import SolverPool
    from .store import SnapshotCatalog

    database, keys = _load_instance(arguments)
    reference = _parse_snapshot_ref(arguments.digest)
    try:
        chain = SnapshotCatalog(arguments.persist_cache).lineage(arguments.name)
        if not len(chain):
            raise ReproError(
                f"no recorded lineage for {arguments.name!r} in "
                f"{arguments.persist_cache}"
            )
        chain.resolve(reference)  # unknown/ambiguous references fail here
        head = chain.head
        if (database.content_digest(), keys.content_digest()) != (
            head.digest,
            head.keys_digest,
        ):
            raise ReproError(
                f"the provided snapshot ({database.content_digest()[:12]}) "
                f"is not the recorded head of {arguments.name!r} "
                f"({head.digest[:12]}); pass the current head database"
            )
        pool = SolverPool(persist_dir=arguments.persist_cache)
        pool.register(arguments.name, database, keys)
        old_digest = pool.snapshot_token(arguments.name)[0]
        record = pool.rollback(arguments.name, reference)
        rolled_back, _ = pool.lookup(arguments.name)
    except ReproError as exc:
        print(f"rollback: {exc}", file=sys.stderr)
        return 2
    try:
        save_json(rolled_back, arguments.output, keys)
    except OSError as exc:
        print(f"rollback: cannot write {arguments.output}: {exc}", file=sys.stderr)
        return 2
    print(f"old head: {old_digest}")
    print(f"new head: {record.digest}")
    print(f"recorded: #{record.sequence} ({record.kind})")
    print(f"wrote: {arguments.output}")
    return 0


def _run_gc(arguments: argparse.Namespace) -> int:
    """The ``gc`` command: bound a store directory offline, report as JSON.

    Builds a cache coordinator over the store directory (no databases
    loaded, no engine started), pins the recorded head snapshots of the
    ``--pin`` names so live state survives any bound, and runs one GC
    pass.  The report shows, per on-disk layer, the current bytes, the
    observed decayed hit rate, the byte budget the hit-rate-per-byte
    split granted it (``--max-bytes``), and how many entries were
    evicted.  Catalog history (``*.rec``/``*.ckp``) is never collected.
    """
    from .engine.cache_coordinator import CacheCoordinator
    from .store import SnapshotCatalog

    try:
        if (
            arguments.max_entries is None
            and arguments.max_age is None
            and arguments.max_bytes is None
        ):
            raise ReproError(
                "pass at least one bound: --max-entries, --max-age "
                "or --max-bytes"
            )
        if arguments.max_entries is not None and arguments.max_entries < 0:
            raise ReproError("--max-entries must be >= 0")
        if arguments.max_age is not None and arguments.max_age < 0:
            raise ReproError("--max-age must be >= 0")
        if arguments.max_bytes is not None and arguments.max_bytes < 0:
            raise ReproError("--max-bytes must be >= 0")
        caches = CacheCoordinator(persist_dir=arguments.persist_cache)
        catalog = SnapshotCatalog(arguments.persist_cache)
        pinned = []
        for name in arguments.pin or []:
            head = catalog.lineage(name).head
            if head is None:
                raise ReproError(
                    f"cannot pin {name!r}: no recorded lineage in "
                    f"{arguments.persist_cache}"
                )
            pinned.append((head.digest, head.keys_digest))
        caches.set_pinned_tokens(pinned)
        plan = caches.plan_byte_budget(arguments.max_bytes)
        evictions = caches.collect_garbage(
            arguments.max_entries, arguments.max_age, arguments.max_bytes
        )
    except ReproError as exc:
        print(f"gc: {exc}", file=sys.stderr)
        return 2
    document = {
        "store": str(arguments.persist_cache),
        "pinned": list(arguments.pin or []),
        "max_entries": arguments.max_entries,
        "max_age": arguments.max_age,
        "max_bytes": arguments.max_bytes,
        "layers": {
            layer: {**plan[layer], "evicted": evictions[layer]}
            for layer in plan
        },
        "evicted": sum(evictions.values()),
    }
    print(json.dumps(document, indent=arguments.indent))
    return 0


def _run_update(arguments: argparse.Namespace) -> int:
    """The ``update`` command: database + delta -> next snapshot on disk."""
    from .db import Delta, save_json

    database, keys = _load_instance(arguments)
    try:
        payload = json.loads(Path(arguments.delta).read_text())
    except OSError as exc:
        print(f"update: cannot read delta file: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"update: delta file is not valid JSON: {exc}", file=sys.stderr)
        return 2
    try:
        delta = Delta.from_json(payload)
        really_inserted, really_deleted = delta.effective_against(database)
        touched_blocks = len(
            {keys.key_value(item) for item in really_inserted + really_deleted}
        )
        snapshot = database.freeze()
        updated = snapshot.apply_delta(delta)
    except ReproError as exc:
        print(f"update: {exc}", file=sys.stderr)
        return 2
    try:
        save_json(updated, arguments.output, keys)
    except OSError as exc:
        print(f"update: cannot write {arguments.output}: {exc}", file=sys.stderr)
        return 2
    print(f"facts: {len(snapshot)} -> {len(updated)}")
    print(f"inserted: {len(really_inserted)} (of {len(delta.inserted)} requested)")
    print(f"deleted: {len(really_deleted)} (of {len(delta.deleted)} requested)")
    print(f"touched blocks: {touched_blocks}")
    print(f"old digest: {snapshot.content_digest()}")
    print(f"new digest: {updated.content_digest()}")
    print(f"wrote: {arguments.output}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)

    if arguments.command == "batch":
        return _run_batch(arguments)

    if arguments.command == "serve":
        return _run_serve(arguments)

    if arguments.command == "range":
        return _run_range(arguments)

    if arguments.command == "history":
        return _run_history(arguments)

    if arguments.command == "rollback":
        return _run_rollback(arguments)

    if arguments.command == "checkpoint":
        return _run_checkpoint(arguments)

    if arguments.command == "gc":
        return _run_gc(arguments)

    if arguments.command == "update":
        return _run_update(arguments)

    database, keys = _load_instance(arguments)
    solver = CQASolver(database, keys, rng=getattr(arguments, "seed", None))

    if arguments.command == "inspect":
        decomposition = solver.decomposition
        print(f"facts: {len(database)}")
        print(f"relations: {', '.join(database.relation_names())}")
        print(f"keys: {', '.join(str(constraint) for constraint in keys) or '<none>'}")
        print(f"blocks: {len(decomposition)}")
        print(f"conflicting blocks: {len(decomposition.conflicting_blocks())}")
        print(f"consistent: {decomposition.is_consistent()}")
        print(f"total repairs: {decomposition.total_repairs()}")
        return 0

    if arguments.command == "repairs":
        print(f"total repairs: {solver.total_repairs()}")
        for index, repair in enumerate(solver.repairs(limit=arguments.list)):
            print(f"--- repair {index}")
            for item in repair.sorted_facts():
                print(f"  {item}")
        return 0

    query = _parse_cli_query(arguments)

    if arguments.command == "decide":
        entailed = solver.entails_some_repair(query, _parse_answer(arguments.answer))
        print("entailed by some repair" if entailed else "entailed by no repair")
        return 0

    if arguments.command == "count":
        result = solver.count(
            query,
            answer=_parse_answer(arguments.answer),
            method=arguments.method,
            epsilon=arguments.epsilon,
            delta=arguments.delta,
        )
        print(result)
        return 0

    if arguments.command == "rank":
        ranking = solver.answer_ranking(query)
        if arguments.top:
            ranking = ranking[: arguments.top]
        for entry in ranking:
            print(entry)
        return 0

    raise AssertionError(f"unhandled command {arguments.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
