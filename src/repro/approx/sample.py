"""Algorithm 3: the ``Sample`` primitive of the Λ[k] FPRAS.

Given a compactor ``M`` with solution domains ``S1, ..., Sn`` on input
``x``, ``Sample(x)`` draws one element uniformly and independently from
each domain and returns 1 iff the drawn point belongs to the unfolding of
``M(x, c)`` for some valid certificate ``c`` — i.e. iff the point lies in
the union of boxes whose size is the function value ``f(x)``.  Therefore

    ``Pr[Sample(x) = 1] = f(x) / |U|``     with ``U = S1 × ... × Sn``

(Lemma 6.3), which is the Bernoulli probability the FPRAS of Theorem 6.2
amplifies.

The implementation works with element *indices* (one integer per domain) so
it never materialises strings, and the membership test is a scan over the
certificate selectors.  A caller with a cheaper membership oracle (e.g. the
#CQA sampler, which can evaluate the query on the sampled repair) can pass
it in explicitly.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

from ..lams.compactor import Compactor
from ..lams.selectors import Selector

__all__ = ["draw_point", "point_in_union", "Sampler"]

#: A sampled point: one element index per solution domain.
Point = Tuple[int, ...]


def draw_point(domain_sizes: Sequence[int], rng: random.Random) -> Point:
    """Draw one element index uniformly from each domain (the ``choose`` step)."""
    return tuple(rng.randrange(size) for size in domain_sizes)


def point_in_union(point: Sequence[int], selectors: Sequence[Selector]) -> bool:
    """True iff the point lies in the box of at least one selector."""
    for selector in selectors:
        if all(point[index] == element for index, element in selector.pins):
            return True
    return False


class Sampler:
    """The ``Sample`` routine bound to a compactor and an input instance.

    Parameters
    ----------
    compactor:
        The compactor defining the function to approximate.
    instance:
        The input ``x``.
    rng:
        Random generator (or integer seed) for reproducibility.
    membership:
        Optional override for the membership test.  It receives the sampled
        point (element indices) and must return True iff the point lies in
        the union of boxes.  By default the certificate selectors are
        materialised once and scanned per sample.
    """

    def __init__(
        self,
        compactor: Compactor,
        instance,
        rng: Optional[random.Random | int] = None,
        membership: Optional[Callable[[Point], bool]] = None,
    ) -> None:
        self._compactor = compactor
        self._instance = instance
        if isinstance(rng, int):
            rng = random.Random(rng)
        self._rng = rng if rng is not None else random.Random()
        self._domain_sizes = compactor.domain_sizes(instance)
        if membership is None:
            selectors = compactor.selectors(instance)
            membership = lambda point: point_in_union(point, selectors)  # noqa: E731
        self._membership = membership

    @property
    def domain_sizes(self) -> Tuple[int, ...]:
        """Sizes of the solution domains of the bound instance."""
        return tuple(self._domain_sizes)

    @property
    def sample_space_size(self) -> int:
        """``|U| = Π_i |S_i|``."""
        size = 1
        for domain_size in self._domain_sizes:
            size *= domain_size
        return size

    def sample_point(self) -> Point:
        """Draw a uniform point of ``U`` (exposed for the #CQA sampler and tests)."""
        return draw_point(self._domain_sizes, self._rng)

    def sample(self) -> int:
        """One run of Algorithm 3: returns 1 or 0."""
        return 1 if self._membership(self.sample_point()) else 0

    def sample_many(self, count: int) -> int:
        """Number of successes over ``count`` independent runs."""
        return sum(self.sample() for _ in range(count))
