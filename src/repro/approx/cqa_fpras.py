"""The FPRAS for #CQA(Q, Σ) specialised to repairs (Corollary 6.4).

For an existential positive query the natural sample space of Theorem 6.2
is the set of repairs itself: one sample draws a uniformly random repair
(one fact per block, independently) and checks whether it entails the
query.  The estimate is ``|rep(D, Σ)|`` times the empirical hit rate, and
the sample size is ``(2+ε)·m^k/ε²·ln(2/δ)`` with ``m`` the largest block
and ``k`` the (per-disjunct) keywidth — both independent of the database
size beyond ``m``.

Two membership tests are available:

* ``"selectors"`` (default) — precompute the certificate selectors once and
  check the sampled choice vector against them; after the certificates are
  computed each sample costs O(#certificates · k).
* ``"evaluate"`` — materialise the sampled repair and evaluate the query on
  it with the generic evaluator.  Slower per sample but requires no
  certificate precomputation; used to cross-validate the selector path.

The relative-frequency estimator (:meth:`CQAFpras.estimate_frequency`) and
the repair-count estimator (:meth:`CQAFpras.estimate_count`) share the same
samples; the former is the quantity Section 1.1 motivates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ..db.blocks import BlockDecomposition
from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..db.facts import Constant
from ..errors import ApproximationError, FragmentError
from ..query.ast import Query
from ..query.classify import is_existential_positive
from ..query.evaluation import holds
from ..query.keywidth import max_disjunct_keywidth
from ..query.rewriting import UCQ, to_ucq, ucq_to_query
from ..query.substitution import bind_answer
from ..repairs.certificates import certificate_selectors, iter_certificates
from ..repairs.counting import PreparedCertificates
from .anytime import SamplingPlan
from .fpras import FPRASResult, sample_size
from .sample import point_in_union

__all__ = ["CQAFprasResult", "CQAFpras"]


@dataclass(frozen=True)
class CQAFprasResult:
    """Result of an FPRAS run for #CQA, in both count and frequency form."""

    estimate: float
    frequency_estimate: float
    total_repairs: int
    samples: int
    requested_samples: int
    successes: int
    epsilon: float
    delta: float
    keywidth: int
    max_block_size: int
    capped: bool


class CQAFpras:
    """FPRAS for ``#CQA(Q, Σ)`` with the natural (repair) sample space.

    Parameters
    ----------
    query:
        An existential positive query (Boolean, or non-Boolean together
        with an answer tuple passed to :meth:`estimate`).
    keys:
        The primary keys ``Σ``.
    membership:
        ``"selectors"`` or ``"evaluate"`` (see module docstring).
    max_samples:
        Optional cap on the number of samples; results are flagged
        ``capped=True`` when it truncates the theorem's prescription.
    """

    def __init__(
        self,
        query: Union[Query, UCQ],
        keys: PrimaryKeySet,
        membership: str = "selectors",
        max_samples: Optional[int] = None,
    ) -> None:
        if membership not in ("selectors", "evaluate"):
            raise ApproximationError(
                f"membership must be 'selectors' or 'evaluate', got {membership!r}"
            )
        if isinstance(query, Query) and not is_existential_positive(query):
            raise FragmentError(
                "the FPRAS of Corollary 6.4 requires an existential positive "
                "query; #CQA(FO) admits no FPRAS unless RP = NP (Theorem 6.1)"
            )
        self._query = query
        self._keys = keys
        self._membership = membership
        self._max_samples = max_samples

    def _boolean_ucq(self, answer: Sequence[Constant]) -> UCQ:
        query = self._query
        if isinstance(query, UCQ):
            if answer:
                raise FragmentError(
                    "binding an answer tuple to a pre-rewritten UCQ is not "
                    "supported; pass the Query instead"
                )
            return query
        if query.arity:
            return to_ucq(bind_answer(query, answer))
        if answer:
            raise FragmentError("a Boolean query takes no answer tuple")
        return to_ucq(query)

    def plan(
        self,
        database: Database,
        epsilon: float,
        delta: float,
        answer: Sequence[Constant] = (),
        rng: Optional[Union[random.Random, int]] = None,
        decomposition: Optional[BlockDecomposition] = None,
        prepared: Optional[PreparedCertificates] = None,
    ) -> SamplingPlan:
        """Prepare the FPRAS up to (but not including) the sampling loop.

        The returned :class:`~repro.approx.anytime.SamplingPlan` draws
        from the supplied ``rng`` in exactly the order the fixed
        ``estimate()`` loop would, so running it to its full budget is
        bit-identical to ``estimate()`` with the same seed.

        ``prepared`` optionally supplies a cached
        :class:`~repro.repairs.counting.PreparedCertificates` for the
        (answer-bound) query: its UCQ and selectors are then reused instead
        of being recomputed, which is how the batch engine amortises the
        certificate computation across repeated estimates.
        """
        if isinstance(rng, int):
            rng = random.Random(rng)
        elif rng is None:
            rng = random.Random()

        if prepared is not None:
            if answer:
                raise FragmentError(
                    "prepared certificates are already answer-bound; pass "
                    "answer=() when supplying them"
                )
            ucq = prepared.ucq
        else:
            ucq = self._boolean_ucq(answer)
        if decomposition is None:
            decomposition = BlockDecomposition(database, self._keys)
        block_sizes = decomposition.block_sizes()
        total_repairs = decomposition.total_repairs()
        max_block = decomposition.max_block_size()
        k = max_disjunct_keywidth(ucq, self._keys)

        requested = sample_size(epsilon, delta, max_block, k)
        samples = requested
        capped = False
        if self._max_samples is not None and requested > self._max_samples:
            samples = self._max_samples
            capped = True

        if self._membership == "selectors":
            if prepared is not None:
                selectors = prepared.selectors
            else:
                certificates = list(iter_certificates(database, self._keys, ucq))
                selectors = certificate_selectors(certificates, decomposition, self._keys)

            def hit(choices) -> bool:
                return point_in_union(choices, selectors)

        else:
            bound_query = ucq_to_query(ucq)

            def hit(choices) -> bool:
                repair = decomposition.repair_from_choices(choices)
                return holds(bound_query, repair)

        def draw() -> bool:
            choices = tuple(rng.randrange(size) for size in block_sizes)
            return hit(choices)

        def estimate_of(successes: int, samples_done: int) -> float:
            frequency = successes / samples_done if samples_done else 0.0
            return total_repairs * frequency

        def finalise(successes: int, samples_done: int) -> CQAFprasResult:
            frequency = successes / samples_done if samples_done else 0.0
            return CQAFprasResult(
                estimate=total_repairs * frequency,
                frequency_estimate=frequency,
                total_repairs=total_repairs,
                samples=samples_done,
                requested_samples=requested,
                successes=successes,
                epsilon=epsilon,
                delta=delta,
                keywidth=k,
                max_block_size=max_block,
                capped=capped,
            )

        return SamplingPlan(
            draw=draw,
            samples=samples,
            requested_samples=requested,
            scale=float(total_repairs),
            epsilon=epsilon,
            delta=delta,
            estimate_of=estimate_of,
            finalise=finalise,
        )

    def estimate(
        self,
        database: Database,
        epsilon: float,
        delta: float,
        answer: Sequence[Constant] = (),
        rng: Optional[Union[random.Random, int]] = None,
        decomposition: Optional[BlockDecomposition] = None,
        prepared: Optional[PreparedCertificates] = None,
    ) -> CQAFprasResult:
        """Run the FPRAS to its full budget and return the result record."""
        plan = self.plan(
            database,
            epsilon,
            delta,
            answer=answer,
            rng=rng,
            decomposition=decomposition,
            prepared=prepared,
        )
        successes = 0
        for _ in range(plan.samples):
            if plan.draw():
                successes += 1
        return plan.finalise(successes, plan.samples)

    def estimate_count(
        self,
        database: Database,
        epsilon: float,
        delta: float,
        answer: Sequence[Constant] = (),
        rng: Optional[Union[random.Random, int]] = None,
    ) -> float:
        """Convenience: the estimated number of repairs entailing the query."""
        return self.estimate(database, epsilon, delta, answer=answer, rng=rng).estimate

    def estimate_frequency(
        self,
        database: Database,
        epsilon: float,
        delta: float,
        answer: Sequence[Constant] = (),
        rng: Optional[Union[random.Random, int]] = None,
    ) -> float:
        """Convenience: the estimated relative frequency of the answer."""
        return self.estimate(
            database, epsilon, delta, answer=answer, rng=rng
        ).frequency_estimate
