"""Approximation schemes: the Λ[k] FPRAS and the Karp–Luby baseline.

Implements Section 6 of the paper: Algorithm 3 (``Sample``), the FPRAS of
Theorem 6.2 for every function in Λ[k], its specialisation to #CQA
(Corollary 6.4), and the Karp–Luby-style estimator over the complex sample
space that the paper inherits from Dalvi–Suciu and compares against.
"""

from .anytime import (
    AnytimeResult,
    IntervalSnapshot,
    SamplingPlan,
    hoeffding_half_width,
    run_plan,
)
from .calibration import ConformalCalibrator, conformal_quantile
from .cqa_fpras import CQAFpras, CQAFprasResult
from .fpras import FPRASResult, LambdaFPRAS, sample_size
from .karp_luby import (
    KarpLubyEstimator,
    KarpLubyResult,
    estimate_union_karp_luby,
    karp_luby_plan,
    karp_luby_sample_size,
)
from .sample import Sampler, draw_point, point_in_union
from .statistics import TrialSummary, empirical_error_rate, summarise_trials, wilson_interval

__all__ = [
    "AnytimeResult",
    "CQAFpras",
    "CQAFprasResult",
    "ConformalCalibrator",
    "FPRASResult",
    "IntervalSnapshot",
    "KarpLubyEstimator",
    "KarpLubyResult",
    "LambdaFPRAS",
    "Sampler",
    "SamplingPlan",
    "TrialSummary",
    "conformal_quantile",
    "draw_point",
    "empirical_error_rate",
    "estimate_union_karp_luby",
    "hoeffding_half_width",
    "karp_luby_plan",
    "karp_luby_sample_size",
    "point_in_union",
    "run_plan",
    "sample_size",
    "summarise_trials",
    "wilson_interval",
]
