"""The FPRAS of Theorem 6.2 for functions in Λ[k].

The estimator ``Apx_f`` runs ``Sample`` (Algorithm 3) ``t`` times with

    ``t = ⌈ (2+ε) · m^k / ε² · ln(2/δ) ⌉``,   ``m = max_i |S_i|``

and returns ``|U| / t · Σ X_i`` where ``X_i`` are the Bernoulli outcomes.
Chernoff's inequality, together with the structural lower bound
``f(x)/|U| ≥ 1/m^k`` that holds for every non-zero function in Λ[k]
(each valid certificate's box leaves at most ``k`` domains pinned, so it
alone covers a ``1/m^k`` fraction of ``U``), gives the FPRAS guarantee

    ``Pr[ |Apx_f(x, ε, δ) − f(x)| ≤ ε·f(x) ] ≥ 1 − δ``.

The simplicity the paper emphasises is visible in the code: the sample
space is the *natural* one (the product of the solution domains — for #CQA,
the repairs themselves) and one sample is just "pick one element per domain
uniformly, check membership".  The price is the ``m^k`` factor in the
sample size, which is why the scheme is only an FPRAS for *bounded*
keywidth / bounded clause width; the unbounded (SpanLL) problems need the
Karp–Luby-style estimator in :mod:`repro.approx.karp_luby`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Optional, Union

from ..errors import ApproximationError
from ..lams.compactor import Compactor
from .anytime import SamplingPlan
from .sample import Sampler

__all__ = ["FPRASResult", "sample_size", "LambdaFPRAS"]


@dataclass(frozen=True)
class FPRASResult:
    """Outcome of one FPRAS invocation, with its provenance.

    Attributes
    ----------
    estimate:
        The randomised estimate of ``f(x)``.
    samples:
        Number of ``Sample`` runs actually performed.
    requested_samples:
        The ``t`` prescribed by the theorem (equal to ``samples`` unless a
        cap was applied).
    successes:
        Number of samples that landed in the union of boxes.
    sample_space_size:
        ``|U| = Π_i |S_i|``.
    epsilon, delta:
        The accuracy and confidence parameters the run was configured with.
    capped:
        True when ``max_samples`` truncated the prescribed sample size — the
        theoretical guarantee then no longer applies and the caller is
        expected to surface that.
    """

    estimate: float
    samples: int
    requested_samples: int
    successes: int
    sample_space_size: int
    epsilon: float
    delta: float
    capped: bool

    @property
    def hit_rate(self) -> float:
        """Fraction of samples that hit the union (estimates ``f(x)/|U|``)."""
        if self.samples == 0:
            return 0.0
        return self.successes / self.samples


def sample_size(epsilon: float, delta: float, max_domain_size: int, k: int) -> int:
    """The sample bound ``t = ⌈(2+ε) m^k / ε² · ln(2/δ)⌉`` of Theorem 6.2."""
    if epsilon <= 0:
        raise ApproximationError(f"epsilon must be positive, got {epsilon}")
    if not 0 < delta < 1:
        raise ApproximationError(f"delta must lie in (0, 1), got {delta}")
    if max_domain_size <= 0:
        # An instance with no solution domains (n = 0) has |U| = 1 and the
        # function value is 0 or 1; one sample suffices.
        return 1
    if k < 0:
        raise ApproximationError(f"k must be non-negative, got {k}")
    bound = (2 + epsilon) * (max_domain_size ** k) / (epsilon ** 2) * math.log(2 / delta)
    return max(1, math.ceil(bound))


class LambdaFPRAS:
    """The estimator ``Apx_f`` for a function given by a compactor.

    Parameters
    ----------
    compactor:
        The k-compactor defining ``f``.  It must be bounded (``k`` finite);
        for unbounded compactors the natural-sample-space scheme is not an
        FPRAS (its sample size is exponential) — use
        :class:`repro.approx.karp_luby.KarpLubyEstimator` instead.
    k_override:
        Optional tighter bound on the selector length to use in the sample
        size formula.  Useful when the compactor's syntactic ``k`` is larger
        than the maximum number of domains any certificate actually pins
        (e.g. #CQA uses the per-disjunct keywidth).
    max_samples:
        Optional safety cap on the number of samples; when it truncates the
        prescribed ``t`` the result is flagged ``capped=True``.
    """

    def __init__(
        self,
        compactor: Compactor,
        k_override: Optional[int] = None,
        max_samples: Optional[int] = None,
    ) -> None:
        if compactor.k is None and k_override is None:
            raise ApproximationError(
                "the natural-sample-space FPRAS requires a bounded compactor; "
                "provide k_override or use the Karp-Luby estimator"
            )
        self._compactor = compactor
        self._k = k_override if k_override is not None else int(compactor.k)
        self._max_samples = max_samples

    @property
    def k(self) -> int:
        """The selector bound used in the sample-size formula."""
        return self._k

    def plan(
        self,
        instance,
        epsilon: float,
        delta: float,
        rng: Optional[Union[random.Random, int]] = None,
        membership: Optional[Callable] = None,
    ) -> SamplingPlan:
        """Prepare ``Apx_f`` up to (but not including) the sampling loop.

        The plan draws through the same :class:`Sampler` the fixed
        ``estimate()`` path uses, in the same order, so a full-budget run
        is bit-identical to ``estimate()`` with the same seed.
        """
        sampler = Sampler(self._compactor, instance, rng=rng, membership=membership)
        domain_sizes = sampler.domain_sizes
        max_domain = max(domain_sizes) if domain_sizes else 0
        requested = sample_size(epsilon, delta, max_domain, self._k)
        samples = requested
        capped = False
        if self._max_samples is not None and requested > self._max_samples:
            samples = self._max_samples
            capped = True
        space = sampler.sample_space_size

        def estimate_of(successes: int, samples_done: int) -> float:
            return space * successes / samples_done if samples_done else 0.0

        def finalise(successes: int, samples_done: int) -> FPRASResult:
            return FPRASResult(
                estimate=estimate_of(successes, samples_done),
                samples=samples_done,
                requested_samples=requested,
                successes=successes,
                sample_space_size=space,
                epsilon=epsilon,
                delta=delta,
                capped=capped,
            )

        return SamplingPlan(
            draw=lambda: sampler.sample() == 1,
            samples=samples,
            requested_samples=requested,
            scale=float(space),
            epsilon=epsilon,
            delta=delta,
            estimate_of=estimate_of,
            finalise=finalise,
        )

    def estimate(
        self,
        instance,
        epsilon: float,
        delta: float,
        rng: Optional[Union[random.Random, int]] = None,
        membership: Optional[Callable] = None,
    ) -> FPRASResult:
        """Run ``Apx_f(instance, ε, δ)`` and return the full result record."""
        plan = self.plan(
            instance, epsilon, delta, rng=rng, membership=membership
        )
        successes = 0
        for _ in range(plan.samples):
            if plan.draw():
                successes += 1
        return plan.finalise(successes, plan.samples)

    def __call__(
        self,
        instance,
        epsilon: float,
        delta: float,
        rng: Optional[Union[random.Random, int]] = None,
    ) -> float:
        """Convenience: return only the numeric estimate."""
        return self.estimate(instance, epsilon, delta, rng=rng).estimate
