"""Anytime drivers over the sampling estimators.

Both estimator families (the Λ[k] FPRAS of Theorem 6.2 and the
Karp–Luby-style estimator) share the same inner shape: a precomputation
phase that fixes the sample space, followed by a loop of independent
Bernoulli draws whose empirical mean — scaled by the sample-space mass —
is the estimate.  That loop is naturally *anytime*: stopping after ``n``
of the prescribed ``t`` samples still yields an unbiased estimate, just a
looser one.

This module makes that structural fact an API.  A
:class:`SamplingPlan` packages the precomputed draw closure together
with the prescribed sample budget and the scaling constant;
:func:`run_plan` consumes a plan in chunks, emitting a progressively
tightening :class:`IntervalSnapshot` stream and stopping on whichever of
``max_latency`` / ``max_error`` / the sample budget fires first.

Because the plan's ``draw`` closure consumes the *same* random stream in
the *same* order as the estimator's own ``estimate()`` loop, running a
plan to its full budget is bit-identical to the fixed-(ε, δ) path with
the same seed — the property ``tests/test_anytime_property.py`` pins.

Interval construction
---------------------

Each snapshot's interval is the running intersection of two per-chunk
intervals, so the stream is monotonically non-widening by construction:

* a **statistical** interval ``estimate ± hw`` with the Hoeffding-style
  half-width ``hw = scale · sqrt(ln(2/δ_c) / (2n))`` where
  ``δ_c = δ / (2c²)`` splits the confidence budget over chunks
  (``Σ 1/(2c²) < 1``, so the whole stream is a valid ``1−δ`` confidence
  sequence, not just each snapshot in isolation);
* a **deterministic feasibility band**: with ``s`` successes after ``n``
  of ``N`` budgeted samples, every future estimate lies in
  ``[scale·s/N, scale·(s+N−n)/N]`` — the bands are nested and always
  contain the final estimate, whatever the remaining draws do.

A :class:`~repro.approx.calibration.ConformalCalibrator` can rescale the
statistical half-width by its conformal quantile, replacing the loose
distribution-free Hoeffding radius with one tuned to the estimator's
observed residuals (see :mod:`repro.approx.calibration`).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..errors import ApproximationError

__all__ = [
    "SamplingPlan",
    "IntervalSnapshot",
    "AnytimeResult",
    "hoeffding_half_width",
    "run_plan",
]


@dataclass
class SamplingPlan:
    """A prepared estimator: everything but the sampling loop.

    Attributes
    ----------
    draw:
        One Bernoulli draw; consumes the random stream exactly as the
        owning estimator's ``estimate()`` loop does.
    samples:
        The prescribed (possibly capped) sample budget ``t``.
    requested_samples:
        The uncapped theorem prescription.
    scale:
        The sample-space mass: ``estimate = scale · successes/samples``.
    epsilon, delta:
        The accuracy/confidence parameters the plan was built for.
    estimate_of:
        ``(successes, samples) -> estimate`` using the owning
        estimator's exact float expression (bit-identity matters).
    finalise:
        ``(successes, samples) -> result record`` of the owning
        estimator's native result type.
    """

    draw: Callable[[], bool]
    samples: int
    requested_samples: int
    scale: float
    epsilon: float
    delta: float
    estimate_of: Callable[[int, int], float]
    finalise: Callable[[int, int], object]


@dataclass(frozen=True)
class IntervalSnapshot:
    """One emission of the anytime stream."""

    estimate: float
    lo: float
    hi: float
    samples: int
    elapsed: float

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def to_json(self) -> dict:
        return {
            "estimate": self.estimate,
            "lo": self.lo,
            "hi": self.hi,
            "samples": self.samples,
            "elapsed": self.elapsed,
        }


#: Stop reasons :func:`run_plan` can report.
STOP_REASONS = ("budget", "latency", "error")


@dataclass(frozen=True)
class AnytimeResult:
    """The full trace of one anytime run.

    ``raw_half_width`` is the *uncalibrated* statistical half-width at
    the final sample count — the residual scale a
    :class:`~repro.approx.calibration.ConformalCalibrator` should
    normalise by, even when the served interval was calibrated.
    """

    snapshots: Tuple[IntervalSnapshot, ...]
    stop_reason: str
    result: object
    calibrated: bool = False
    raw_half_width: float = 0.0

    @property
    def final(self) -> IntervalSnapshot:
        return self.snapshots[-1]

    @property
    def estimate(self) -> float:
        return self.final.estimate

    @property
    def interval(self) -> Tuple[float, float]:
        return (self.final.lo, self.final.hi)

    @property
    def samples(self) -> int:
        return self.final.samples

    @property
    def elapsed(self) -> float:
        return self.final.elapsed


def hoeffding_half_width(
    scale: float, delta: float, samples: int, chunk_index: int = 1
) -> float:
    """Half-width ``scale · sqrt(ln(2/δ_c)/(2n))`` with ``δ_c = δ/(2c²)``.

    The per-chunk confidence split keeps the whole snapshot stream a
    valid ``1−δ`` confidence sequence (``Σ_c 1/(2c²) = π²/12 < 1``).
    """
    if samples <= 0:
        return math.inf
    split = delta / (2.0 * chunk_index * chunk_index)
    return scale * math.sqrt(math.log(2.0 / split) / (2.0 * samples))


def run_plan(
    plan: SamplingPlan,
    max_latency: Optional[float] = None,
    max_error: Optional[float] = None,
    chunk_size: Optional[int] = None,
    calibrator=None,
    alpha: float = 0.1,
    clock: Callable[[], float] = time.monotonic,
) -> AnytimeResult:
    """Run a plan in chunks until a stopping condition fires.

    Parameters
    ----------
    plan:
        The prepared estimator (see the estimator ``plan()`` methods).
    max_latency:
        Wall-clock budget in seconds (checked after each chunk; at least
        one chunk always runs so there is always an estimate to serve).
    max_error:
        Relative-error target: stop once the interval satisfies
        ``hi − lo ≤ 2 · max_error · max(|estimate|, 1)``.
    chunk_size:
        Samples per chunk; defaults to ``⌈samples/32⌉``.
    calibrator:
        Optional :class:`~repro.approx.calibration.ConformalCalibrator`;
        when it holds observations, the statistical half-width is
        rescaled by its ``quantile(alpha)``.
    alpha:
        Miscoverage level for the calibrated interval.
    clock:
        Injectable monotonic clock (the latency SLA tests fake it).
    """
    if max_latency is not None and max_latency <= 0:
        raise ApproximationError(
            f"max_latency must be positive, got {max_latency}"
        )
    if max_error is not None and max_error <= 0:
        raise ApproximationError(f"max_error must be positive, got {max_error}")
    start = clock()
    total = plan.samples
    quantile: Optional[float] = None
    if calibrator is not None and len(calibrator):
        quantile = calibrator.quantile(alpha)
    if total <= 0:
        # Degenerate plan (e.g. a union with no boxes): the estimate is
        # an exact 0 and there is nothing to sample.
        snapshot = IntervalSnapshot(0.0, 0.0, 0.0, 0, clock() - start)
        return AnytimeResult(
            (snapshot,), "budget", plan.finalise(0, 0), quantile is not None
        )
    if chunk_size is None:
        chunk_size = max(1, math.ceil(total / 32))
    elif chunk_size < 1:
        raise ApproximationError(f"chunk_size must be >= 1, got {chunk_size}")

    snapshots = []
    lo_run, hi_run = -math.inf, math.inf
    done = 0
    successes = 0
    chunk_index = 0
    stop = "budget"
    while True:
        chunk_index += 1
        step = min(chunk_size, total - done)
        for _ in range(step):
            if plan.draw():
                successes += 1
        done += step
        elapsed = clock() - start
        estimate = plan.estimate_of(successes, done)
        raw_half_width = hoeffding_half_width(
            plan.scale, plan.delta, done, chunk_index
        )
        half_width = raw_half_width
        if quantile is not None:
            half_width = quantile * half_width
        # Deterministic feasibility band: whatever the remaining draws
        # do, every future estimate lies between "no more successes"
        # and "all remaining samples succeed".
        feasible_lo = plan.estimate_of(successes, total)
        feasible_hi = plan.estimate_of(successes + (total - done), total)
        lo = max(estimate - half_width, feasible_lo, 0.0)
        hi = min(estimate + half_width, feasible_hi)
        lo_run = max(lo_run, lo)
        hi_run = min(hi_run, hi)
        if hi_run < lo_run:  # statistical failure event; keep the stream sane
            hi_run = lo_run
        snapshots.append(
            IntervalSnapshot(estimate, lo_run, hi_run, done, elapsed)
        )
        if done >= total:
            stop = "budget"
            break
        if max_error is not None and hi_run - lo_run <= (
            2.0 * max_error * max(abs(estimate), 1.0)
        ):
            stop = "error"
            break
        if max_latency is not None and elapsed >= max_latency:
            stop = "latency"
            break
    return AnytimeResult(
        tuple(snapshots),
        stop,
        plan.finalise(successes, done),
        quantile is not None,
        raw_half_width,
    )
