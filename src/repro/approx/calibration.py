"""Conformal quantile calibration for the sampling estimators.

The Hoeffding-style intervals the anytime driver emits are
distribution-free but loose: they bound the worst case over every
Bernoulli mean, while a given workload's estimates concentrate much
faster.  Split conformal calibration closes that gap empirically.  Hold
out pairs of (estimate, exact count) produced by the batch engine,
normalise each residual by the interval half-width the estimator
reported,

    ``s_i = |exact_i − estimate_i| / uncertainty_i``,

sort the scores ascending, and take the score at index
``⌈n · (1 − α)⌉`` as the rescaling quantile ``q`` — exactly the
``calc_optimal_q`` sorted-score-quantile construction.  A calibrated
interval ``estimate ± q · uncertainty`` then has distribution-free
empirical coverage ``≥ 1 − α`` on exchangeable data, however badly the
raw half-width models the true sampling noise.

Edge cases follow the conformal prescription: an empty calibration set
cannot calibrate (raise), and ``n < 1/α`` observations cannot witness
the ``1 − α`` quantile at all — the calibrator then falls back to a
*conservative* quantile (never below 1, i.e. never tighter than the raw
interval) and flags it.

The calibrator is a plain value object with a JSON-friendly payload so
the store can persist it as a ``*.cal`` entry (see
:class:`repro.store.CalibrationDiskCache`).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import ApproximationError

__all__ = ["ConformalCalibrator", "conformal_quantile"]


def conformal_quantile(scores: Sequence[float], alpha: float) -> float:
    """The ``calc_optimal_q`` quantile of a score sample.

    Scores are sorted ascending and the entry at index
    ``⌈n · (1 − α)⌉`` (clamped into range) is returned.  With fewer than
    ``1/α`` scores the empirical distribution cannot witness the
    ``1 − α`` level; the fallback is ``max(1.0, max(scores))`` — never
    tighter than the uncalibrated interval.
    """
    if not 0.0 < alpha < 1.0:
        raise ApproximationError(f"alpha must lie in (0, 1), got {alpha}")
    ordered = sorted(scores)
    if not ordered:
        raise ApproximationError(
            "cannot compute a conformal quantile from an empty "
            "calibration set; observe (estimate, exact) pairs first"
        )
    count = len(ordered)
    if count * alpha < 1.0:
        return max(1.0, ordered[-1])
    index = min(math.ceil(count * (1.0 - alpha)), count - 1)
    return ordered[index]


class ConformalCalibrator:
    """Held-out residual scores and the interval rescaling they induce.

    Observations are (estimate, uncertainty, exact) triples: the
    estimator's point estimate, the raw interval half-width it reported,
    and the exact count the batch engine later produced for the same
    job.  ``uncertainty`` must be positive — a zero half-width carries
    no scale to normalise by.
    """

    def __init__(
        self, observations: Iterable[Tuple[float, float, float]] = ()
    ) -> None:
        self._observations: List[Tuple[float, float, float]] = []
        for estimate, uncertainty, exact in observations:
            self.observe(estimate, uncertainty, exact)

    # ------------------------------------------------------------------ #
    # accumulation
    # ------------------------------------------------------------------ #
    def observe(self, estimate: float, uncertainty: float, exact: float) -> None:
        """Record one held-out (estimate, exact) pair."""
        if not math.isfinite(uncertainty) or uncertainty <= 0:
            raise ApproximationError(
                f"uncertainty must be a positive finite half-width, "
                f"got {uncertainty}"
            )
        self._observations.append(
            (float(estimate), float(uncertainty), float(exact))
        )

    def __len__(self) -> int:
        return len(self._observations)

    @property
    def observations(self) -> Tuple[Tuple[float, float, float], ...]:
        return tuple(self._observations)

    def scores(self) -> List[float]:
        """The normalised residuals ``|exact − estimate| / uncertainty``."""
        return [
            abs(exact - estimate) / uncertainty
            for estimate, uncertainty, exact in self._observations
        ]

    # ------------------------------------------------------------------ #
    # calibration
    # ------------------------------------------------------------------ #
    def is_conservative(self, alpha: float) -> bool:
        """True when ``n < 1/α`` forces the conservative fallback."""
        return len(self._observations) * alpha < 1.0

    def quantile(self, alpha: float = 0.1) -> float:
        """The rescaling quantile ``q`` at miscoverage level ``alpha``."""
        return conformal_quantile(self.scores(), alpha)

    def calibrate(
        self, estimate: float, uncertainty: float, alpha: float = 0.1
    ) -> Tuple[float, float]:
        """Rescale a raw interval: ``estimate ± q · uncertainty``, lo ≥ 0."""
        quantile = self.quantile(alpha)
        margin = quantile * uncertainty
        return (max(0.0, estimate - margin), estimate + margin)

    def coverage(
        self,
        holdout: Iterable[Tuple[float, float, float]],
        alpha: float = 0.1,
    ) -> float:
        """Empirical coverage of the calibrated intervals on a holdout.

        ``holdout`` is a fresh set of (estimate, uncertainty, exact)
        triples; returns the fraction whose exact value lies inside the
        calibrated interval.  This is what benchmark E20 asserts to be
        ``≥ 1 − α`` (within sampling slack).
        """
        quantile = self.quantile(alpha)
        triples = list(holdout)
        if not triples:
            return 0.0
        hits = sum(
            1
            for estimate, uncertainty, exact in triples
            if abs(exact - estimate) <= quantile * uncertainty
        )
        return hits / len(triples)

    # ------------------------------------------------------------------ #
    # persistence (the *.cal store entry payload)
    # ------------------------------------------------------------------ #
    def to_payload(self) -> Dict[str, object]:
        return {
            "observations": [list(triple) for triple in self._observations]
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ConformalCalibrator":
        observations = payload.get("observations", [])
        if not isinstance(observations, (list, tuple)):
            raise ApproximationError(
                "malformed calibration payload: 'observations' must be a list"
            )
        return cls(tuple(triple) for triple in observations)

    def __repr__(self) -> str:
        return f"ConformalCalibrator({len(self._observations)} observations)"
