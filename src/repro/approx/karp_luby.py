"""Karp–Luby-style estimator over the "complex" sample space.

The FPRAS the paper inherits from Dalvi and Suciu [5] for query probability
over disjoint-independent probabilistic databases does *not* sample from the
natural space of possible worlds: that would need exponentially many samples
when the target probability is tiny.  Instead it samples from the space of
pairs ``(certificate, world-inside-the-certificate's-box)`` — the classical
Karp–Luby union-of-sets estimator.  The paper's discussion at the end of
Section 6 and in Section 7.2 contrasts its own natural-sample-space scheme
(simple, but with an ``m^k`` sample factor) against this one (slightly more
involved, but polynomial even for unbounded selector length).  Benchmarks
E6 and E11 measure exactly that trade-off.

The estimator implemented here works for any finite union of boxes, so it
covers #CQA, #DisjPoskDNF/#DisjPosDNF and #kForbColoring/#ForbColoring
uniformly:

1. compute the box sizes ``|box_1|, ..., |box_N|`` and their sum ``T``,
2. per sample: pick a box ``j`` with probability ``|box_j| / T``, pick a
   point uniformly inside ``box_j``, and output the indicator that ``j`` is
   the *first* (lowest-index) box containing that point,
3. the estimate is ``T`` times the sample mean.

The mean of the indicator is ``|union| / T ≥ 1/N``, so ``O(N/ε² · ln(1/δ))``
samples give an (ε, δ) guarantee — with ``N`` the number of certificates,
never ``m^k``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import ApproximationError
from ..lams.compactor import Compactor
from ..lams.selectors import Selector
from .anytime import SamplingPlan

__all__ = [
    "KarpLubyResult",
    "karp_luby_sample_size",
    "KarpLubyEstimator",
    "estimate_union_karp_luby",
    "karp_luby_plan",
]


@dataclass(frozen=True)
class KarpLubyResult:
    """Outcome of a Karp–Luby estimation run."""

    estimate: float
    samples: int
    successes: int
    total_box_mass: int
    boxes: int
    epsilon: float
    delta: float

    @property
    def hit_rate(self) -> float:
        """Fraction of samples whose box was the first containing the point."""
        if self.samples == 0:
            return 0.0
        return self.successes / self.samples


def karp_luby_sample_size(epsilon: float, delta: float, boxes: int) -> int:
    """Sample bound ``t = ⌈(2+ε) · N / ε² · ln(2/δ)⌉`` for ``N`` boxes.

    Mirrors the Chernoff argument of Theorem 6.2 with the lower bound
    ``|union| / T ≥ 1/N`` replacing ``f(x)/|U| ≥ 1/m^k``.
    """
    if epsilon <= 0:
        raise ApproximationError(f"epsilon must be positive, got {epsilon}")
    if not 0 < delta < 1:
        raise ApproximationError(f"delta must lie in (0, 1), got {delta}")
    if boxes <= 0:
        return 1
    bound = (2 + epsilon) * boxes / (epsilon ** 2) * math.log(2 / delta)
    return max(1, math.ceil(bound))


def _box_size(domain_sizes: Sequence[int], selector: Selector) -> int:
    pinned = set(selector.pinned_indices())
    size = 1
    for index, domain_size in enumerate(domain_sizes):
        if index not in pinned:
            size *= domain_size
    return size


def karp_luby_plan(
    domain_sizes: Sequence[int],
    selectors: Sequence[Selector],
    epsilon: float,
    delta: float,
    rng: Optional[Union[random.Random, int]] = None,
    max_samples: Optional[int] = None,
) -> SamplingPlan:
    """Prepare the Karp–Luby estimator up to the sampling loop.

    The plan draws from ``rng`` in exactly the order
    :func:`estimate_union_karp_luby` would, so a full-budget run is
    bit-identical to the fixed path with the same seed.  A union with no
    boxes yields a degenerate plan with a zero sample budget.
    """
    if isinstance(rng, int):
        rng = random.Random(rng)
    elif rng is None:
        rng = random.Random()

    sizes = tuple(domain_sizes)
    boxes = list(selectors)
    if not boxes:
        def finalise_empty(successes: int, samples_done: int) -> KarpLubyResult:
            return KarpLubyResult(0.0, 0, 0, 0, 0, epsilon, delta)

        return SamplingPlan(
            draw=lambda: False,
            samples=0,
            requested_samples=0,
            scale=0.0,
            epsilon=epsilon,
            delta=delta,
            estimate_of=lambda successes, samples_done: 0.0,
            finalise=finalise_empty,
        )

    box_sizes = [_box_size(sizes, selector) for selector in boxes]
    total_mass = sum(box_sizes)
    requested = karp_luby_sample_size(epsilon, delta, len(boxes))
    samples = requested
    if max_samples is not None:
        samples = min(samples, max_samples)

    # Cumulative distribution for box selection proportional to box size.
    cumulative: List[int] = []
    running = 0
    for size in box_sizes:
        running += size
        cumulative.append(running)

    def draw() -> bool:
        # Pick the box.
        target = rng.randrange(total_mass)
        box_index = _bisect(cumulative, target)
        selector = boxes[box_index]
        pinned = selector.as_dict()
        # Pick a uniform point inside the box.
        point = tuple(
            pinned[index] if index in pinned else rng.randrange(size)
            for index, size in enumerate(sizes)
        )
        # Indicator: is the chosen box the first one containing the point?
        return _first_containing(boxes, point) == box_index

    def estimate_of(successes: int, samples_done: int) -> float:
        return total_mass * successes / samples_done if samples_done else 0.0

    def finalise(successes: int, samples_done: int) -> KarpLubyResult:
        return KarpLubyResult(
            estimate=estimate_of(successes, samples_done),
            samples=samples_done,
            successes=successes,
            total_box_mass=total_mass,
            boxes=len(boxes),
            epsilon=epsilon,
            delta=delta,
        )

    return SamplingPlan(
        draw=draw,
        samples=samples,
        requested_samples=requested,
        scale=float(total_mass),
        epsilon=epsilon,
        delta=delta,
        estimate_of=estimate_of,
        finalise=finalise,
    )


def estimate_union_karp_luby(
    domain_sizes: Sequence[int],
    selectors: Sequence[Selector],
    epsilon: float,
    delta: float,
    rng: Optional[Union[random.Random, int]] = None,
    max_samples: Optional[int] = None,
) -> KarpLubyResult:
    """Estimate ``|⋃ boxes|`` with the Karp–Luby estimator.

    ``domain_sizes`` and ``selectors`` describe the boxes exactly as in
    :mod:`repro.lams.union_of_boxes`; the answer approximates the same
    quantity that :func:`~repro.lams.union_of_boxes.count_union_of_boxes`
    computes exactly.
    """
    plan = karp_luby_plan(
        domain_sizes, selectors, epsilon, delta, rng=rng, max_samples=max_samples
    )
    successes = 0
    for _ in range(plan.samples):
        if plan.draw():
            successes += 1
    return plan.finalise(successes, plan.samples)


def _bisect(cumulative: Sequence[int], target: int) -> int:
    """Index of the first cumulative value strictly greater than ``target``."""
    low, high = 0, len(cumulative) - 1
    while low < high:
        middle = (low + high) // 2
        if cumulative[middle] > target:
            high = middle
        else:
            low = middle + 1
    return low


def _first_containing(boxes: Sequence[Selector], point: Sequence[int]) -> int:
    for index, selector in enumerate(boxes):
        if all(point[coordinate] == element for coordinate, element in selector.pins):
            return index
    raise AssertionError("the sampled point must lie in its own box")


class KarpLubyEstimator:
    """Karp–Luby estimator bound to a compactor (the baseline of E6/E11)."""

    def __init__(self, compactor: Compactor, max_samples: Optional[int] = None) -> None:
        self._compactor = compactor
        self._max_samples = max_samples

    def plan(
        self,
        instance,
        epsilon: float,
        delta: float,
        rng: Optional[Union[random.Random, int]] = None,
    ) -> SamplingPlan:
        """Prepare an anytime plan over the compactor's boxes."""
        return karp_luby_plan(
            self._compactor.domain_sizes(instance),
            self._compactor.selectors(instance),
            epsilon,
            delta,
            rng=rng,
            max_samples=self._max_samples,
        )

    def estimate(
        self,
        instance,
        epsilon: float,
        delta: float,
        rng: Optional[Union[random.Random, int]] = None,
    ) -> KarpLubyResult:
        """Estimate ``unfold_M(instance)`` from the compactor's boxes."""
        return estimate_union_karp_luby(
            self._compactor.domain_sizes(instance),
            self._compactor.selectors(instance),
            epsilon,
            delta,
            rng=rng,
            max_samples=self._max_samples,
        )

    def __call__(
        self,
        instance,
        epsilon: float,
        delta: float,
        rng: Optional[Union[random.Random, int]] = None,
    ) -> float:
        """Convenience: return only the numeric estimate."""
        return self.estimate(instance, epsilon, delta, rng=rng).estimate
