"""Small statistics helpers for the approximation schemes and benchmarks.

Nothing here is specific to the paper; these are the standard utilities an
FPRAS implementation and its experimental evaluation need: summarising
repeated trials, empirical error rates against a known exact value, and
binomial confidence intervals for "was the error within ε" indicator
experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = ["TrialSummary", "summarise_trials", "empirical_error_rate", "wilson_interval"]


@dataclass(frozen=True)
class TrialSummary:
    """Summary statistics of repeated estimator runs against an exact value."""

    exact: float
    estimates: Tuple[float, ...]
    epsilon: float

    @property
    def trials(self) -> int:
        return len(self.estimates)

    @property
    def mean(self) -> float:
        if not self.estimates:
            return 0.0
        return sum(self.estimates) / len(self.estimates)

    @property
    def max_relative_error(self) -> float:
        """Largest |estimate - exact| / exact over the trials (0 if exact is 0)."""
        if not self.estimates:
            return 0.0
        if self.exact == 0:
            return max(abs(estimate) for estimate in self.estimates)
        return max(abs(estimate - self.exact) / self.exact for estimate in self.estimates)

    @property
    def mean_relative_error(self) -> float:
        """Mean relative error over the trials."""
        if not self.estimates:
            return 0.0
        if self.exact == 0:
            return sum(abs(estimate) for estimate in self.estimates) / len(self.estimates)
        return sum(
            abs(estimate - self.exact) / self.exact for estimate in self.estimates
        ) / len(self.estimates)

    @property
    def within_epsilon_rate(self) -> float:
        """Fraction of trials with relative error at most ε.

        The FPRAS guarantee of Theorem 6.2 says this should be at least
        ``1 - δ``; benchmark E5 reports it per configuration.
        """
        if not self.estimates:
            return 0.0
        if self.exact == 0:
            hits = sum(1 for estimate in self.estimates if estimate == 0)
        else:
            hits = sum(
                1
                for estimate in self.estimates
                if abs(estimate - self.exact) <= self.epsilon * self.exact
            )
        return hits / len(self.estimates)


def summarise_trials(
    exact: float, estimates: Sequence[float], epsilon: float
) -> TrialSummary:
    """Package repeated estimates of a known exact value into a summary."""
    return TrialSummary(exact, tuple(estimates), epsilon)


def empirical_error_rate(
    run_estimator: Callable[[], float],
    exact: float,
    epsilon: float,
    trials: int,
) -> TrialSummary:
    """Run ``run_estimator`` ``trials`` times and summarise against ``exact``."""
    estimates = [run_estimator() for _ in range(trials)]
    return summarise_trials(exact, estimates, epsilon)


def wilson_interval(successes: int, trials: int, confidence: float = 0.95) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Used when reporting "fraction of runs within ε" so the benchmark tables
    carry an honest uncertainty estimate rather than a bare point estimate.
    """
    if trials == 0:
        return (0.0, 1.0)
    # Normal quantile for the given two-sided confidence level.
    z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}.get(round(confidence, 2))
    if z is None:
        # Fallback: Beasley-Springer-Moro style approximation is overkill here;
        # default to the 95% quantile for unusual confidence levels.
        z = 1.9600
    proportion = successes / trials
    denominator = 1 + z * z / trials
    centre = (proportion + z * z / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(proportion * (1 - proportion) / trials + z * z / (4 * trials * trials))
        / denominator
    )
    return (max(0.0, centre - margin), min(1.0, centre + margin))
