"""Query workloads: canonical queries and random query generation.

The cost profile of every algorithm in the library is governed by the
keywidth of the query, so the generator here produces conjunctive queries
and UCQs with a *prescribed* keywidth over the synthetic schemas of
:mod:`repro.workloads.generators`.  A handful of canonical queries (the
paper's Example 1.1 among them) are also provided by name for tests,
examples and benchmarks.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..db.constraints import PrimaryKeySet
from ..query.ast import Atom, Query, Variable
from ..query.builders import conjunctive_query, union_query, var
from ..query.keywidth import keywidth

__all__ = [
    "employee_same_department_query",
    "star_join_query",
    "random_conjunctive_query",
    "random_ucq",
]


def employee_same_department_query() -> Query:
    """The Boolean query of Example 1.1: employees 1 and 2 share a department."""
    x, y, z = var("x"), var("y"), var("z")
    return conjunctive_query(
        [Atom("Employee", (1, x, y)), Atom("Employee", (2, z, y))],
        name="same-department",
    )


def star_join_query(
    relations: Sequence[str], shared_position: int = 2, name: Optional[str] = None
) -> Query:
    """A star join: one atom per relation, all sharing one non-key variable.

    With every relation keyed on its first attribute this query has keywidth
    ``len(relations)``, making it a convenient family for scaling keywidth
    in benchmarks (E5's ``m^k`` effect).
    """
    shared = var("shared")
    atoms = []
    for index, relation in enumerate(relations):
        key_variable = var(f"k{index}")
        terms: List[object] = [key_variable, shared]
        atoms.append(Atom(relation, tuple(terms)))
    return conjunctive_query(atoms, name=name or f"star-{len(relations)}")


def random_conjunctive_query(
    relations: Dict[str, int],
    keys: PrimaryKeySet,
    target_keywidth: int,
    extra_unkeyed_atoms: int = 0,
    join_probability: float = 0.5,
    seed: Optional[Union[int, random.Random]] = None,
) -> Query:
    """A random Boolean CQ with exactly ``target_keywidth`` keyed atoms.

    Parameters
    ----------
    relations:
        ``{relation: arity}`` of the schema the query ranges over.
    keys:
        The primary keys; atoms over keyed relations count towards the
        keywidth.
    target_keywidth:
        Number of atoms over keyed relations the query must contain.
    extra_unkeyed_atoms:
        Additional atoms over unkeyed relations (0 if the schema has none).
    join_probability:
        Probability that a new atom reuses an existing variable in one of
        its positions (controls how connected the query is).
    """
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    keyed_relations = [name for name in relations if keys.has_key(name)]
    unkeyed_relations = [name for name in relations if not keys.has_key(name)]
    if target_keywidth > 0 and not keyed_relations:
        raise ValueError("no keyed relations available to reach the target keywidth")
    if extra_unkeyed_atoms > 0 and not unkeyed_relations:
        raise ValueError("no unkeyed relations available for extra atoms")

    atoms: List[Atom] = []
    variable_pool: List[Variable] = []
    variable_counter = 0

    def fresh_variable() -> Variable:
        nonlocal variable_counter
        variable_counter += 1
        variable = Variable(f"q{variable_counter}")
        variable_pool.append(variable)
        return variable

    def make_atom(relation: str) -> Atom:
        arity = relations[relation]
        terms: List[object] = []
        for _ in range(arity):
            if variable_pool and rng.random() < join_probability:
                terms.append(rng.choice(variable_pool))
            else:
                terms.append(fresh_variable())
        return Atom(relation, tuple(terms))

    for _ in range(target_keywidth):
        atoms.append(make_atom(rng.choice(keyed_relations)))
    for _ in range(extra_unkeyed_atoms):
        atoms.append(make_atom(rng.choice(unkeyed_relations)))
    rng.shuffle(atoms)
    query = conjunctive_query(atoms, name=f"random-cq-kw{target_keywidth}")
    assert keywidth(query, keys) == target_keywidth
    return query


def random_ucq(
    relations: Dict[str, int],
    keys: PrimaryKeySet,
    disjuncts: int,
    keywidth_per_disjunct: int,
    seed: Optional[Union[int, random.Random]] = None,
) -> Query:
    """A random Boolean UCQ: a disjunction of independent random CQs."""
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    atom_lists = []
    for _ in range(disjuncts):
        disjunct = random_conjunctive_query(
            relations, keys, keywidth_per_disjunct, seed=rng
        )
        atom_lists.append(disjunct.atoms())
    return union_query(atom_lists, name=f"random-ucq-{disjuncts}x{keywidth_per_disjunct}")
