"""Synthetic workload generators.

The paper has no published datasets (it is a theory paper), so the
experiment suite runs on controlled synthetic workloads.  The generators
here produce inconsistent databases with tunable conflict structure — the
parameters that drive every algorithm's cost are the number of blocks, the
block-size distribution and the fraction of conflicting blocks — plus
random instances of the companion problems (CNF formulas, positive DNFs,
hypergraph colouring instances, graphs).

All generators take an explicit seed (or :class:`random.Random`) so every
experiment in EXPERIMENTS.md is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..db.facts import Fact
from ..problems.coloring import ForbiddenColoringInstance
from ..problems.dnf import DisjointPositiveDNF, PositiveDNF
from ..problems.graphs import Graph
from ..problems.sat import CNFFormula, Literal

__all__ = [
    "InconsistentDatabaseSpec",
    "random_inconsistent_database",
    "random_cnf",
    "random_positive_dnf",
    "random_disjoint_positive_dnf",
    "random_forbidden_coloring",
    "random_graph",
]


def _rng(seed: Optional[Union[int, random.Random]]) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


@dataclass(frozen=True)
class InconsistentDatabaseSpec:
    """Parameters of a synthetic inconsistent database.

    Attributes
    ----------
    relations:
        ``{relation name: arity}``; the first attribute of each relation is
        its key.
    blocks_per_relation:
        Number of blocks (distinct key values) per relation.
    conflict_rate:
        Fraction of blocks that are conflicting (size ≥ 2).
    max_block_size:
        Largest block size; conflicting blocks draw their size uniformly
        from ``{2, ..., max_block_size}``.
    domain_size:
        Number of distinct non-key constants to draw values from.
    """

    relations: Dict[str, int]
    blocks_per_relation: int = 50
    conflict_rate: float = 0.3
    max_block_size: int = 4
    domain_size: int = 40


def random_inconsistent_database(
    spec: InconsistentDatabaseSpec,
    seed: Optional[Union[int, random.Random]] = None,
) -> Tuple[Database, PrimaryKeySet]:
    """Generate an inconsistent database matching ``spec``.

    Each relation ``R/n`` gets ``blocks_per_relation`` key values; a block
    is conflicting with probability ``conflict_rate`` and then holds between
    2 and ``max_block_size`` facts that agree on the key but differ in at
    least one non-key position.
    """
    rng = _rng(seed)
    facts: List[Fact] = []
    for relation, arity in spec.relations.items():
        if arity < 2:
            raise ValueError(
                f"relation {relation!r} needs arity >= 2 so conflicting facts "
                f"can differ outside the key"
            )
        for block_index in range(spec.blocks_per_relation):
            key_value = f"{relation.lower()}_{block_index}"
            if rng.random() < spec.conflict_rate and spec.max_block_size >= 2:
                block_size = rng.randint(2, spec.max_block_size)
            else:
                block_size = 1
            seen_payloads = set()
            for _ in range(block_size):
                while True:
                    payload = tuple(
                        f"v{rng.randrange(spec.domain_size)}" for _ in range(arity - 1)
                    )
                    if payload not in seen_payloads:
                        seen_payloads.add(payload)
                        break
                facts.append(Fact(relation, (key_value,) + payload))
    keys = PrimaryKeySet.from_dict({relation: [1] for relation in spec.relations})
    return Database(facts), keys


def random_cnf(
    variables: int,
    clauses: int,
    clause_width: int = 3,
    seed: Optional[Union[int, random.Random]] = None,
) -> CNFFormula:
    """A random CNF formula with the given shape (variables named ``x1..``)."""
    rng = _rng(seed)
    names = [f"x{index + 1}" for index in range(variables)]
    built = []
    for _ in range(clauses):
        chosen = rng.sample(names, min(clause_width, variables))
        built.append(tuple(Literal(name, rng.random() < 0.5) for name in chosen))
    return CNFFormula(tuple(built))


def random_positive_dnf(
    variables: int,
    clauses: int,
    clause_width: int = 2,
    seed: Optional[Union[int, random.Random]] = None,
) -> PositiveDNF:
    """A random positive kDNF formula over ``{0,1}`` variables."""
    rng = _rng(seed)
    names = tuple(f"x{index + 1}" for index in range(variables))
    built = []
    for _ in range(clauses):
        width = rng.randint(1, min(clause_width, variables))
        built.append(tuple(rng.sample(names, width)))
    return PositiveDNF(names, tuple(built))


def random_disjoint_positive_dnf(
    parts: int,
    part_size: int,
    clauses: int,
    clause_width: int = 2,
    seed: Optional[Union[int, random.Random]] = None,
) -> DisjointPositiveDNF:
    """A random #DisjPoskDNF instance with uniformly sized parts.

    Clauses pick distinct parts and one variable from each, so every clause
    is a valid certificate (satisfiable by some P-assignment).
    """
    rng = _rng(seed)
    partition = tuple(
        tuple(f"p{part_index}_v{variable_index}" for variable_index in range(part_size))
        for part_index in range(parts)
    )
    built = []
    for _ in range(clauses):
        width = rng.randint(1, min(clause_width, parts))
        chosen_parts = rng.sample(range(parts), width)
        built.append(tuple(rng.choice(partition[part_index]) for part_index in chosen_parts))
    return DisjointPositiveDNF(partition, tuple(built))


def random_forbidden_coloring(
    nodes: int,
    edges: int,
    uniformity: int = 2,
    colors: int = 3,
    forbidden_per_edge: int = 2,
    seed: Optional[Union[int, random.Random]] = None,
) -> ForbiddenColoringInstance:
    """A random #kForbColoring instance on ``nodes`` nodes."""
    rng = _rng(seed)
    node_names = [f"n{index}" for index in range(nodes)]
    palette = {node: tuple(f"c{index}" for index in range(colors)) for node in node_names}
    edge_list: List[Tuple[str, ...]] = []
    forbidden: List[List[Dict[str, str]]] = []
    for _ in range(edges):
        edge = tuple(rng.sample(node_names, min(uniformity, nodes)))
        edge_list.append(edge)
        edge_forbidden = []
        for _ in range(forbidden_per_edge):
            edge_forbidden.append({node: rng.choice(palette[node]) for node in edge})
        forbidden.append(edge_forbidden)
    return ForbiddenColoringInstance(palette, edge_list, forbidden)


def random_graph(
    vertices: int,
    edge_probability: float = 0.3,
    seed: Optional[Union[int, random.Random]] = None,
) -> Graph:
    """An Erdős–Rényi style random graph on ``vertices`` vertices."""
    rng = _rng(seed)
    names = [f"v{index}" for index in range(vertices)]
    edges = [
        (names[i], names[j])
        for i in range(vertices)
        for j in range(i + 1, vertices)
        if rng.random() < edge_probability
    ]
    return Graph(names, edges)
