"""Batch workloads: mixed-scenario job streams for the counting engine.

The batch engine (:mod:`repro.engine`) is exercised by streams of jobs that
interleave databases, queries and methods the way a serving workload would:
repeated queries over a few hot databases (cache hits), occasional cold
databases (cache misses), and a mix of exact and randomised methods.
:func:`batch_workload` generates exactly that, deterministically from a
seed, over the named scenarios plus synthetic random instances.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..db.blocks import BlockDecomposition
from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..engine.jobs import CountJob
from ..query.ast import Query
from ..query.classify import is_existential_positive
from ..query.evaluation import answers as evaluate_answers
from ..repairs.counting import PreparedCertificates, prepare_certificates
from .generators import InconsistentDatabaseSpec, random_inconsistent_database
from .queries import random_conjunctive_query
from .scenarios import election_registry, employee_example, hr_analytics, sensor_fusion

__all__ = ["batch_workload"]

#: Above this many repairs the naive counter is excluded from generated jobs.
_NAIVE_REPAIR_LIMIT = 50_000
#: Forced inclusion-exclusion is exponential in the box count; cap it.
_INCLUSION_EXCLUSION_BOX_LIMIT = 16
#: Forced enumeration is bounded by the support space; cap it.
_ENUMERATION_SPACE_LIMIT = 200_000


def _job_text(query: Query) -> Tuple[str, Tuple[str, ...]]:
    """Serialise a query AST to the job format (formula text, answer vars)."""
    return str(query.formula), tuple(variable.name for variable in query.answer_variables)


def batch_workload(
    jobs: int = 40,
    seed: int = 0,
    synthetic_databases: int = 2,
    methods: Sequence[str] = ("auto", "certificate", "inclusion-exclusion", "fpras", "karp-luby"),
    epsilon: float = 0.25,
    delta: float = 0.2,
) -> Tuple[Dict[str, Tuple[Database, PrimaryKeySet]], List[CountJob]]:
    """Generate a mixed-scenario batch: databases plus a job stream.

    Returns ``(databases, jobs)`` ready to feed a
    :class:`~repro.engine.SolverPool`: register every database, then run the
    jobs.  The stream mixes the four named scenarios with
    ``synthetic_databases`` random inconsistent databases, drawing queries
    from each scenario's catalogue (plus random conjunctive queries for the
    synthetic databases) and methods from ``methods`` — with ``naive`` only
    ever emitted on databases whose repair count stays below a feasibility
    bound.  Non-Boolean queries are answer-bound by sampling a tuple from
    the query's answers over the full (inconsistent) database, so every job
    is a well-formed counting request.

    Everything is derived from ``seed``; the same arguments always produce
    the same stream (jobs carry no explicit seed — the engine derives
    deterministic per-job seeds, see :meth:`CountJob.effective_seed`).
    """
    rng = random.Random(seed)

    databases: Dict[str, Tuple[Database, PrimaryKeySet]] = {}
    catalogue: Dict[str, List[Query]] = {}

    for scenario in (
        employee_example(),
        hr_analytics(seed=rng.randrange(2**16)),
        sensor_fusion(seed=rng.randrange(2**16)),
        election_registry(seed=rng.randrange(2**16)),
    ):
        databases[scenario.name] = (scenario.database, scenario.keys)
        catalogue[scenario.name] = list(scenario.queries.values())

    synthetic_relations = {"R": 3, "S": 3}
    for index in range(synthetic_databases):
        spec = InconsistentDatabaseSpec(
            relations=synthetic_relations,
            blocks_per_relation=rng.randint(6, 12),
            conflict_rate=0.5,
            max_block_size=3,
            domain_size=8,
        )
        name = f"synthetic-{index}"
        database, keys = random_inconsistent_database(spec, seed=rng.randrange(2**16))
        databases[name] = (database, keys)
        catalogue[name] = [
            random_conjunctive_query(
                synthetic_relations, keys, target_keywidth=rng.randint(1, 2), seed=rng.randrange(2**16)
            )
            for _ in range(3)
        ]

    decompositions = {
        name: BlockDecomposition(database, keys)
        for name, (database, keys) in databases.items()
    }
    naive_allowed = {
        name: decomposition.total_repairs() <= _NAIVE_REPAIR_LIMIT
        for name, decomposition in decompositions.items()
    }

    prepared_cache: Dict[Tuple[str, str, Tuple], PreparedCertificates] = {}

    def prepared_for(name: str, query: Query, answer: Tuple) -> PreparedCertificates:
        key = (name, str(query.formula), answer)
        if key not in prepared_cache:
            database, keys = databases[name]
            prepared_cache[key] = prepare_certificates(
                database, keys, query, answer, decomposition=decompositions[name]
            )
        return prepared_cache[key]

    def feasible_method(name: str, query: Query, answer: Tuple, method: str) -> str:
        """Demote forced strategies that would blow up on this instance.

        Mirrors the feasibility analysis of the exact methods: naive is
        exponential in the repair count, forced inclusion-exclusion in the
        box count, forced enumeration in the support space.  ``auto`` (the
        decomposed engine) is the safe fallback for all three.
        """
        if method == "naive" and not naive_allowed[name]:
            return "auto"
        if method == "inclusion-exclusion":
            if prepared_for(name, query, answer).certificate_count > _INCLUSION_EXCLUSION_BOX_LIMIT:
                return "auto"
        elif method == "enumeration":
            prepared = prepared_for(name, query, answer)
            sizes = decompositions[name].block_sizes()
            support = {coordinate for selector in prepared.selectors for coordinate, _ in selector.pins}
            space = 1
            for coordinate in support:
                space *= sizes[coordinate]
            if space > _ENUMERATION_SPACE_LIMIT:
                return "auto"
        return method

    stream: List[CountJob] = []
    names = sorted(databases)
    while len(stream) < jobs:
        name = rng.choice(names)
        query = rng.choice(catalogue[name])
        method = rng.choice(list(methods))
        if method != "naive" and not is_existential_positive(query):
            continue
        answer: Tuple = ()
        if query.arity:
            candidates = sorted(evaluate_answers(query, databases[name][0]))
            if not candidates:
                continue
            answer = rng.choice(candidates)
        method = feasible_method(name, query, answer, method)
        formula_text, answer_variables = _job_text(query)
        stream.append(
            CountJob(
                database=name,
                query=formula_text,
                answer_variables=answer_variables,
                answer=answer,
                method=method,
                epsilon=epsilon,
                delta=delta,
                label=query.name,
            )
        )
    return databases, stream
