"""Named scenarios: small, realistic inconsistent databases.

These are the workloads the examples and the end-to-end benchmark (E12)
run on.  Each scenario returns the database, its primary keys and a
dictionary of named queries, so examples, tests and benchmarks all speak
about the same instances.

* :func:`employee_example` — Example 1.1 of the paper, verbatim.
* :func:`hr_analytics` — an HR database integrated from two conflicting
  sources (payroll vs directory): salaries, departments and managers
  disagree; queries ask for frequency-ranked analytics.
* :func:`sensor_fusion` — readings of the same sensors reported by
  different gateways; queries ask which alarms are likely real.
* :func:`election_registry` — a voter registry merged across counties with
  duplicate registrations; queries ask how often a candidate wins.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple

from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..db.facts import Fact, fact
from ..query.ast import Atom, Query
from ..query.builders import conjunctive_query, union_query, var
from .queries import employee_same_department_query

__all__ = ["Scenario", "employee_example", "hr_analytics", "sensor_fusion", "election_registry"]


@dataclass(frozen=True)
class Scenario:
    """A named workload: database, primary keys and a set of named queries."""

    name: str
    database: Database
    keys: PrimaryKeySet
    queries: Dict[str, Query]

    def __str__(self) -> str:
        return (
            f"Scenario {self.name!r}: {len(self.database)} facts, "
            f"{len(self.queries)} queries"
        )


def employee_example() -> Scenario:
    """Example 1.1 of the paper: the four Employee facts and the key on id."""
    database = Database(
        [
            fact("Employee", 1, "Bob", "HR"),
            fact("Employee", 1, "Bob", "IT"),
            fact("Employee", 2, "Alice", "IT"),
            fact("Employee", 2, "Tim", "IT"),
        ]
    )
    keys = PrimaryKeySet.from_dict({"Employee": [1]})
    x, y = var("x"), var("y")
    queries = {
        "same-department": employee_same_department_query(),
        "employee-1-details": conjunctive_query(
            [Atom("Employee", (1, x, y))], answer_variables=(x, y), name="employee-1-details"
        ),
        "works-in-it": conjunctive_query(
            [Atom("Employee", (x, y, "IT"))], answer_variables=(x,), name="works-in-it"
        ),
    }
    return Scenario("employee-example", database, keys, queries)


def hr_analytics(seed: int = 7, employees: int = 40) -> Scenario:
    """An HR database merged from payroll and directory extracts.

    Relations (first attribute is always the primary key):

    * ``Employee(id, name, dept)`` — department assignments disagree for a
      third of the staff.
    * ``Salary(id, band)`` — salary bands disagree for a quarter of the staff.
    * ``Dept(name, floor)`` — consistent reference data (no conflicts).
    """
    rng = random.Random(seed)
    departments = ["HR", "IT", "Sales", "Legal", "Ops"]
    bands = ["B1", "B2", "B3", "B4"]
    floors = {"HR": 1, "IT": 2, "Sales": 3, "Legal": 4, "Ops": 2}
    facts = [fact("Dept", name, floor) for name, floor in floors.items()]
    for employee_id in range(1, employees + 1):
        name = f"emp{employee_id}"
        department = rng.choice(departments)
        facts.append(fact("Employee", employee_id, name, department))
        if rng.random() < 0.33:
            other = rng.choice([item for item in departments if item != department])
            facts.append(fact("Employee", employee_id, name, other))
        band = rng.choice(bands)
        facts.append(fact("Salary", employee_id, band))
        if rng.random() < 0.25:
            other_band = rng.choice([item for item in bands if item != band])
            facts.append(fact("Salary", employee_id, other_band))
    database = Database(facts)
    keys = PrimaryKeySet.from_dict({"Employee": [1], "Salary": [1], "Dept": [1]})

    e, n, d, b, f = var("e"), var("n"), var("d"), var("b"), var("f")
    queries = {
        "department-of-emp1": conjunctive_query(
            [Atom("Employee", (1, n, d))], answer_variables=(d,), name="department-of-emp1"
        ),
        "top-band-in-it": conjunctive_query(
            [Atom("Employee", (e, n, "IT")), Atom("Salary", (e, "B4"))],
            name="top-band-in-it",
        ),
        "same-floor-1-2": conjunctive_query(
            [
                Atom("Employee", (1, var("n1"), var("d1"))),
                Atom("Employee", (2, var("n2"), var("d2"))),
                Atom("Dept", (var("d1"), f)),
                Atom("Dept", (var("d2"), f)),
            ],
            name="same-floor-1-2",
        ),
    }
    return Scenario("hr-analytics", database, keys, queries)


def sensor_fusion(seed: int = 11, sensors: int = 30) -> Scenario:
    """Sensor readings reported (inconsistently) by redundant gateways.

    ``Reading(sensor, level)`` is keyed on the sensor: gateways disagree on
    the level for roughly 40% of the sensors.  ``Location(sensor, room)`` is
    reference data.  Queries ask whether some room has a critical alarm and
    which rooms are likely affected.
    """
    rng = random.Random(seed)
    levels = ["ok", "warning", "critical"]
    rooms = [f"room{index}" for index in range(1, 7)]
    facts = []
    for sensor_index in range(1, sensors + 1):
        sensor = f"s{sensor_index}"
        facts.append(fact("Location", sensor, rng.choice(rooms)))
        level = rng.choices(levels, weights=[0.6, 0.25, 0.15])[0]
        facts.append(fact("Reading", sensor, level))
        if rng.random() < 0.4:
            other = rng.choice([item for item in levels if item != level])
            facts.append(fact("Reading", sensor, other))
    database = Database(facts)
    keys = PrimaryKeySet.from_dict({"Reading": [1], "Location": [1]})

    s, r = var("s"), var("r")
    queries = {
        "any-critical": conjunctive_query(
            [Atom("Reading", (s, "critical"))], name="any-critical"
        ),
        "critical-rooms": conjunctive_query(
            [Atom("Reading", (s, "critical")), Atom("Location", (s, r))],
            answer_variables=(r,),
            name="critical-rooms",
        ),
        "warning-or-critical": union_query(
            [
                [Atom("Reading", (s, "critical"))],
                [Atom("Reading", (s, "warning"))],
            ],
            name="warning-or-critical",
        ),
    }
    return Scenario("sensor-fusion", database, keys, queries)


def election_registry(seed: int = 3, voters: int = 24) -> Scenario:
    """A voter registry merged across counties, with duplicate registrations.

    ``Vote(voter, candidate)`` is keyed on the voter; duplicated voters have
    conflicting candidate records.  The query of interest is "does candidate
    X reach at least one vote" and, per candidate, the frequency with which
    they receive a vote from a specific contested voter — a small stand-in
    for frequency-based win analysis.
    """
    rng = random.Random(seed)
    candidates = ["alice", "bob", "carol"]
    facts = []
    for voter_index in range(1, voters + 1):
        voter = f"voter{voter_index}"
        choice = rng.choice(candidates)
        facts.append(fact("Vote", voter, choice))
        if rng.random() < 0.5:
            other = rng.choice([item for item in candidates if item != choice])
            facts.append(fact("Vote", voter, other))
    database = Database(facts)
    keys = PrimaryKeySet.from_dict({"Vote": [1]})

    v, c = var("v"), var("c")
    queries = {
        "candidate-of-voter1": conjunctive_query(
            [Atom("Vote", ("voter1", c))], answer_variables=(c,), name="candidate-of-voter1"
        ),
        "alice-gets-a-vote": conjunctive_query(
            [Atom("Vote", (v, "alice"))], name="alice-gets-a-vote"
        ),
    }
    return Scenario("election-registry", database, keys, queries)
