"""Range workloads: streams that sweep windows of recorded versions.

:func:`~repro.workloads.history.history_workload` models point-in-time
reads — every historical count asks about one ancestor.  A dashboard or
audit workload asks a different question: "how did this count evolve over
the last K versions?"  That is a *range* read: one query swept across a
contiguous window of recorded snapshots, which the engine answers through
a single shared replay walk (:meth:`~repro.engine.SolverPool.run_range`)
instead of K independent ``as_of`` materialisations.

:func:`range_workload` generates exactly that pattern, deterministically
from a seed: a count/update stream in which some counts carry
``as_of_range`` — a two-endpoint window over the database's recorded
chain, referenced by content digest three times out of four and by
negative chain index otherwise, occasionally descending so the
newest-first orientation stays exercised.  Because the generator applies
its own deltas while generating, every endpoint is a *real* recorded
digest, and a consumer can rebuild the expected state of any version by
replaying the stream's deltas (benchmark E22 verifies the shared walk
against independent ``as_of`` jobs bit for bit).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple, Union

from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..engine.jobs import CountJob, UpdateJob
from ..query.ast import Query
from .generators import InconsistentDatabaseSpec, random_inconsistent_database
from .queries import random_conjunctive_query
from .updates import _random_delta

__all__ = ["range_workload"]

_RELATIONS = {"R": 3, "S": 3}


def range_workload(
    jobs: int = 30,
    update_every: int = 3,
    range_fraction: float = 0.35,
    seed: int = 0,
    databases: int = 1,
    queries_per_database: int = 3,
    blocks_per_relation: Tuple[int, int] = (6, 12),
    max_edits: int = 4,
    max_span: int = 8,
    methods: Sequence[str] = ("auto", "certificate"),
    epsilon: float = 0.25,
    delta: float = 0.2,
) -> Tuple[
    Dict[str, Tuple[Database, PrimaryKeySet]],
    List[Union[CountJob, UpdateJob]],
]:
    """Generate databases plus a count/update stream with range reads.

    Returns ``(databases, stream)`` ready for
    :meth:`~repro.engine.SolverPool.run_stream` (which expands each
    ``as_of_range`` job in place, so indices and seeds match the
    hand-expanded stream) or for feeding
    :meth:`~repro.engine.SolverPool.run_range` job by job.  After every
    ``update_every`` counts an :class:`UpdateJob` edits a rotating
    database (deltas are cumulative, generated against the state the
    previous deltas produced).  Once a database has at least two recorded
    versions, each of its counts becomes a *range* count with probability
    ``range_fraction``: its ``as_of_range`` spans up to ``max_span``
    consecutive recorded versions, ascending four times out of five and
    descending otherwise, each endpoint referenced by content digest
    three times out of four and by negative chain index otherwise.

    Everything derives from ``seed``; per-version seeds come from
    :meth:`~repro.engine.CountJob.effective_seed` after expansion, so
    replays are bit-identical.

    >>> registry, stream = range_workload(jobs=12, seed=1)
    >>> sorted(registry)
    ['windowed-0']
    >>> ranged = [item for item in stream
    ...           if isinstance(item, CountJob) and item.as_of_range is not None]
    >>> len(ranged) > 0
    True
    >>> stream == range_workload(jobs=12, seed=1)[1]
    True
    """
    if databases < 1:
        raise ValueError(f"need at least one database, got {databases}")
    if not 0.0 <= range_fraction <= 1.0:
        raise ValueError(f"range_fraction must be in [0, 1], got {range_fraction}")
    if max_span < 2:
        raise ValueError(f"max_span must be >= 2, got {max_span}")
    rng = random.Random(seed)

    registry: Dict[str, Tuple[Database, PrimaryKeySet]] = {}
    live: Dict[str, Database] = {}
    chains: Dict[str, List[str]] = {}
    catalogue: Dict[str, List[Query]] = {}
    for index in range(databases):
        spec = InconsistentDatabaseSpec(
            relations=_RELATIONS,
            blocks_per_relation=rng.randint(*blocks_per_relation),
            conflict_rate=0.5,
            max_block_size=3,
            domain_size=10,
        )
        name = f"windowed-{index}"
        database, keys = random_inconsistent_database(spec, seed=rng.randrange(2**16))
        registry[name] = (database, keys)
        live[name] = database
        chains[name] = [database.content_digest()]
        catalogue[name] = [
            random_conjunctive_query(
                _RELATIONS,
                keys,
                target_keywidth=rng.randint(1, 2),
                seed=rng.randrange(2**16),
            )
            for _ in range(queries_per_database)
        ]

    def reference(name: str, position: int) -> Union[str, int]:
        """One chain endpoint, as a digest (75%) or a negative index."""
        if rng.random() < 0.75:
            return chains[name][position]
        return position - (len(chains[name]) - 1)

    names = sorted(registry)
    stream: List[Union[CountJob, UpdateJob]] = []
    emitted = 0
    update_round = 0
    while emitted < jobs:
        if emitted and emitted % update_every == 0 and not isinstance(
            stream[-1], UpdateJob
        ):
            name = names[update_round % len(names)]
            update_round += 1
            _, keys = registry[name]
            relation = rng.choice(sorted(_RELATIONS))
            change = _random_delta(
                rng, live[name], keys, relation, _RELATIONS[relation], max_edits
            )
            if not change.is_empty():
                stream.append(
                    UpdateJob(database=name, delta=change, label=f"edit-{relation}")
                )
                live[name] = live[name].apply_delta(change)
                chains[name].append(live[name].content_digest())
        name = rng.choice(names)
        query = rng.choice(catalogue[name])
        as_of_range: Union[Tuple[Union[str, int], Union[str, int]], None] = None
        label = query.name
        if len(chains[name]) > 1 and rng.random() < range_fraction:
            # A range count over a contiguous window of the chain.  At
            # this stream position the head is chains[name][-1], so the
            # negative-index form is well defined for both endpoints.
            span = rng.randint(2, min(max_span, len(chains[name])))
            start = rng.randrange(len(chains[name]) - span + 1)
            low, high = start, start + span - 1
            if rng.random() < 0.2:
                low, high = high, low
            as_of_range = (reference(name, low), reference(name, high))
            label = f"{query.name}@v{low}..v{high}"
        stream.append(
            CountJob(
                database=name,
                query=str(query.formula),
                answer_variables=tuple(v.name for v in query.answer_variables),
                method=rng.choice(list(methods)),
                epsilon=epsilon,
                delta=delta,
                as_of_range=as_of_range,
                label=label,
            )
        )
        emitted += 1
    return registry, stream
