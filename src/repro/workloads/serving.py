"""Serving workloads: skewed multi-database streams for the async server.

:func:`~repro.workloads.batches.batch_workload` models a read-only batch
and :func:`~repro.workloads.updates.update_stream` a write-heavy stream
over a couple of databases; a *sharded server* sees a third pattern —
many independent databases with **skewed popularity** (a few hot names
take most of the traffic, a long tail stays warm but quiet) and deltas
trickling into every database.  :func:`serve_workload` generates exactly
that, deterministically from a seed, which makes it the reference input
for :class:`~repro.server.AsyncServer` benchmarks and equivalence tests:
independent databases are what shards parallelise, and the skew is what
stresses a routing policy.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..engine.jobs import CountJob, UpdateJob
from ..query.ast import Query
from .generators import InconsistentDatabaseSpec, random_inconsistent_database
from .queries import random_conjunctive_query
from .updates import _random_delta

__all__ = ["LoadReport", "drive_http_load", "http_load", "serve_workload"]

_RELATIONS = {"R": 3, "S": 3}


def serve_workload(
    jobs: int = 60,
    databases: int = 4,
    update_every: int = 8,
    hot_fraction: float = 0.7,
    seed: int = 0,
    queries_per_database: int = 3,
    blocks_per_relation: Tuple[int, int] = (6, 12),
    max_edits: int = 4,
    methods: Sequence[str] = ("auto", "certificate", "fpras"),
    epsilon: float = 0.25,
    delta: float = 0.2,
    zipf: Union[float, None] = None,
    anytime_fraction: float = 0.0,
    max_latency: Union[float, None] = None,
    max_error: Union[float, None] = None,
) -> Tuple[
    Dict[str, Tuple[Database, PrimaryKeySet]],
    List[Union[CountJob, UpdateJob]],
]:
    """Generate databases plus a skewed count/update stream for serving.

    Returns ``(databases, stream)`` ready for
    :meth:`~repro.server.AsyncServer.run_stream` (or, equivalently, for a
    sequential :meth:`~repro.engine.SolverPool.run_stream` — the two must
    agree bit for bit).  ``databases`` synthetic inconsistent databases
    are generated; the first two are "hot" and together receive
    ``hot_fraction`` of the counting jobs, the rest share the tail.
    Passing ``zipf`` replaces that two-tier split with a Zipf popularity
    law: the database at rank ``r`` (0-based, by sorted name) is drawn
    with probability proportional to ``1 / (r + 1) ** zipf`` — the
    canonical skew for exercising load rebalancing, with larger exponents
    concentrating more of the stream on ``served-0``.  After
    every ``update_every`` counts an :class:`UpdateJob` edits a rotating
    database; deltas are cumulative, generated against the state the
    previous deltas produced, exactly as a live feed would emit them.

    Everything derives from ``seed`` — equal arguments produce equal
    streams, and per-count seeds come from
    :meth:`~repro.engine.CountJob.effective_seed`, so replays are
    bit-identical.

    With ``anytime_fraction`` > 0, that fraction of the *randomised*
    count jobs carry the anytime SLA knobs (``anytime=True`` plus any of
    ``max_latency``/``max_error`` given); the default of 0 draws no extra
    randomness, keeping the stream bit-identical to pre-anytime
    workloads.

    >>> registry, stream = serve_workload(jobs=6, databases=2, seed=1)
    >>> sorted(registry)
    ['served-0', 'served-1']
    >>> len([item for item in stream if isinstance(item, CountJob)])
    6
    >>> stream == serve_workload(jobs=6, databases=2, seed=1)[1]
    True
    >>> _, skewed = serve_workload(jobs=6, databases=3, seed=1, zipf=1.2)
    >>> skewed == serve_workload(jobs=6, databases=3, seed=1, zipf=1.2)[1]
    True
    """
    if databases < 1:
        raise ValueError(f"need at least one database, got {databases}")
    if zipf is not None and zipf <= 0:
        raise ValueError(f"zipf exponent must be > 0, got {zipf}")
    if not 0.0 <= anytime_fraction <= 1.0:
        raise ValueError(
            f"anytime_fraction must be in [0, 1], got {anytime_fraction}"
        )
    rng = random.Random(seed)

    registry: Dict[str, Tuple[Database, PrimaryKeySet]] = {}
    live: Dict[str, Database] = {}
    catalogue: Dict[str, List[Query]] = {}
    for index in range(databases):
        spec = InconsistentDatabaseSpec(
            relations=_RELATIONS,
            blocks_per_relation=rng.randint(*blocks_per_relation),
            conflict_rate=0.5,
            max_block_size=3,
            domain_size=10,
        )
        name = f"served-{index}"
        database, keys = random_inconsistent_database(spec, seed=rng.randrange(2**16))
        registry[name] = (database, keys)
        live[name] = database
        catalogue[name] = [
            random_conjunctive_query(
                _RELATIONS,
                keys,
                target_keywidth=rng.randint(1, 2),
                seed=rng.randrange(2**16),
            )
            for _ in range(queries_per_database)
        ]

    names = sorted(registry)
    hot = names[: max(1, min(2, len(names)))]
    cold = names[len(hot):]

    if zipf is not None:
        weights = [1.0 / (rank + 1) ** zipf for rank in range(len(names))]
        total_weight = sum(weights)
        cumulative: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total_weight
            cumulative.append(running)
        cumulative[-1] = 1.0  # guard against float round-down at the tail

        def pick_database() -> str:
            draw = rng.random()
            for rank, bound in enumerate(cumulative):
                if draw < bound:
                    return names[rank]
            return names[-1]

    else:

        def pick_database() -> str:
            if cold and rng.random() >= hot_fraction:
                return rng.choice(cold)
            return rng.choice(hot)

    stream: List[Union[CountJob, UpdateJob]] = []
    emitted = 0
    update_round = 0
    while emitted < jobs:
        if emitted and emitted % update_every == 0 and not isinstance(
            stream[-1], UpdateJob
        ):
            name = names[update_round % len(names)]
            update_round += 1
            _, keys = registry[name]
            relation = rng.choice(sorted(_RELATIONS))
            change = _random_delta(
                rng, live[name], keys, relation, _RELATIONS[relation], max_edits
            )
            if not change.is_empty():
                stream.append(
                    UpdateJob(database=name, delta=change, label=f"edit-{relation}")
                )
                live[name] = live[name].apply_delta(change)
        name = pick_database()
        query = rng.choice(catalogue[name])
        method = rng.choice(list(methods))
        # SLA knobs ride only on randomised jobs, and the extra random
        # draw happens only when the feature is on, so the default stream
        # stays bit-identical to pre-anytime workloads.
        sla: Dict[str, object] = {}
        if (
            anytime_fraction
            and method in ("fpras", "karp-luby")
            and rng.random() < anytime_fraction
        ):
            sla["anytime"] = True
            if max_latency is not None:
                sla["max_latency"] = max_latency
            if max_error is not None:
                sla["max_error"] = max_error
        stream.append(
            CountJob(
                database=name,
                query=str(query.formula),
                answer_variables=tuple(v.name for v in query.answer_variables),
                method=method,
                epsilon=epsilon,
                delta=delta,
                label=query.name,
                **sla,  # type: ignore[arg-type]
            )
        )
        emitted += 1
    return registry, stream


# --------------------------------------------------------------------- #
# HTTP load generation
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class LoadReport:
    """What one :func:`drive_http_load` run did, with latency percentiles.

    The accounting is total: every stream element ends up in exactly one
    of ``completed`` (a result came back), ``rejected`` (the retry budget
    ran out on 429/503) or ``errors`` (any other failure) — the HTTP
    front never silently drops a request, and neither does the harness.
    ``retries`` counts retry attempts across all connections (a request
    that eventually completed after backing off is ``completed`` *and*
    contributes here).  Latencies are per request, measured around the
    whole exchange including backoff sleeps — the latency a real caller
    would see.
    """

    requests: int
    completed: int
    rejected: int
    errors: int
    retries: int
    elapsed: float
    latency_p50: float
    latency_p99: float

    @property
    def throughput(self) -> float:
        """Completed requests per second of wall-clock time."""
        return self.completed / self.elapsed if self.elapsed > 0 else 0.0


def _percentile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    position = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[position]


async def drive_http_load(
    host: str,
    port: int,
    stream: Sequence[Union[CountJob, UpdateJob]],
    connections: int = 200,
    retries: int = 6,
    backoff: float = 0.02,
    timeout: float = 60.0,
) -> LoadReport:
    """Drive a job stream through the HTTP front over many connections.

    The stream is partitioned round-robin over ``connections`` concurrent
    :class:`~repro.server.ServeClient` connections (each a keep-alive
    socket of its own, so the server really holds ``connections`` open
    sockets at once).  Every element keeps its stream position as its
    ``index``, so per-job seeds — and therefore results — match a
    sequential replay of the same stream.  Count jobs go to ``/count``
    and updates to ``/update``; dispatch order within a connection
    preserves stream order, which keeps each database's count/update
    interleaving intact as long as updates and the counts they affect
    share a connection (round-robin with ``connections=1`` reproduces the
    sequential stream exactly; larger fan-outs trade that total order for
    concurrency, exactly like the asyncio server itself).
    """
    from ..server.client import ServeClient  # lazy: workloads stay import-light

    latencies: List[float] = []
    completed = rejected = errors = retried = 0

    async def drive(offset: int) -> None:
        nonlocal completed, rejected, errors, retried
        from ..errors import ReproError, ServerOverloadedError

        client = ServeClient(
            host, port, retries=retries, backoff=backoff, timeout=timeout
        )
        try:
            for index in range(offset, len(stream), connections):
                item = stream[index]
                payload = item.to_json()
                began = time.perf_counter()
                try:
                    if isinstance(item, UpdateJob):
                        await client.update(payload, index=index)
                    else:
                        await client.count(payload, index=index)
                except ServerOverloadedError:
                    rejected += 1
                except ReproError:
                    errors += 1
                else:
                    completed += 1
                latencies.append(time.perf_counter() - began)
            retried += client.retries_used
        finally:
            await client.close()

    began = time.perf_counter()
    await asyncio.gather(*(drive(offset) for offset in range(connections)))
    elapsed = time.perf_counter() - began
    return LoadReport(
        requests=len(stream),
        completed=completed,
        rejected=rejected,
        errors=errors,
        retries=retried,
        elapsed=elapsed,
        latency_p50=_percentile(latencies, 0.50),
        latency_p99=_percentile(latencies, 0.99),
    )


def http_load(
    host: str,
    port: int,
    stream: Sequence[Union[CountJob, UpdateJob]],
    connections: int = 200,
    retries: int = 6,
    backoff: float = 0.02,
    timeout: float = 60.0,
) -> LoadReport:
    """The synchronous wrapper around :func:`drive_http_load`.

    For benchmarks and scripts without their own event loop; drives the
    load from a fresh ``asyncio.run`` loop against an HTTP front that is
    already listening (typically in another process or thread).
    """
    return asyncio.run(
        drive_http_load(
            host,
            port,
            stream,
            connections=connections,
            retries=retries,
            backoff=backoff,
            timeout=timeout,
        )
    )
