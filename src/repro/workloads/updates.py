"""Update workloads: job streams that interleave deltas with counts.

The batch workload (:func:`~repro.workloads.batches.batch_workload`) models
a read-only serving pattern; real deployments *update* their databases far
more often than they replace them.  :func:`update_stream` generates the
corresponding write-heavy pattern: a deterministic stream of
:class:`~repro.engine.jobs.CountJob` entries punctuated by
:class:`~repro.engine.jobs.UpdateJob` deltas — block-sized edits (grow a
block, shrink a block, add a block, drop a block) against the registered
databases.  Feeding the stream to :meth:`repro.engine.SolverPool.run_stream`
exercises exactly the incremental path this engine optimises: every count
observes the snapshots produced by the updates before it.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple, Union

from ..db.blocks import BlockDecomposition
from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..db.delta import Delta
from ..db.facts import Fact
from ..engine.jobs import CountJob, UpdateJob
from ..query.ast import Query
from .generators import InconsistentDatabaseSpec, random_inconsistent_database
from .queries import random_conjunctive_query

__all__ = ["update_stream"]


def _random_delta(
    rng: random.Random,
    database: Database,
    keys: PrimaryKeySet,
    relation: str,
    arity: int,
    max_edits: int,
) -> Delta:
    """A small block-shaped delta over one relation of the database.

    Edits mix fact insertions into fresh and existing blocks with fact
    deletions, mirroring how feeds grow, shrink and retract conflicting
    blocks.  The delta is derived only from ``rng`` and the (deterministic)
    sorted fact list, so streams are reproducible.
    """
    existing = sorted(database.relation(relation))
    inserted: List[Fact] = []
    deleted: List[Fact] = []
    for _ in range(rng.randint(1, max_edits)):
        move = rng.random()
        if move < 0.5 or not existing:
            # Insert: half the time into a brand-new block, half into the
            # block of an existing fact (growing a conflict).
            if move < 0.25 or not existing:
                key_token = f"{relation.lower()}_new_{rng.randrange(10_000)}"
            else:
                key_token = rng.choice(existing).arguments[0]
            payload = tuple(
                f"u{rng.randrange(1_000)}" for _ in range(arity - 1)
            )
            candidate = Fact(relation, (key_token,) + payload)
            if candidate not in database and candidate not in deleted:
                inserted.append(candidate)
        else:
            victim = rng.choice(existing)
            if victim not in inserted:
                deleted.append(victim)
    deleted = [item for item in deleted if item not in inserted]
    return Delta(inserted=inserted, deleted=deleted)


def update_stream(
    jobs: int = 40,
    update_every: int = 5,
    seed: int = 0,
    databases: int = 2,
    queries_per_database: int = 3,
    max_edits: int = 4,
    methods: Sequence[str] = ("auto", "certificate", "fpras"),
    epsilon: float = 0.25,
    delta: float = 0.2,
) -> Tuple[Dict[str, Tuple[Database, PrimaryKeySet]], List[Union[CountJob, UpdateJob]]]:
    """Generate databases plus a mixed count/update stream.

    Returns ``(databases, stream)`` ready for
    :meth:`~repro.engine.SolverPool.run_stream`: the stream holds ``jobs``
    counting jobs with an :class:`UpdateJob` spliced in after every
    ``update_every`` counts, alternating which database (and which
    relation) is edited.  Everything derives from ``seed``; equal arguments
    produce equal streams, and the per-count seeds come from
    :meth:`CountJob.effective_seed` as usual, so a stream replays
    bit-identically.

    The deltas are *cumulative*: each one is generated against the database
    state produced by the previous deltas, exactly as a long-lived service
    would see them.
    """
    rng = random.Random(seed)
    relations = {"R": 3, "S": 3}

    registry: Dict[str, Tuple[Database, PrimaryKeySet]] = {}
    live: Dict[str, Database] = {}
    catalogue: Dict[str, List[Query]] = {}
    for index in range(databases):
        spec = InconsistentDatabaseSpec(
            relations=relations,
            blocks_per_relation=rng.randint(6, 12),
            conflict_rate=0.5,
            max_block_size=3,
            domain_size=10,
        )
        name = f"updatable-{index}"
        database, keys = random_inconsistent_database(spec, seed=rng.randrange(2**16))
        registry[name] = (database, keys)
        live[name] = database
        catalogue[name] = [
            random_conjunctive_query(
                relations,
                keys,
                target_keywidth=rng.randint(1, 2),
                seed=rng.randrange(2**16),
            )
            for _ in range(queries_per_database)
        ]

    names = sorted(registry)
    stream: List[Union[CountJob, UpdateJob]] = []
    emitted = 0
    while emitted < jobs:
        if emitted and emitted % update_every == 0 and not isinstance(
            stream[-1], UpdateJob
        ):
            name = names[(emitted // update_every) % len(names)]
            database, keys = registry[name]
            relation = rng.choice(sorted(relations))
            change = _random_delta(
                rng, live[name], keys, relation, relations[relation], max_edits
            )
            if not change.is_empty():
                stream.append(
                    UpdateJob(database=name, delta=change, label=f"edit-{relation}")
                )
                live[name] = live[name].apply_delta(change)
        name = rng.choice(names)
        query = rng.choice(catalogue[name])
        stream.append(
            CountJob(
                database=name,
                query=str(query.formula),
                answer_variables=tuple(v.name for v in query.answer_variables),
                method=rng.choice(list(methods)),
                epsilon=epsilon,
                delta=delta,
                label=query.name,
            )
        )
        emitted += 1
    return registry, stream
