"""Synthetic workloads: database/query generators and named scenarios."""

from .batches import batch_workload
from .generators import (
    InconsistentDatabaseSpec,
    random_cnf,
    random_disjoint_positive_dnf,
    random_forbidden_coloring,
    random_graph,
    random_inconsistent_database,
    random_positive_dnf,
)
from .queries import (
    employee_same_department_query,
    random_conjunctive_query,
    random_ucq,
    star_join_query,
)
from .scenarios import (
    Scenario,
    election_registry,
    employee_example,
    hr_analytics,
    sensor_fusion,
)
from .history import ANCESTOR_BIASES, history_workload
from .ranges import range_workload
from .serving import LoadReport, drive_http_load, http_load, serve_workload
from .updates import update_stream

__all__ = [
    "ANCESTOR_BIASES",
    "InconsistentDatabaseSpec",
    "LoadReport",
    "Scenario",
    "batch_workload",
    "drive_http_load",
    "http_load",
    "election_registry",
    "employee_example",
    "employee_same_department_query",
    "history_workload",
    "hr_analytics",
    "random_cnf",
    "random_conjunctive_query",
    "random_disjoint_positive_dnf",
    "random_forbidden_coloring",
    "random_graph",
    "random_inconsistent_database",
    "random_positive_dnf",
    "random_ucq",
    "range_workload",
    "sensor_fusion",
    "serve_workload",
    "star_join_query",
    "update_stream",
]
