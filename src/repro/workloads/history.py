"""History workloads: streams that query random ancestors via ``as_of``.

:func:`~repro.workloads.updates.update_stream` models the write path and
:func:`~repro.workloads.serving.serve_workload` the skewed read path; a
lineage-recording engine sees a third pattern — **time travel**: updates
keep arriving, but a fraction of the counts ask about *earlier* snapshots
("count repairs as of yesterday's data").  :func:`history_workload`
generates exactly that, deterministically from a seed: a count/update
stream over one or more databases in which some counts carry an ``as_of``
reference to a randomly chosen recorded ancestor — usually its content
digest, occasionally a negative chain index — so every lineage feature
the engine exposes is exercised by one reference input.

Because the generator applies its own deltas while generating, it knows
the full digest chain of every database; ``as_of`` digests are therefore
*real* ancestor digests, and a consumer can rebuild the expected state of
any of them by replaying the stream's deltas (benchmark E16 does exactly
this to verify lineage replay bit for bit).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple, Union

from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..engine.jobs import CountJob, UpdateJob
from ..query.ast import Query
from .generators import InconsistentDatabaseSpec, random_inconsistent_database
from .queries import random_conjunctive_query
from .updates import _random_delta

__all__ = ["history_workload"]

_RELATIONS = {"R": 3, "S": 3}


#: How historical counts pick their ancestor: uniformly over the chain,
#: biased to the newest versions ("yesterday's data"), or biased to the
#: oldest ("the original import") — the deep-replay regime checkpoint
#: compaction is for.
ANCESTOR_BIASES = ("uniform", "recent", "deep")


def history_workload(
    jobs: int = 40,
    update_every: int = 4,
    history_fraction: float = 0.4,
    seed: int = 0,
    databases: int = 1,
    queries_per_database: int = 3,
    blocks_per_relation: Tuple[int, int] = (6, 12),
    max_edits: int = 4,
    methods: Sequence[str] = ("auto", "certificate", "fpras"),
    epsilon: float = 0.25,
    delta: float = 0.2,
    ancestor_bias: str = "uniform",
) -> Tuple[
    Dict[str, Tuple[Database, PrimaryKeySet]],
    List[Union[CountJob, UpdateJob]],
]:
    """Generate databases plus a count/update stream with time travel.

    Returns ``(databases, stream)`` ready for
    :meth:`~repro.engine.SolverPool.run_stream` (or the async server —
    the two must agree bit for bit).  After every ``update_every`` counts
    an :class:`UpdateJob` edits a rotating database (deltas are
    cumulative, generated against the state the previous deltas
    produced).  Once a database has ancestors, each of its counts is a
    *historical* count with probability ``history_fraction``: its
    ``as_of`` references a recorded ancestor — chosen uniformly by
    default, or per ``ancestor_bias`` (one of :data:`ANCESTOR_BIASES`):
    ``"recent"`` picks among the four newest ancestors, ``"deep"`` among
    the four oldest, which on a long chain is exactly the replay-heavy
    regime checkpoint compaction (benchmark E17) targets.  References are
    by content digest three times out of four, by negative chain index
    otherwise, so both reference forms stay exercised.

    Everything derives from ``seed``; per-count seeds come from
    :meth:`~repro.engine.CountJob.effective_seed`, so replays are
    bit-identical.

    >>> registry, stream = history_workload(jobs=12, seed=1)
    >>> sorted(registry)
    ['versioned-0']
    >>> historical = [item for item in stream
    ...               if isinstance(item, CountJob) and item.as_of is not None]
    >>> len(historical) > 0
    True
    >>> stream == history_workload(jobs=12, seed=1)[1]
    True
    """
    if databases < 1:
        raise ValueError(f"need at least one database, got {databases}")
    if not 0.0 <= history_fraction <= 1.0:
        raise ValueError(f"history_fraction must be in [0, 1], got {history_fraction}")
    if ancestor_bias not in ANCESTOR_BIASES:
        raise ValueError(
            f"unknown ancestor_bias {ancestor_bias!r}; "
            f"expected one of {ANCESTOR_BIASES}"
        )
    rng = random.Random(seed)

    registry: Dict[str, Tuple[Database, PrimaryKeySet]] = {}
    live: Dict[str, Database] = {}
    chains: Dict[str, List[str]] = {}
    catalogue: Dict[str, List[Query]] = {}
    for index in range(databases):
        spec = InconsistentDatabaseSpec(
            relations=_RELATIONS,
            blocks_per_relation=rng.randint(*blocks_per_relation),
            conflict_rate=0.5,
            max_block_size=3,
            domain_size=10,
        )
        name = f"versioned-{index}"
        database, keys = random_inconsistent_database(spec, seed=rng.randrange(2**16))
        registry[name] = (database, keys)
        live[name] = database
        chains[name] = [database.content_digest()]
        catalogue[name] = [
            random_conjunctive_query(
                _RELATIONS,
                keys,
                target_keywidth=rng.randint(1, 2),
                seed=rng.randrange(2**16),
            )
            for _ in range(queries_per_database)
        ]

    names = sorted(registry)
    stream: List[Union[CountJob, UpdateJob]] = []
    emitted = 0
    update_round = 0
    while emitted < jobs:
        if emitted and emitted % update_every == 0 and not isinstance(
            stream[-1], UpdateJob
        ):
            name = names[update_round % len(names)]
            update_round += 1
            _, keys = registry[name]
            relation = rng.choice(sorted(_RELATIONS))
            change = _random_delta(
                rng, live[name], keys, relation, _RELATIONS[relation], max_edits
            )
            if not change.is_empty():
                stream.append(
                    UpdateJob(database=name, delta=change, label=f"edit-{relation}")
                )
                live[name] = live[name].apply_delta(change)
                chains[name].append(live[name].content_digest())
        name = rng.choice(names)
        query = rng.choice(catalogue[name])
        as_of: Union[str, int, None] = None
        label = query.name
        if len(chains[name]) > 1 and rng.random() < history_fraction:
            # A historical count against a recorded ancestor.  At this
            # stream position the head is chains[name][-1], so the
            # negative-index form is well defined too.  The rng call
            # sequence for "uniform" is unchanged from earlier releases,
            # so seeded streams stay bit-identical.
            choices = len(chains[name]) - 1
            if ancestor_bias == "recent":
                ancestor = choices - 1 - rng.randrange(min(4, choices))
            elif ancestor_bias == "deep":
                ancestor = rng.randrange(min(4, choices))
            else:
                ancestor = rng.randrange(choices)
            if rng.random() < 0.75:
                as_of = chains[name][ancestor]
            else:
                as_of = ancestor - (len(chains[name]) - 1)
            label = f"{query.name}@v{ancestor}"
        stream.append(
            CountJob(
                database=name,
                query=str(query.formula),
                answer_variables=tuple(v.name for v in query.answer_variables),
                method=rng.choice(list(methods)),
                epsilon=epsilon,
                delta=delta,
                as_of=as_of,
                label=label,
            )
        )
        emitted += 1
    return registry, stream
