"""Propositional satisfiability problems used in the paper's hardness proofs.

Two roles:

* 3SAT / #3SAT are the sources of the reductions behind Theorems 3.2 and
  3.3 (NP-hardness of #CQA>0(FO) and #P-hardness of #CQA(FO) under
  parsimonious reductions).  Brute-force solvers are provided as oracles so
  the executable reduction in :mod:`repro.reductions.sat_to_cqa` can be
  validated end to end.
* #Pos2DNF — counting satisfying assignments of a positive 2DNF formula —
  is the function the paper uses to show that Λ[2] is already #P-hard under
  Turing reductions (Theorem 4.4(2)).  Its exact counter goes through the
  union-of-boxes engine, and membership in Λ[2] is witnessed by the
  compactor in :mod:`repro.problems.dnf`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Tuple

from ..errors import ReproError

__all__ = ["Literal", "CNFFormula", "count_satisfying_assignments", "is_satisfiable"]


@dataclass(frozen=True, order=True)
class Literal:
    """A propositional literal: a variable name with a polarity."""

    variable: str
    positive: bool = True

    def negate(self) -> "Literal":
        """The complementary literal."""
        return Literal(self.variable, not self.positive)

    def satisfied_by(self, assignment: Dict[str, bool]) -> bool:
        """True iff the literal evaluates to true under ``assignment``."""
        return assignment[self.variable] == self.positive

    def __str__(self) -> str:
        return self.variable if self.positive else f"¬{self.variable}"


@dataclass(frozen=True)
class CNFFormula:
    """A CNF formula: a conjunction of clauses, each a disjunction of literals.

    ``width`` (e.g. 3 for 3CNF) is not enforced structurally; use
    :meth:`is_kcnf` to check.
    """

    clauses: Tuple[Tuple[Literal, ...], ...]

    def __post_init__(self) -> None:
        if not isinstance(self.clauses, tuple):
            object.__setattr__(
                self, "clauses", tuple(tuple(clause) for clause in self.clauses)
            )
        for clause in self.clauses:
            if not clause:
                raise ReproError("CNF clauses must be non-empty")

    @classmethod
    def from_ints(cls, clauses: Iterable[Iterable[int]]) -> "CNFFormula":
        """DIMACS-style construction: positive/negative integers per clause."""
        built = []
        for clause in clauses:
            literals = []
            for code in clause:
                if code == 0:
                    raise ReproError("0 is not a valid DIMACS literal")
                literals.append(Literal(f"x{abs(code)}", code > 0))
            built.append(tuple(literals))
        return cls(tuple(built))

    def variables(self) -> Tuple[str, ...]:
        """The variable names, sorted."""
        names = {literal.variable for clause in self.clauses for literal in clause}
        return tuple(sorted(names))

    def is_kcnf(self, k: int) -> bool:
        """True iff every clause has at most ``k`` literals."""
        return all(len(clause) <= k for clause in self.clauses)

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        """True iff every clause has a satisfied literal."""
        return all(
            any(literal.satisfied_by(assignment) for literal in clause)
            for clause in self.clauses
        )

    def __str__(self) -> str:
        return " AND ".join(
            "(" + " OR ".join(str(literal) for literal in clause) + ")"
            for clause in self.clauses
        )


def _assignments(variables: Sequence[str]) -> Iterator[Dict[str, bool]]:
    for values in itertools.product((False, True), repeat=len(variables)):
        yield dict(zip(variables, values))


def count_satisfying_assignments(formula: CNFFormula) -> int:
    """#SAT by exhaustive enumeration (oracle for reduction tests)."""
    variables = formula.variables()
    return sum(1 for assignment in _assignments(variables) if formula.evaluate(assignment))


def is_satisfiable(formula: CNFFormula) -> bool:
    """SAT by exhaustive enumeration with early exit."""
    variables = formula.variables()
    return any(formula.evaluate(assignment) for assignment in _assignments(variables))
