"""Positive DNF counting problems (Sections 4.4 and 7.1).

Two families are implemented, both of which the paper places in the
Λ-hierarchy (or, unbounded, in SpanLL):

* **#PoskDNF** — counting the satisfying assignments of a positive kDNF
  formula over ``{0, 1}``-valued variables.  Listed in §4.1 as a
  guess–check–expand problem; #Pos2DNF is the #P-hard (under Turing
  reductions) member of Λ[2] used in Theorem 4.4(2).
* **#DisjPoskDNF** — the "disjoint" generalisation of Theorem 7.1: the
  variables are partitioned and an admissible assignment (a *P-assignment*)
  sets exactly one variable per part to 1.  This problem is
  Λ[k]-complete for every k and its unbounded version #DisjPosDNF is
  SpanLL-complete (Theorem 7.5).

Both reduce to a union of boxes: a clause contributes the box that pins the
variables it mentions to 1 (for #PoskDNF) or pins each mentioned variable's
part to that variable (for #DisjPoskDNF).  Exact counters, brute-force
oracles and compactors (for the Λ-hierarchy view and the FPRAS) are
provided for each.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import ReproError
from ..lams.compactor import Compactor, encode_token
from ..lams.selectors import Selector
from ..lams.union_of_boxes import count_union_of_boxes

__all__ = [
    "PositiveDNF",
    "DisjointPositiveDNF",
    "PositiveDNFCompactor",
    "DisjointPositiveDNFCompactor",
    "count_positive_dnf",
    "count_disjoint_positive_dnf",
]


# --------------------------------------------------------------------------- #
# positive kDNF over {0,1} assignments
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PositiveDNF:
    """A positive DNF formula: a disjunction of conjunctions of variables.

    ``variables`` fixes the variable universe (and the assignment space
    ``{0,1}^n``); every clause may only mention declared variables.
    """

    variables: Tuple[str, ...]
    clauses: Tuple[Tuple[str, ...], ...]

    def __post_init__(self) -> None:
        if not isinstance(self.variables, tuple):
            object.__setattr__(self, "variables", tuple(self.variables))
        if not isinstance(self.clauses, tuple):
            object.__setattr__(
                self, "clauses", tuple(tuple(clause) for clause in self.clauses)
            )
        if len(set(self.variables)) != len(self.variables):
            raise ReproError("duplicate variable names in PositiveDNF")
        universe = set(self.variables)
        for clause in self.clauses:
            unknown = set(clause) - universe
            if unknown:
                raise ReproError(f"clause {clause} mentions unknown variables {unknown}")

    @property
    def width(self) -> int:
        """The k of the kDNF: the largest clause size (0 for no clauses)."""
        return max((len(set(clause)) for clause in self.clauses), default=0)

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        """True iff some clause has all its variables set to 1."""
        return any(
            all(assignment[variable] for variable in clause) for clause in self.clauses
        )

    def count_bruteforce(self) -> int:
        """#satisfying assignments by exhaustive enumeration (oracle)."""
        count = 0
        for values in itertools.product((False, True), repeat=len(self.variables)):
            assignment = dict(zip(self.variables, values))
            if self.evaluate(assignment):
                count += 1
        return count


class PositiveDNFCompactor(Compactor[PositiveDNF, int]):
    """The k-compactor placing #PoskDNF in Λ[k].

    Solution domains: one ``{0, 1}`` domain per variable (index 0 encodes
    ``0``, index 1 encodes ``1``).  Certificates: clause indices; a clause
    is always a valid certificate (positive clauses are individually
    satisfiable).  Selector: pin every variable of the clause to 1.
    """

    def __init__(self, k: Optional[int] = None) -> None:
        super().__init__(k)

    def solution_domains(self, instance: PositiveDNF) -> Tuple[Tuple[str, ...], ...]:
        return tuple(("0", "1") for _ in instance.variables)

    def certificates(self, instance: PositiveDNF) -> Iterator[int]:
        limit = self.k
        for index, clause in enumerate(instance.clauses):
            if limit is None or len(set(clause)) <= limit:
                yield index

    def is_valid_certificate(self, instance: PositiveDNF, certificate: int) -> bool:
        if not 0 <= certificate < len(instance.clauses):
            return False
        if self.k is not None and len(set(instance.clauses[certificate])) > self.k:
            return False
        return True

    def selector(self, instance: PositiveDNF, certificate: int) -> Selector:
        clause = instance.clauses[certificate]
        position = {variable: index for index, variable in enumerate(instance.variables)}
        return Selector({position[variable]: 1 for variable in set(clause)})


def count_positive_dnf(formula: PositiveDNF, method: str = "decomposed") -> int:
    """Exact #PoskDNF via the union-of-boxes engine."""
    compactor = PositiveDNFCompactor(k=formula.width)
    return compactor.unfold_count(formula, method=method)


# --------------------------------------------------------------------------- #
# #DisjPoskDNF: P-assignments of a partitioned variable set
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class DisjointPositiveDNF:
    """An instance of #DisjPoskDNF: a partition of the variables and a
    positive DNF formula over them.

    A *P-assignment* sets exactly one variable of each part to 1 and all
    other variables to 0; the problem asks how many P-assignments satisfy
    the formula.
    """

    partition: Tuple[Tuple[str, ...], ...]
    clauses: Tuple[Tuple[str, ...], ...]

    def __post_init__(self) -> None:
        if not isinstance(self.partition, tuple):
            object.__setattr__(
                self, "partition", tuple(tuple(part) for part in self.partition)
            )
        if not isinstance(self.clauses, tuple):
            object.__setattr__(
                self, "clauses", tuple(tuple(clause) for clause in self.clauses)
            )
        seen: Set[str] = set()
        for part in self.partition:
            if not part:
                raise ReproError("partition parts must be non-empty")
            for variable in part:
                if variable in seen:
                    raise ReproError(f"variable {variable!r} appears in two parts")
                seen.add(variable)
        for clause in self.clauses:
            unknown = set(clause) - seen
            if unknown:
                raise ReproError(f"clause {clause} mentions unknown variables {unknown}")

    @property
    def variables(self) -> Tuple[str, ...]:
        """All variables, in partition order."""
        return tuple(variable for part in self.partition for variable in part)

    @property
    def width(self) -> int:
        """The k of the kDNF: the largest clause size."""
        return max((len(set(clause)) for clause in self.clauses), default=0)

    def part_of(self, variable: str) -> int:
        """Index of the part containing ``variable``."""
        for index, part in enumerate(self.partition):
            if variable in part:
                return index
        raise KeyError(variable)

    def p_assignments(self) -> Iterator[Dict[str, bool]]:
        """Enumerate all P-assignments (product over parts)."""
        for chosen in itertools.product(*self.partition):
            assignment = {variable: False for variable in self.variables}
            for variable in chosen:
                assignment[variable] = True
            yield assignment

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        """True iff some clause has all its variables set to 1."""
        return any(
            all(assignment[variable] for variable in clause) for clause in self.clauses
        )

    def count_bruteforce(self) -> int:
        """#satisfying P-assignments by exhaustive enumeration (oracle)."""
        return sum(1 for assignment in self.p_assignments() if self.evaluate(assignment))

    def total_p_assignments(self) -> int:
        """Number of P-assignments (the product of the part sizes)."""
        total = 1
        for part in self.partition:
            total *= len(part)
        return total


class DisjointPositiveDNFCompactor(Compactor[DisjointPositiveDNF, int]):
    """The k-compactor placing #DisjPoskDNF in Λ[k] (Theorem 7.1, membership).

    Solution domains: the parts of the partition (choosing which variable of
    the part is set to 1).  Certificates: clause indices; a clause is valid
    iff it never mentions two different variables of the same part (such a
    clause can never be satisfied by a P-assignment).  Selector: pin the
    part of each mentioned variable to that variable.
    """

    def __init__(self, k: Optional[int] = None) -> None:
        super().__init__(k)

    def solution_domains(self, instance: DisjointPositiveDNF) -> Tuple[Tuple[str, ...], ...]:
        return tuple(
            tuple(encode_token(variable) for variable in part) for part in instance.partition
        )

    def certificates(self, instance: DisjointPositiveDNF) -> Iterator[int]:
        for index in range(len(instance.clauses)):
            if self.is_valid_certificate(instance, index):
                yield index

    def is_valid_certificate(self, instance: DisjointPositiveDNF, certificate: int) -> bool:
        if not 0 <= certificate < len(instance.clauses):
            return False
        clause = set(instance.clauses[certificate])
        if self.k is not None and len(clause) > self.k:
            return False
        parts_used: Set[int] = set()
        for variable in clause:
            part_index = instance.part_of(variable)
            if part_index in parts_used:
                return False
            parts_used.add(part_index)
        return True

    def selector(self, instance: DisjointPositiveDNF, certificate: int) -> Selector:
        clause = set(instance.clauses[certificate])
        pins: Dict[int, int] = {}
        for variable in clause:
            part_index = instance.part_of(variable)
            pins[part_index] = instance.partition[part_index].index(variable)
        return Selector(pins)


def count_disjoint_positive_dnf(
    formula: DisjointPositiveDNF, method: str = "decomposed"
) -> int:
    """Exact #DisjPoskDNF via the union-of-boxes engine."""
    compactor = DisjointPositiveDNFCompactor(k=formula.width)
    return compactor.unfold_count(formula, method=method)
