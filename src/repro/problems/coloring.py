"""#kForbColoring: counting forbidden colourings of k-uniform hypergraphs.

Section 7.1 of the paper introduces the problem: given a k-uniform
hypergraph ``H = (V, E)``, colour lists ``C_v`` per node and, per edge, a
set ``F_e`` of *forbidden* assignments of the edge's nodes, count the
colourings ``μ`` (one colour per node, from its list) that agree with some
forbidden assignment on some edge.  The problem generalises counting
non-list-colourings and is Λ[k]-complete (Theorem 7.2); the unbounded
version #ForbColoring is SpanLL-complete (Theorem 7.5).

Structure-wise it is the cleanest member of the union-of-boxes family: the
solution domains are the colour lists and every pair (edge, forbidden
assignment) contributes one box pinning exactly the edge's k nodes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import ReproError
from ..lams.compactor import Compactor, encode_token
from ..lams.selectors import Selector

__all__ = [
    "ForbiddenColoringInstance",
    "ForbiddenColoringCompactor",
    "count_forbidden_colorings",
    "non_proper_coloring_instance",
]

#: A colouring assignment for an edge: node -> colour.
EdgeAssignment = Tuple[Tuple[str, str], ...]


@dataclass(frozen=True)
class ForbiddenColoringInstance:
    """An instance of #kForbColoring.

    Attributes
    ----------
    colors:
        ``{node: (colour, ...)}`` — the colour list of every node; its keys
        define the node set ``V``.
    edges:
        The hyperedges, each a tuple of node names.  For #kForbColoring all
        edges have the same size ``k``; mixed sizes are allowed by the
        library (the instance then lives in the unbounded problem
        #ForbColoring).
    forbidden:
        For each edge index, the forbidden assignments ``F_e``: tuples of
        (node, colour) pairs covering exactly the edge's nodes.
    """

    colors: Tuple[Tuple[str, Tuple[str, ...]], ...]
    edges: Tuple[Tuple[str, ...], ...]
    forbidden: Tuple[Tuple[EdgeAssignment, ...], ...]

    def __init__(
        self,
        colors: Mapping[str, Sequence[str]],
        edges: Sequence[Sequence[str]],
        forbidden: Sequence[Sequence[Mapping[str, str]]],
    ) -> None:
        color_items = tuple((node, tuple(palette)) for node, palette in colors.items())
        object.__setattr__(self, "colors", color_items)
        object.__setattr__(self, "edges", tuple(tuple(edge) for edge in edges))
        normalised: List[Tuple[EdgeAssignment, ...]] = []
        for assignments in forbidden:
            normalised.append(
                tuple(tuple(sorted(dict(assignment).items())) for assignment in assignments)
            )
        object.__setattr__(self, "forbidden", tuple(normalised))
        self._validate()

    def _validate(self) -> None:
        palette = dict(self.colors)
        for node, colors in self.colors:
            if not colors:
                raise ReproError(f"node {node!r} has an empty colour list")
        if len(self.forbidden) != len(self.edges):
            raise ReproError(
                f"{len(self.edges)} edges but {len(self.forbidden)} forbidden sets"
            )
        for edge, assignments in zip(self.edges, self.forbidden):
            edge_nodes = set(edge)
            unknown = edge_nodes - set(palette)
            if unknown:
                raise ReproError(f"edge {edge} mentions unknown nodes {unknown}")
            for assignment in assignments:
                assigned_nodes = {node for node, _ in assignment}
                if assigned_nodes != edge_nodes:
                    raise ReproError(
                        f"forbidden assignment {assignment} does not cover edge {edge}"
                    )
                for node, color in assignment:
                    if color not in palette[node]:
                        raise ReproError(
                            f"forbidden assignment colours {node!r} with {color!r} "
                            f"which is not in its list {palette[node]}"
                        )

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> Tuple[str, ...]:
        """The node set ``V`` in declaration order."""
        return tuple(node for node, _ in self.colors)

    def palette(self, node: str) -> Tuple[str, ...]:
        """The colour list of ``node``."""
        return dict(self.colors)[node]

    @property
    def uniformity(self) -> int:
        """The k of the k-uniform hypergraph (max edge size; 0 for no edges)."""
        return max((len(edge) for edge in self.edges), default=0)

    def is_uniform(self) -> bool:
        """True iff all edges have the same size."""
        sizes = {len(edge) for edge in self.edges}
        return len(sizes) <= 1

    def total_colorings(self) -> int:
        """Number of all list colourings (product of the list sizes)."""
        total = 1
        for _, palette in self.colors:
            total *= len(palette)
        return total

    # ------------------------------------------------------------------ #
    # brute force oracle
    # ------------------------------------------------------------------ #
    def colorings(self) -> Iterator[Dict[str, str]]:
        """Enumerate all list colourings of the nodes."""
        nodes = self.nodes
        palettes = [self.palette(node) for node in nodes]
        for combination in itertools.product(*palettes):
            yield dict(zip(nodes, combination))

    def is_forbidden(self, coloring: Mapping[str, str]) -> bool:
        """True iff the colouring agrees with some forbidden assignment."""
        for edge, assignments in zip(self.edges, self.forbidden):
            for assignment in assignments:
                if all(coloring[node] == color for node, color in assignment):
                    return True
        return False

    def count_bruteforce(self) -> int:
        """#forbidden colourings by exhaustive enumeration (oracle)."""
        return sum(1 for coloring in self.colorings() if self.is_forbidden(coloring))


class ForbiddenColoringCompactor(Compactor[ForbiddenColoringInstance, Tuple[int, int]]):
    """The k-compactor placing #kForbColoring in Λ[k] (Theorem 7.2, membership).

    Solution domains: the colour lists, in node order.  Certificates: pairs
    ``(edge index, forbidden-assignment index)``; all are valid.  Selector:
    pin each node of the edge to the forbidden colour.
    """

    def __init__(self, k: Optional[int] = None) -> None:
        super().__init__(k)

    def solution_domains(
        self, instance: ForbiddenColoringInstance
    ) -> Tuple[Tuple[str, ...], ...]:
        return tuple(
            tuple(encode_token(color) for color in palette)
            for _, palette in instance.colors
        )

    def certificates(self, instance: ForbiddenColoringInstance) -> Iterator[Tuple[int, int]]:
        for edge_index, assignments in enumerate(instance.forbidden):
            if self.k is not None and len(instance.edges[edge_index]) > self.k:
                continue
            for assignment_index in range(len(assignments)):
                yield (edge_index, assignment_index)

    def is_valid_certificate(
        self, instance: ForbiddenColoringInstance, certificate: Tuple[int, int]
    ) -> bool:
        edge_index, assignment_index = certificate
        if not 0 <= edge_index < len(instance.edges):
            return False
        if self.k is not None and len(instance.edges[edge_index]) > self.k:
            return False
        return 0 <= assignment_index < len(instance.forbidden[edge_index])

    def selector(
        self, instance: ForbiddenColoringInstance, certificate: Tuple[int, int]
    ) -> Selector:
        edge_index, assignment_index = certificate
        assignment = instance.forbidden[edge_index][assignment_index]
        node_position = {node: index for index, node in enumerate(instance.nodes)}
        pins: Dict[int, int] = {}
        for node, color in assignment:
            pins[node_position[node]] = instance.palette(node).index(color)
        return Selector(pins)


def count_forbidden_colorings(
    instance: ForbiddenColoringInstance, method: str = "decomposed"
) -> int:
    """Exact #kForbColoring via the union-of-boxes engine."""
    compactor = ForbiddenColoringCompactor(k=instance.uniformity)
    return compactor.unfold_count(instance, method=method)


def non_proper_coloring_instance(
    vertices: Sequence[str],
    edges: Sequence[Tuple[str, str]],
    colors: Sequence[str] = ("red", "green", "blue"),
) -> ForbiddenColoringInstance:
    """The non-proper-colouring special case as a forbidden-colouring instance.

    A colouring of a graph is *not proper* iff some edge is monochromatic;
    forbidding, for every edge and colour ``c``, the assignment giving both
    endpoints colour ``c`` makes "forbidden" coincide with "not proper".
    Counting non-3-colourings (one of the §4.1 guess–check–expand examples)
    is this instance with the default 3-colour palette.
    """
    palette = {vertex: tuple(colors) for vertex in vertices}
    forbidden = [
        [{left: color, right: color} for color in colors] for left, right in edges
    ]
    return ForbiddenColoringInstance(palette, [tuple(edge) for edge in edges], forbidden)
