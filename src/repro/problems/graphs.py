"""The guess–check–expand graph problems of Section 4.1.

The paper lists several natural problems that live in SpanL via the
guess–check–expand paradigm (and in fact in Λ[2], since their certificates
pin two vertices):

* counting the **non-independent sets** of an undirected graph,
* counting the **non-3-colourings** of an undirected graph,
* counting the **non-vertex-covers** of an undirected graph.

All three are "union of boxes over per-vertex domains with one box per
edge (or per edge/colour pair)", so each gets a small compactor plus a
brute-force oracle.  They serve three purposes in the library: extra
Λ[2] instances for tests, extra workloads for the FPRAS benchmarks, and a
demonstration that the paradigm extends beyond databases.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import ReproError
from ..lams.compactor import Compactor
from ..lams.selectors import Selector

__all__ = [
    "Graph",
    "NonIndependentSetCompactor",
    "NonVertexCoverCompactor",
    "NonColoringCompactor",
    "count_non_independent_sets",
    "count_non_vertex_covers",
    "count_non_colorings",
]


@dataclass(frozen=True)
class Graph:
    """A simple undirected graph given by vertex and edge lists."""

    vertices: Tuple[str, ...]
    edges: Tuple[Tuple[str, str], ...]

    def __init__(self, vertices: Sequence[str], edges: Sequence[Tuple[str, str]]) -> None:
        object.__setattr__(self, "vertices", tuple(vertices))
        normalised = []
        vertex_set = set(self.vertices)
        if len(vertex_set) != len(self.vertices):
            raise ReproError("duplicate vertices in graph")
        for left, right in edges:
            if left not in vertex_set or right not in vertex_set:
                raise ReproError(f"edge ({left}, {right}) mentions unknown vertices")
            if left == right:
                raise ReproError(f"self-loop ({left}, {right}) is not allowed")
            normalised.append((left, right) if left <= right else (right, left))
        object.__setattr__(self, "edges", tuple(sorted(set(normalised))))

    @classmethod
    def from_networkx(cls, graph) -> "Graph":
        """Build from a ``networkx.Graph`` (kept optional; no hard dependency)."""
        return cls([str(node) for node in graph.nodes], [(str(u), str(v)) for u, v in graph.edges])

    @property
    def vertex_count(self) -> int:
        return len(self.vertices)

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def vertex_index(self, vertex: str) -> int:
        """Position of a vertex in the canonical vertex order."""
        return self.vertices.index(vertex)

    # ------------------------------------------------------------------ #
    # brute-force oracles
    # ------------------------------------------------------------------ #
    def subsets(self) -> Iterator[FrozenSet[str]]:
        """Enumerate all vertex subsets."""
        for mask in itertools.product((False, True), repeat=len(self.vertices)):
            yield frozenset(
                vertex for vertex, chosen in zip(self.vertices, mask) if chosen
            )

    def is_independent(self, subset: FrozenSet[str]) -> bool:
        """True iff no edge has both endpoints in ``subset``."""
        return all(not (left in subset and right in subset) for left, right in self.edges)

    def is_vertex_cover(self, subset: FrozenSet[str]) -> bool:
        """True iff every edge has at least one endpoint in ``subset``."""
        return all(left in subset or right in subset for left, right in self.edges)

    def is_proper_coloring(self, coloring: Dict[str, int]) -> bool:
        """True iff no edge is monochromatic."""
        return all(coloring[left] != coloring[right] for left, right in self.edges)


# --------------------------------------------------------------------------- #
# non-independent sets
# --------------------------------------------------------------------------- #
class NonIndependentSetCompactor(Compactor[Graph, int]):
    """Counts subsets that are *not* independent.

    Domains: ``{out, in}`` per vertex.  Certificates: edge indices (always
    valid).  Selector: pin both endpoints of the edge to ``in`` — a subset
    is non-independent iff it contains both endpoints of some edge.
    """

    def __init__(self) -> None:
        super().__init__(k=2)

    def solution_domains(self, instance: Graph) -> Tuple[Tuple[str, ...], ...]:
        return tuple(("out", "in") for _ in instance.vertices)

    def certificates(self, instance: Graph) -> Iterator[int]:
        return iter(range(len(instance.edges)))

    def is_valid_certificate(self, instance: Graph, certificate: int) -> bool:
        return 0 <= certificate < len(instance.edges)

    def selector(self, instance: Graph, certificate: int) -> Selector:
        left, right = instance.edges[certificate]
        return Selector({instance.vertex_index(left): 1, instance.vertex_index(right): 1})


def count_non_independent_sets(graph: Graph, method: str = "decomposed") -> int:
    """Exact count of non-independent vertex subsets."""
    return NonIndependentSetCompactor().unfold_count(graph, method=method)


# --------------------------------------------------------------------------- #
# non-vertex-covers
# --------------------------------------------------------------------------- #
class NonVertexCoverCompactor(Compactor[Graph, int]):
    """Counts subsets that are *not* vertex covers.

    Same domains as above; the selector pins both endpoints of an edge to
    ``out`` — a subset fails to cover iff some edge has both endpoints
    outside it.
    """

    def __init__(self) -> None:
        super().__init__(k=2)

    def solution_domains(self, instance: Graph) -> Tuple[Tuple[str, ...], ...]:
        return tuple(("out", "in") for _ in instance.vertices)

    def certificates(self, instance: Graph) -> Iterator[int]:
        return iter(range(len(instance.edges)))

    def is_valid_certificate(self, instance: Graph, certificate: int) -> bool:
        return 0 <= certificate < len(instance.edges)

    def selector(self, instance: Graph, certificate: int) -> Selector:
        left, right = instance.edges[certificate]
        return Selector({instance.vertex_index(left): 0, instance.vertex_index(right): 0})


def count_non_vertex_covers(graph: Graph, method: str = "decomposed") -> int:
    """Exact count of vertex subsets that are not vertex covers."""
    return NonVertexCoverCompactor().unfold_count(graph, method=method)


# --------------------------------------------------------------------------- #
# non-c-colourings
# --------------------------------------------------------------------------- #
class NonColoringCompactor(Compactor[Graph, Tuple[int, int]]):
    """Counts colourings (with ``color_count`` colours) that are *not* proper.

    Domains: the colour set per vertex.  Certificates: pairs
    ``(edge index, colour)``; the selector pins both endpoints of the edge
    to that colour (a colouring is improper iff some edge is monochromatic).
    The paper's example is ``color_count = 3`` (non-3-colourings).
    """

    def __init__(self, color_count: int = 3) -> None:
        if color_count < 1:
            raise ReproError("at least one colour is required")
        super().__init__(k=2)
        self._color_count = color_count

    @property
    def color_count(self) -> int:
        return self._color_count

    def solution_domains(self, instance: Graph) -> Tuple[Tuple[str, ...], ...]:
        palette = tuple(f"c{index}" for index in range(self._color_count))
        return tuple(palette for _ in instance.vertices)

    def certificates(self, instance: Graph) -> Iterator[Tuple[int, int]]:
        for edge_index in range(len(instance.edges)):
            for color in range(self._color_count):
                yield (edge_index, color)

    def is_valid_certificate(self, instance: Graph, certificate: Tuple[int, int]) -> bool:
        edge_index, color = certificate
        return 0 <= edge_index < len(instance.edges) and 0 <= color < self._color_count

    def selector(self, instance: Graph, certificate: Tuple[int, int]) -> Selector:
        edge_index, color = certificate
        left, right = instance.edges[edge_index]
        return Selector(
            {instance.vertex_index(left): color, instance.vertex_index(right): color}
        )


def count_non_colorings(graph: Graph, colors: int = 3, method: str = "decomposed") -> int:
    """Exact count of improper colourings with the given number of colours."""
    return NonColoringCompactor(colors).unfold_count(graph, method=method)
