"""Companion counting problems of Sections 4.1, 4.4 and 7.

Each problem comes with a brute-force oracle, a compactor witnessing its
membership in the Λ-hierarchy (or SpanLL), and an exact counter built on
the union-of-boxes engine — so the paper's completeness statements have an
executable counterpart that the tests and benchmarks exercise.
"""

from .coloring import (
    ForbiddenColoringCompactor,
    ForbiddenColoringInstance,
    count_forbidden_colorings,
    non_proper_coloring_instance,
)
from .dnf import (
    DisjointPositiveDNF,
    DisjointPositiveDNFCompactor,
    PositiveDNF,
    PositiveDNFCompactor,
    count_disjoint_positive_dnf,
    count_positive_dnf,
)
from .graphs import (
    Graph,
    NonColoringCompactor,
    NonIndependentSetCompactor,
    NonVertexCoverCompactor,
    count_non_colorings,
    count_non_independent_sets,
    count_non_vertex_covers,
)
from .sat import CNFFormula, Literal, count_satisfying_assignments, is_satisfiable

__all__ = [
    "CNFFormula",
    "DisjointPositiveDNF",
    "DisjointPositiveDNFCompactor",
    "ForbiddenColoringCompactor",
    "ForbiddenColoringInstance",
    "Graph",
    "Literal",
    "NonColoringCompactor",
    "NonIndependentSetCompactor",
    "NonVertexCoverCompactor",
    "PositiveDNF",
    "PositiveDNFCompactor",
    "count_disjoint_positive_dnf",
    "count_forbidden_colorings",
    "count_non_colorings",
    "count_non_independent_sets",
    "count_non_vertex_covers",
    "count_positive_dnf",
    "count_satisfying_assignments",
    "is_satisfiable",
    "non_proper_coloring_instance",
]
