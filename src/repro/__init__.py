"""repro: counting database repairs under primary keys.

A faithful, production-quality Python implementation of

    Marco Calautti, Marco Console and Andreas Pieris.
    *Counting Database Repairs under Primary Keys Revisited.*
    PODS 2019.  doi:10.1145/3294052.3319703

The package provides the relational substrate (databases, primary keys,
blocks, repairs), a first-order query language, exact counters for
``#CQA(Q, Σ)``, the Λ-hierarchy machinery (compactors, guess–check–expand
transducers, union-of-boxes counting), the FPRAS of Theorem 6.2 and the
Karp–Luby baseline, the companion problems of Section 7, and the
parsimonious reductions used in the paper's hardness proofs.

Most users only need the façade in :mod:`repro.core`::

    from repro import CQASolver, Database, PrimaryKeySet, fact, parse_query

    db = Database([fact("Employee", 1, "Bob", "HR"), ...])
    keys = PrimaryKeySet.from_dict({"Employee": [1]})
    solver = CQASolver(db, keys)
    result = solver.count(parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)"))
"""

from .db import (
    Block,
    BlockDecomposition,
    Database,
    Fact,
    KeyConstraint,
    PrimaryKeySet,
    RelationSchema,
    Schema,
    fact,
)
from .query import (
    Query,
    UCQ,
    atom,
    conjunctive_query,
    keywidth,
    parse_query,
    to_ucq,
    union_query,
    var,
    vars_,
)
from .repairs import (
    count_repairs_satisfying,
    count_total_repairs,
    enumerate_repairs,
    relative_frequency,
)
from .core import CQAResult, CQASolver

__version__ = "1.2.0"

__all__ = [
    "Block",
    "BlockDecomposition",
    "CQAResult",
    "CQASolver",
    "Database",
    "Fact",
    "KeyConstraint",
    "PrimaryKeySet",
    "Query",
    "RelationSchema",
    "Schema",
    "UCQ",
    "atom",
    "conjunctive_query",
    "count_repairs_satisfying",
    "count_total_repairs",
    "enumerate_repairs",
    "fact",
    "keywidth",
    "parse_query",
    "relative_frequency",
    "to_ucq",
    "union_query",
    "var",
    "vars_",
    "__version__",
]
