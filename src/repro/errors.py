"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch any failure originating in this package with a single ``except``
clause while still being able to distinguish precise failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A schema is malformed or used inconsistently.

    Raised, for instance, when a fact mentions a relation that is not part
    of the schema, or when a relation is declared twice with different
    arities.
    """


class ArityError(SchemaError):
    """A fact or atom has the wrong number of arguments for its relation."""


class FrozenDatabaseError(SchemaError):
    """A frozen (immutable snapshot) database was asked to mutate itself.

    Databases are frozen when they become engine snapshots (registration in
    a :class:`~repro.engine.SolverPool`, or an explicit
    :meth:`~repro.db.database.Database.freeze`); mutating a snapshot in
    place would silently corrupt every cache keyed by its content digest,
    so the attempt is rejected loudly instead.  Derive a new snapshot with
    :meth:`~repro.db.database.Database.apply_delta`.
    """


class DeltaError(SchemaError):
    """A delta (inserted/deleted fact sets) is malformed.

    For example a fact listed both as inserted and as deleted, or an
    inserted fact that does not fit the target database's schema.
    """


class ConstraintError(ReproError):
    """A key constraint is malformed.

    Examples include key positions outside the relation's arity, or a set of
    constraints declaring two different keys for the same relation (which
    would violate the *primary* key assumption the paper works under).
    """


class QueryError(ReproError):
    """A query is malformed or does not belong to the expected fragment."""


class QueryParseError(QueryError):
    """The textual representation of a query could not be parsed."""


class FragmentError(QueryError):
    """A query does not belong to the syntactic fragment an algorithm needs.

    For example, the certificate-based exact counter and the FPRAS of
    Theorem 6.2 require existential positive queries; feeding them a query
    with negation raises this error.
    """


class EvaluationError(ReproError):
    """Query evaluation failed (e.g. free variables left unbound)."""


class ReductionError(ReproError):
    """A many-one reduction received an input outside its domain."""


class ApproximationError(ReproError):
    """An approximation scheme was configured with invalid parameters.

    For example ``epsilon <= 0`` or ``delta`` outside ``(0, 1)``.
    """


class CompactorError(ReproError):
    """A compactor produced or was asked to parse a malformed compact string."""


class StoreError(ReproError):
    """The persistence subsystem (:mod:`repro.store`) was misused.

    Store *entries* can never raise — damaged or missing entries read as
    cache misses by design — so this only covers genuine misuse, such as
    appending a lineage record that does not extend its chain.
    """


class LineageError(ReproError):
    """A snapshot lineage could not resolve or replay a reference.

    Raised when an ``as_of`` reference names no recorded snapshot (unknown
    digest, ambiguous prefix, out-of-range chain index), when no recorded
    delta chain connects the materialised head to the requested snapshot,
    or when replaying a chain fails to reproduce the recorded content
    digest (a corrupt or incomplete history — the replay is *verified*, so
    a damaged catalog can lose history but never fabricate a snapshot).
    """


class EngineError(ReproError):
    """The batch engine was misused (unknown database, bad worker count)."""


class BatchSpecError(EngineError):
    """A batch job specification (job file or job payload) is malformed."""


class ServerError(EngineError):
    """The async serving layer was misconfigured or misused.

    Examples include a non-positive shard count or queue limit, an unknown
    backpressure policy, or submitting work to a server that was never
    started.
    """


class WireError(ServerError):
    """An HTTP wire-protocol exchange was malformed or truncated.

    Raised by the zero-dependency HTTP front (:mod:`repro.server.wire`)
    for unparseable request lines, oversized headers/bodies, truncated
    chunked streams and the like.  Server-side it maps to a ``400``
    response; client-side it means the transport broke mid-exchange —
    never that a job failed silently.
    """


class ServerOverloadedError(ServerError):
    """A job was rejected because the bounded queue is full.

    Only raised under the ``"reject"`` backpressure policy; the ``"wait"``
    policy blocks the submitter instead.  Rejection is loud by design — a
    job is either accepted (and will produce a result or an error) or the
    caller is told immediately, never silently dropped.
    """


class RebalanceError(ServerError):
    """An elastic-sharding operation could not be performed.

    Raised for conflicting ownership moves (the same name is already
    mid-handoff), unknown shard ids, or removing the last shard.  Over
    HTTP it maps to ``409 Conflict`` — not retryable by blind resend: the
    caller must change the request or wait for the conflicting operation
    to finish.
    """
