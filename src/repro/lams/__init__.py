"""The Λ-hierarchy machinery: selectors, boxes, compactors and transducers.

This subpackage is the operational counterpart of Sections 4 and 5 of the
paper: compact representations ``[[S1, ..., Sn]]_k`` with their unfolding,
the abstract logspace k-compactor (Definition 4.1), the #CQA compactor of
Algorithm 2, the guess–check–expand transducer of Algorithm 1, exact
union-of-boxes counting (the engine behind every exact counter in the
library), and the unbounded SpanLL variant of Section 7.2.
"""

from .compact import (
    CompactString,
    compact_from_selector,
    parse_compact,
    render_compact,
    unfolding,
    unfolding_size,
)
from .compactor import Compactor, encode_token
from .cqa_compactor import CQACertificate, CQACompactor, encode_fact
from .hierarchy import STRUCTURAL_FACTS, StructuralFact, TabularCompactor, level_of
from .selectors import Box, Selector
from .spanll import UnboundedCompactor, forget_bound, is_spanll_compactor
from .transducer import GuessCheckExpandTransducer
from .union_of_boxes import (
    ComponentTask,
    component_union_tasks,
    connected_components,
    count_component_union,
    count_union_by_enumeration,
    count_union_decomposed,
    count_union_inclusion_exclusion,
    count_union_of_boxes,
)

__all__ = [
    "Box",
    "CQACertificate",
    "CQACompactor",
    "CompactString",
    "ComponentTask",
    "Compactor",
    "GuessCheckExpandTransducer",
    "STRUCTURAL_FACTS",
    "Selector",
    "StructuralFact",
    "TabularCompactor",
    "UnboundedCompactor",
    "compact_from_selector",
    "component_union_tasks",
    "connected_components",
    "count_component_union",
    "count_union_by_enumeration",
    "count_union_decomposed",
    "count_union_inclusion_exclusion",
    "count_union_of_boxes",
    "encode_fact",
    "encode_token",
    "forget_bound",
    "is_spanll_compactor",
    "level_of",
    "parse_compact",
    "render_compact",
    "unfolding",
    "unfolding_size",
]
