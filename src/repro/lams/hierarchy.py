"""The Λ-hierarchy: levels, a tabular compactor, and structural facts.

The class ``Λ[k]`` consists of the functions ``unfold_M`` for logspace
k-compactors ``M``; the hierarchy is ``Λ = ⋃_k Λ[k]`` and it sits inside
SpanL (Theorem 4.3).  This module provides:

* :class:`TabularCompactor` — a concrete, fully explicit compactor given by
  a table mapping certificates to selectors.  It is the workhorse for
  tests, for synthetic Λ[k] functions, and for exercising the hardness
  reduction of Theorem 5.1 (which must work for *every* function in Λ[k],
  i.e. for every compactor, so an arbitrary-table compactor is exactly the
  right generator of test cases).
* :func:`level_of` — the syntactic level of a compactor (its ``k``).
* :data:`STRUCTURAL_FACTS` — the paper's structural results about the
  hierarchy, as machine-readable statements used by documentation and by
  the reporting layer of the benchmarks.  These are *recorded*, not
  re-proved: the separations are conditional on standard conjectures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from ..errors import CompactorError
from .compactor import Compactor, encode_token
from .selectors import Selector

__all__ = ["TabularCompactor", "level_of", "StructuralFact", "STRUCTURAL_FACTS"]


class TabularCompactor(Compactor[str, str]):
    """A compactor defined by explicit tables, keyed by instance name.

    Parameters
    ----------
    k:
        The selector-length bound (``None`` for an unbounded / SpanLL
        compactor).
    domains_by_instance:
        For each instance name, the solution domains (sequences of strings;
        reserved characters are escaped automatically).
    selectors_by_instance:
        For each instance name, a mapping from certificate name to the
        selector that certificate determines.  Certificates absent from the
        mapping are invalid (the compactor outputs ε for them).

    The instance space is the set of keys of ``domains_by_instance``; the
    candidate certificate space of an instance is the union of its valid
    certificates plus any extra names supplied via ``invalid_certificates``.
    """

    def __init__(
        self,
        k: Optional[int],
        domains_by_instance: Mapping[str, Sequence[Sequence[str]]],
        selectors_by_instance: Mapping[str, Mapping[str, Selector]],
        invalid_certificates: Optional[Mapping[str, Sequence[str]]] = None,
    ) -> None:
        super().__init__(k)
        self._domains: Dict[str, Tuple[Tuple[str, ...], ...]] = {
            instance: tuple(
                tuple(encode_token(element) for element in domain) for domain in domains
            )
            for instance, domains in domains_by_instance.items()
        }
        self._selectors: Dict[str, Dict[str, Selector]] = {
            instance: dict(table) for instance, table in selectors_by_instance.items()
        }
        self._invalid: Dict[str, Tuple[str, ...]] = {
            instance: tuple(names)
            for instance, names in (invalid_certificates or {}).items()
        }
        for instance in self._selectors:
            if instance not in self._domains:
                raise CompactorError(
                    f"selectors given for unknown instance {instance!r}"
                )
            for certificate, selector in self._selectors[instance].items():
                if k is not None and selector.length > k:
                    raise CompactorError(
                        f"certificate {certificate!r} of instance {instance!r} "
                        f"has selector length {selector.length} > k={k}"
                    )

    def instances(self) -> Tuple[str, ...]:
        """All instance names the compactor is defined on."""
        return tuple(self._domains)

    # ------------------------------------------------------------------ #
    # Compactor hooks
    # ------------------------------------------------------------------ #
    def solution_domains(self, instance: str) -> Tuple[Tuple[str, ...], ...]:
        try:
            return self._domains[instance]
        except KeyError as exc:
            raise CompactorError(f"unknown instance {instance!r}") from exc

    def certificates(self, instance: str) -> Iterator[str]:
        return iter(self._selectors.get(instance, {}))

    def candidate_certificates(self, instance: str) -> Iterator[str]:
        yield from self._selectors.get(instance, {})
        yield from self._invalid.get(instance, ())

    def is_valid_certificate(self, instance: str, certificate: str) -> bool:
        return certificate in self._selectors.get(instance, {})

    def selector(self, instance: str, certificate: str) -> Selector:
        try:
            return self._selectors[instance][certificate]
        except KeyError as exc:
            raise CompactorError(
                f"certificate {certificate!r} is not valid for instance {instance!r}"
            ) from exc


def level_of(compactor: Compactor) -> Optional[int]:
    """The syntactic Λ-hierarchy level of a compactor (``None`` = SpanLL).

    This is an upper bound on the level of the function the compactor
    computes: the function may also belong to lower levels (e.g. a
    2-compactor that never pins more than one domain computes a Λ[1]
    function).
    """
    return compactor.k


@dataclass(frozen=True)
class StructuralFact:
    """A structural statement about the Λ-hierarchy recorded from the paper."""

    statement: str
    condition: str
    reference: str


#: The paper's structural results, used by reports and documentation.  The
#: separations are conditional; the inclusions are unconditional.
STRUCTURAL_FACTS: Tuple[StructuralFact, ...] = (
    StructuralFact(
        "Λ[0] ⊆ Λ[1] ⊆ Λ[2] ⊆ ... ⊆ Λ ⊆ SpanL",
        "unconditional",
        "Theorem 4.3",
    ),
    StructuralFact(
        "Λ ⊊ SpanL",
        "unless L = NL",
        "Theorem 4.3",
    ),
    StructuralFact(
        "Λ[1] ⊆ #L, and Λ[1] ⊊ #L unless L = NL",
        "unless L = NL",
        "Theorem 4.4(1)",
    ),
    StructuralFact(
        "FP^{Λ[2]} = FP^{#P}",
        "unconditional",
        "Theorem 4.4(2)",
    ),
    StructuralFact(
        "Λ[2] ⊆ FP implies P = NP",
        "conditional consequence",
        "Corollary 4.5(1)",
    ),
    StructuralFact(
        "Λ[1] ⊊ Λ[2]",
        "unless P = NP",
        "Proposition 4.6(1)",
    ),
    StructuralFact(
        "Λ[0] ⊊ Λ[1]",
        "unless the Lenstra-Pomerance-Wagstaff conjecture fails",
        "Proposition 4.6(2)",
    ),
    StructuralFact(
        "every function in Λ[k] admits an FPRAS",
        "unconditional",
        "Theorem 6.2",
    ),
    StructuralFact(
        "#CQA^kw_k(∃FO+) is ≤log_m-complete for Λ[k]",
        "unconditional",
        "Theorem 5.1",
    ),
    StructuralFact(
        "Λ ⊆ SpanLL ⊆ SpanL, and SpanLL ⊊ SpanL unless L = NL",
        "partly conditional",
        "Theorem 7.3",
    ),
)
