"""SpanLL: the class of unbounded-compactor counting functions (Section 7.2).

SpanLL is defined exactly like the levels of the Λ-hierarchy except that the
compactor may pin an *unbounded* number of solution domains — its outputs
live in ``[[S1, ..., Sn]]`` rather than ``[[S1, ..., Sn]]_k``.  The paper
shows Λ ⊆ SpanLL ⊆ SpanL (Theorem 7.3), that every SpanLL function still
admits an FPRAS (Theorem 7.4) — but only via the "complex" sample space,
because the natural-sample-space FPRAS of Theorem 6.2 has sample complexity
``m^k`` and therefore degrades exponentially when ``k`` is unbounded — and
that #DisjPosDNF and #ForbColoring are SpanLL-complete (Theorem 7.5).

In the library an unbounded compactor is simply a
:class:`~repro.lams.compactor.Compactor` constructed with ``k=None``.  This
module adds the small utilities that make the distinction explicit and
convenient: a dedicated base class, a predicate, and a wrapper that
forgets a bounded compactor's bound (the executable content of Λ ⊆ SpanLL).
"""

from __future__ import annotations

from typing import Iterator, Tuple, TypeVar

from .compactor import Compactor
from .selectors import Selector

__all__ = ["UnboundedCompactor", "is_spanll_compactor", "forget_bound"]

InstanceT = TypeVar("InstanceT")
CertificateT = TypeVar("CertificateT")


class UnboundedCompactor(Compactor[InstanceT, CertificateT]):
    """Base class for compactors that may pin arbitrarily many domains.

    Subclasses implement the same four hooks as a bounded compactor; the
    constructor simply fixes ``k = None`` so the selector-length check is
    disabled, matching the definition of SpanLL.
    """

    def __init__(self) -> None:
        super().__init__(k=None)


def is_spanll_compactor(compactor: Compactor) -> bool:
    """True iff the compactor is unbounded (defines a SpanLL function).

    Note that every bounded compactor also defines a SpanLL function — the
    inclusion Λ ⊆ SpanLL — so this predicate is about the *syntactic* form,
    not about class membership of the function computed.
    """
    return compactor.k is None


class _ForgetfulCompactor(Compactor):
    """A view of a bounded compactor with the bound erased (Λ[k] ⊆ SpanLL)."""

    def __init__(self, inner: Compactor) -> None:
        super().__init__(k=None)
        self._inner = inner

    def solution_domains(self, instance) -> Tuple[Tuple[str, ...], ...]:
        return self._inner.solution_domains(instance)

    def certificates(self, instance) -> Iterator:
        return self._inner.certificates(instance)

    def candidate_certificates(self, instance) -> Iterator:
        return self._inner.candidate_certificates(instance)

    def is_valid_certificate(self, instance, certificate) -> bool:
        return self._inner.is_valid_certificate(instance, certificate)

    def selector(self, instance, certificate) -> Selector:
        return self._inner.selector(instance, certificate)


def forget_bound(compactor: Compactor) -> Compactor:
    """Return an unbounded view of ``compactor`` computing the same function.

    This is the executable content of the inclusion Λ ⊆ SpanLL: a
    k-compactor is in particular an (unbounded) compactor, and the counting
    function is unchanged.
    """
    if compactor.k is None:
        return compactor
    return _ForgetfulCompactor(compactor)
