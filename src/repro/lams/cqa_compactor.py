"""The k-compactor ``M_{Q,Σ}`` for #CQA (Algorithm 2 of the paper).

Fix a UCQ ``Q = Q1 ∨ ... ∨ Qm`` and a set ``Σ`` of primary keys with
``kw(Q, Σ) = k``.  On input a database ``D`` the solution domains are the
blocks ``B1, ..., Bn`` of ``D`` in the canonical order ``≺_{D,Σ}``.  A
candidate certificate is a pair ``(Q', h)`` where ``Q'`` is a disjunct of
``Q`` and ``h : var(Q') → dom(D)``; it is valid when ``h(Q') ⊆ D`` and
``h(Q') |= Σ``.  The selector determined by a valid certificate pins the
block ``B_i`` to the fact ``R(t̄)`` exactly when ``B_i ∩ h(Q') = {R(t̄)}``
and ``Σ`` has an ``R``-key.

The unfolding count of this compactor is precisely ``#CQA(Q, Σ)(D)`` — the
number of repairs of ``D`` that entail ``Q`` — which is how Theorem 5.1's
membership direction ( #CQA^kw_k(∃FO+) ∈ Λ[k] ) is established.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..db.blocks import BlockDecomposition
from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..db.facts import Fact
from ..errors import FragmentError
from ..query.ast import Query, Variable
from ..query.evaluation import Assignment
from ..query.homomorphism import find_homomorphisms, homomorphism_image
from ..query.keywidth import keywidth
from ..query.rewriting import UCQ, CQDisjunct, to_ucq
from .compactor import Compactor, encode_token
from .selectors import Selector

__all__ = ["CQACertificate", "CQACompactor", "encode_fact"]

#: A certificate for #CQA: the index of the disjunct and the homomorphism.
CQACertificate = Tuple[int, Tuple[Tuple[Variable, object], ...]]


def encode_fact(fact_: Fact) -> str:
    """Encode a fact as a compact-string token (reserved characters escaped)."""
    return encode_token(str(fact_))


class CQACompactor(Compactor[Database, CQACertificate]):
    """The compactor of Algorithm 2, parameterised by ``(Q, Σ)``.

    Parameters
    ----------
    query:
        An existential positive query (or an already-rewritten
        :class:`~repro.query.rewriting.UCQ`).  Non-Boolean queries are
        accepted; the certificate machinery then treats the answer
        variables as additional existential variables, which corresponds to
        counting the repairs entailing *some* answer.  For counting the
        repairs entailing a *specific* tuple, substitute the tuple first
        (see :func:`repro.repairs.counting.bind_answer`).
    keys:
        The set ``Σ`` of primary keys.
    """

    def __init__(self, query: Union[Query, UCQ], keys: PrimaryKeySet) -> None:
        self._ucq = query if isinstance(query, UCQ) else to_ucq(query)
        self._keys = keys
        super().__init__(k=keywidth(self._ucq, keys))
        self._decompositions: Dict[int, BlockDecomposition] = {}

    # ------------------------------------------------------------------ #
    # configuration accessors
    # ------------------------------------------------------------------ #
    @property
    def ucq(self) -> UCQ:
        """The UCQ the compactor was built for."""
        return self._ucq

    @property
    def keys(self) -> PrimaryKeySet:
        """The primary keys ``Σ``."""
        return self._keys

    def decomposition(self, database: Database) -> BlockDecomposition:
        """The block decomposition of ``database`` (cached per database object)."""
        cache_key = id(database)
        decomposition = self._decompositions.get(cache_key)
        if decomposition is None or decomposition.database is not database:
            decomposition = BlockDecomposition(database, self._keys)
            self._decompositions[cache_key] = decomposition
        return decomposition

    # ------------------------------------------------------------------ #
    # Compactor hooks
    # ------------------------------------------------------------------ #
    def solution_domains(self, instance: Database) -> Tuple[Tuple[str, ...], ...]:
        decomposition = self.decomposition(instance)
        return tuple(
            tuple(encode_fact(fact_) for fact_ in block.facts)
            for block in decomposition.blocks
        )

    def certificates(self, instance: Database) -> Iterator[CQACertificate]:
        """Enumerate the valid certificates ``(Q', h)`` by homomorphism search.

        Only homomorphisms whose image is ``Σ``-consistent are yielded — the
        "check" step of the guess–check–expand paradigm.
        """
        for disjunct_index, disjunct in enumerate(self._ucq.disjuncts):
            if disjunct.answer_bindings:
                # A disjunct that forces an answer binding cannot witness a
                # Boolean entailment unless the query was bound first.
                raise FragmentError(
                    "the compactor requires a Boolean (or pre-bound) query; "
                    "bind the answer tuple before counting"
                )
            for assignment in find_homomorphisms(disjunct.atoms, instance):
                image = homomorphism_image(disjunct.atoms, assignment)
                if self._keys.is_consistent(image):
                    yield (disjunct_index, tuple(sorted(assignment.items(), key=lambda item: item[0].name)))

    def candidate_certificates(self, instance: Database) -> Iterator[CQACertificate]:
        """All candidate certificates: every mapping ``var(Q') → dom(D)``.

        Exponential in the number of query variables; intended for
        machine-faithful validation on small inputs (the "guess" step of
        Algorithm 1 enumerated exhaustively).
        """
        domain = instance.active_domain_sorted()
        for disjunct_index, disjunct in enumerate(self._ucq.disjuncts):
            variables = sorted(disjunct.variables(), key=lambda variable: variable.name)
            for values in itertools.product(domain, repeat=len(variables)):
                yield (disjunct_index, tuple(zip(variables, values)))

    def is_valid_certificate(self, instance: Database, certificate: CQACertificate) -> bool:
        disjunct_index, assignment_items = certificate
        if disjunct_index < 0 or disjunct_index >= len(self._ucq.disjuncts):
            return False
        disjunct = self._ucq.disjuncts[disjunct_index]
        assignment: Assignment = dict(assignment_items)
        if set(assignment) != set(disjunct.variables()):
            return False
        try:
            image = homomorphism_image(disjunct.atoms, assignment)
        except KeyError:
            return False
        if not all(fact_ in instance for fact_ in image):
            return False
        return self._keys.is_consistent(image)

    def selector(self, instance: Database, certificate: CQACertificate) -> Selector:
        disjunct_index, assignment_items = certificate
        disjunct = self._ucq.disjuncts[disjunct_index]
        assignment: Assignment = dict(assignment_items)
        image = homomorphism_image(disjunct.atoms, assignment)
        decomposition = self.decomposition(instance)
        pins: Dict[int, int] = {}
        for fact_ in image:
            if not self._keys.has_key(fact_.relation):
                # Un-keyed facts live in singleton blocks; Algorithm 2 leaves
                # them to the free branch (which offers a single choice), so
                # pinning them is unnecessary and would inflate the selector
                # length beyond kw(Q, Σ).
                continue
            block_index = decomposition.block_index_of(fact_)
            block = decomposition[block_index]
            pins[block_index] = block.index_of(fact_)
        return Selector(pins)

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #
    def count(self, database: Database, method: str = "decomposed") -> int:
        """``#CQA(Q, Σ)(D)``: the number of repairs of ``D`` entailing ``Q``."""
        return self.unfold_count(database, method=method)

    def repairs_entailing(self, database: Database) -> Iterator[Database]:
        """Enumerate (without duplicates) the repairs entailing the query.

        Materialising repairs is exponential; this is meant for small
        databases, tests and examples.
        """
        decomposition = self.decomposition(database)
        seen: Set[Tuple[int, ...]] = set()
        selectors = self.selectors(database)
        sizes = decomposition.block_sizes()
        for choices in itertools.product(*(range(size) for size in sizes)):
            if choices in seen:
                continue
            for selector in selectors:
                if all(choices[index] == element for index, element in selector.pins):
                    seen.add(choices)
                    yield decomposition.repair_from_choices(choices)
                    break
