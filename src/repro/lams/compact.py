"""Compact representations ``[[S1, ..., Sn]]_k`` and their unfolding.

Section 4.3 of the paper fixes a concrete string syntax for the outputs of
logspace compactors.  Given non-empty sets of strings ``S1, ..., Sn``, the
set ``[[S1, ..., Sn]]_k`` consists of the empty string ε together with all
strings ``s1$s2$...$sn`` where each ``si`` is either

* an element of ``Si`` (the domain is *pinned* to that element), or
* the full enumeration ``#s¹i$...$sℓii#`` of ``Si`` (the domain is left
  *free*),

and at most ``k`` positions are pinned.  The *unfolding* of such a string
is ``unf(s1) × ... × unf(sn)`` where a pinned position unfolds to the
singleton and a free position unfolds to the whole set; ε unfolds to ∅.

This module implements the syntax faithfully — rendering, parsing and
unfolding — so the compactor abstraction can be tested at the string level
exactly as the paper defines it, and provides the conversion between
compact strings and the :class:`~repro.lams.selectors.Selector`/box view
used by the counting engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import CompactorError
from .selectors import Selector

__all__ = [
    "CompactString",
    "render_compact",
    "parse_compact",
    "unfolding",
    "unfolding_size",
    "compact_from_selector",
]

#: Separator between positions, as in the paper.
_SEPARATOR = "$"
#: Delimiter around a full domain enumeration, as in the paper.
_DELIMITER = "#"


@dataclass(frozen=True)
class CompactString:
    """A parsed element of ``[[S1, ..., Sn]]_k``.

    ``entries[i]`` is either the pinned element (a single string) or ``None``
    when position ``i`` is free (the whole domain ``S_{i+1}``).
    ``domains[i]`` is the domain itself; it is carried along because the
    free positions need it for unfolding and because the paper's string
    embeds the enumeration of free domains verbatim.
    The empty compact string (ε) is represented by ``entries is None``.
    """

    domains: Tuple[Tuple[str, ...], ...]
    entries: Optional[Tuple[Optional[str], ...]]

    @property
    def is_empty(self) -> bool:
        """True for ε, the output of the compactor on an invalid certificate."""
        return self.entries is None

    def pinned_count(self) -> int:
        """Number of pinned positions (the ℓ of the underlying selector)."""
        if self.entries is None:
            return 0
        return sum(1 for entry in self.entries if entry is not None)

    def selector(self) -> Selector:
        """The selector view of the compact string (element indices per domain)."""
        if self.entries is None:
            raise CompactorError("the empty compact string has no selector")
        pins = {}
        for index, entry in enumerate(self.entries):
            if entry is not None:
                try:
                    pins[index] = self.domains[index].index(entry)
                except ValueError as exc:
                    raise CompactorError(
                        f"pinned element {entry!r} is not a member of domain "
                        f"{index}: {self.domains[index]}"
                    ) from exc
        return Selector(pins)


def _validate_domains(domains: Sequence[Sequence[str]]) -> Tuple[Tuple[str, ...], ...]:
    normalised: List[Tuple[str, ...]] = []
    for position, domain in enumerate(domains):
        domain_tuple = tuple(domain)
        if not domain_tuple:
            raise CompactorError(f"domain {position} is empty; domains must be non-empty")
        for element in domain_tuple:
            if _SEPARATOR in element or _DELIMITER in element:
                raise CompactorError(
                    f"domain element {element!r} contains a reserved character "
                    f"({_SEPARATOR!r} or {_DELIMITER!r}); encode elements first"
                )
        normalised.append(domain_tuple)
    return tuple(normalised)


def render_compact(
    domains: Sequence[Sequence[str]],
    pinned: Optional[Sequence[Optional[str]]],
    k: Optional[int] = None,
) -> str:
    """Render a compact string of ``[[S1, ..., Sn]]_k``.

    ``pinned`` gives, for each position, either the pinned element or
    ``None`` for a free position; passing ``pinned=None`` renders ε.
    When ``k`` is given, the number of pinned positions is checked against
    it (this is the membership condition of ``[[...]]_k``).
    """
    if pinned is None:
        return ""
    validated = _validate_domains(domains)
    if len(pinned) != len(validated):
        raise CompactorError(
            f"{len(pinned)} entries provided for {len(validated)} domains"
        )
    pinned_count = sum(1 for entry in pinned if entry is not None)
    if k is not None and pinned_count > k:
        raise CompactorError(
            f"{pinned_count} positions are pinned but the compactor bound is k={k}"
        )
    pieces: List[str] = []
    for position, (domain, entry) in enumerate(zip(validated, pinned)):
        if entry is None:
            pieces.append(_DELIMITER + _SEPARATOR.join(domain) + _DELIMITER)
        else:
            if entry not in domain:
                raise CompactorError(
                    f"pinned element {entry!r} is not in domain {position}: {domain}"
                )
            pieces.append(entry)
    return _SEPARATOR.join(pieces)


def parse_compact(
    text: str, domains: Sequence[Sequence[str]], k: Optional[int] = None
) -> CompactString:
    """Parse a string of ``[[S1, ..., Sn]]_k`` back into a :class:`CompactString`.

    The parser is strict: every free position must spell out its domain
    exactly (same elements, same order), pinned elements must belong to
    their domain, and the number of pinned positions must respect ``k``
    when given.  This is what lets tests verify that a compactor's outputs
    are syntactically members of ``[[S1, ..., Sn]]_k`` as Definition 4.1
    requires.
    """
    validated = _validate_domains(domains)
    if text == "":
        return CompactString(validated, None)

    pieces = _split_top_level(text)
    if len(pieces) != len(validated):
        raise CompactorError(
            f"compact string has {len(pieces)} positions but {len(validated)} "
            f"domains were provided"
        )
    entries: List[Optional[str]] = []
    for position, (piece, domain) in enumerate(zip(pieces, validated)):
        if piece.startswith(_DELIMITER) and piece.endswith(_DELIMITER) and len(piece) >= 2:
            enumeration = piece[1:-1].split(_SEPARATOR) if len(piece) > 2 else [""]
            if tuple(enumeration) != domain:
                raise CompactorError(
                    f"free position {position} enumerates {enumeration} but the "
                    f"domain is {list(domain)}"
                )
            entries.append(None)
        else:
            if piece not in domain:
                raise CompactorError(
                    f"pinned element {piece!r} at position {position} is not in "
                    f"the domain {list(domain)}"
                )
            entries.append(piece)
    pinned_count = sum(1 for entry in entries if entry is not None)
    if k is not None and pinned_count > k:
        raise CompactorError(
            f"compact string pins {pinned_count} positions, exceeding k={k}"
        )
    return CompactString(validated, tuple(entries))


def _split_top_level(text: str) -> List[str]:
    """Split on ``$`` separators that are not inside a ``#...#`` enumeration."""
    pieces: List[str] = []
    current: List[str] = []
    inside = False
    for character in text:
        if character == _DELIMITER:
            inside = not inside
            current.append(character)
        elif character == _SEPARATOR and not inside:
            pieces.append("".join(current))
            current = []
        else:
            current.append(character)
    pieces.append("".join(current))
    return pieces


def unfolding(compact: CompactString) -> Iterator[Tuple[str, ...]]:
    """Enumerate the unfolding of a compact string.

    The unfolding of ε is empty; otherwise it is the cartesian product of
    the singletons (pinned positions) and full domains (free positions).
    """
    if compact.entries is None:
        return
    import itertools

    factors = [
        (entry,) if entry is not None else domain
        for entry, domain in zip(compact.entries, compact.domains)
    ]
    yield from itertools.product(*factors)


def unfolding_size(compact: CompactString) -> int:
    """|unfolding(s)| without materialising it."""
    if compact.entries is None:
        return 0
    size = 1
    for entry, domain in zip(compact.entries, compact.domains):
        size *= 1 if entry is not None else len(domain)
    return size


def compact_from_selector(
    domains: Sequence[Sequence[str]], selector: Selector
) -> CompactString:
    """Build the compact string that pins exactly the selector's coordinates."""
    validated = _validate_domains(domains)
    pins = selector.as_dict()
    entries: List[Optional[str]] = []
    for index, domain in enumerate(validated):
        if index in pins:
            entries.append(domain[pins[index]])
        else:
            entries.append(None)
    return CompactString(validated, tuple(entries))
