"""The guess–check–expand nondeterministic transducer (Algorithm 1).

Section 3.2 places ``#CQA(∃FO+)`` in SpanL by exhibiting, for every UCQ
``Q`` and set ``Σ`` of primary keys, a logspace nondeterministic transducer
``M_{Q,Σ}`` whose number of *distinct valid outputs* on input ``D`` equals
the number of repairs of ``D`` entailing ``Q``.  Section 4.1 generalises
the idea into the guess–check–expand paradigm; Section 4.2 observes that
the deterministic part of such an algorithm is exactly a compactor, while
the nondeterministic part is the unfolding of the compactor's outputs.

This module implements that correspondence operationally:
:class:`GuessCheckExpandTransducer` wraps any
:class:`~repro.lams.compactor.Compactor` and simulates the transducer —
guessing a certificate, checking it, and expanding it into an output string
one position at a time.  Its :meth:`span` (the number of distinct accepted
outputs) equals the compactor's ``unfold_count`` by construction, and the
test suite checks this equality on randomised instances, which is the
executable content of Theorem 4.3's ``Λ ⊆ SpanL`` direction.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Optional, Sequence, Set, Tuple, TypeVar

from .compact import unfolding
from .compactor import Compactor

__all__ = ["GuessCheckExpandTransducer"]

InstanceT = TypeVar("InstanceT")
CertificateT = TypeVar("CertificateT")


class GuessCheckExpandTransducer(Generic[InstanceT, CertificateT]):
    """Simulation of the guess–check–expand NTT induced by a compactor.

    Parameters
    ----------
    compactor:
        The compactor ``M`` providing the deterministic part (check +
        compact); the transducer contributes the nondeterministic guesses.
    use_candidate_space:
        When True the *guess* step ranges over
        :meth:`~repro.lams.compactor.Compactor.candidate_certificates`
        (faithful to the machine, exponential); when False (default) it
        ranges over the valid certificates only, which produces the same
        set of outputs because invalid guesses reject.
    """

    def __init__(
        self,
        compactor: Compactor[InstanceT, CertificateT],
        use_candidate_space: bool = False,
    ) -> None:
        self._compactor = compactor
        self._use_candidate_space = use_candidate_space

    @property
    def compactor(self) -> Compactor[InstanceT, CertificateT]:
        """The underlying compactor."""
        return self._compactor

    # ------------------------------------------------------------------ #
    # the three phases
    # ------------------------------------------------------------------ #
    def guesses(self, instance: InstanceT) -> Iterator[CertificateT]:
        """Phase 1 (*guess*): candidate certificates."""
        if self._use_candidate_space:
            return self._compactor.candidate_certificates(instance)
        return self._compactor.certificates(instance)

    def check(self, instance: InstanceT, certificate: CertificateT) -> bool:
        """Phase 2 (*check*): accept or reject the guessed certificate."""
        return self._compactor.is_valid_certificate(instance, certificate)

    def expand(
        self, instance: InstanceT, certificate: CertificateT
    ) -> Iterator[Tuple[str, ...]]:
        """Phase 3 (*expand*): all output strings reachable from the certificate.

        For positions pinned by the certificate's selector the transducer
        outputs the pinned element; for free positions it guesses an element
        of the corresponding solution domain.  The set of reachable outputs
        is therefore exactly the unfolding of the compactor's output.
        """
        yield from unfolding(self._compactor.output(instance, certificate))

    # ------------------------------------------------------------------ #
    # whole-machine semantics
    # ------------------------------------------------------------------ #
    def accepted_outputs(self, instance: InstanceT) -> Set[Tuple[str, ...]]:
        """The set of distinct valid outputs of the transducer on ``instance``.

        Each output is a tuple with one element (string-encoded) per
        solution domain — for #CQA, one fact per block, i.e. a repair.
        Materialises the set, so only suitable for small instances; use
        :meth:`span_via_compactor` for the count at scale.
        """
        outputs: Set[Tuple[str, ...]] = set()
        for certificate in self.guesses(instance):
            if not self.check(instance, certificate):
                continue
            outputs.update(self.expand(instance, certificate))
        return outputs

    def span(self, instance: InstanceT) -> int:
        """``span_M(x)``: the number of distinct valid outputs (materialised)."""
        return len(self.accepted_outputs(instance))

    def span_via_compactor(self, instance: InstanceT, method: str = "decomposed") -> int:
        """``span_M(x)`` computed without materialising outputs.

        Uses the union-of-boxes engine through the compactor; equal to
        :meth:`span` by the compactor/transducer correspondence.
        """
        return self._compactor.unfold_count(instance, method=method)

    def accepts(self, instance: InstanceT) -> bool:
        """Decision version: does the transducer accept at least one output?

        For #CQA this is ``#CQA>0``, which Theorem 3.4 places in L — the
        point being that it only requires finding one valid certificate,
        never expanding it.
        """
        for certificate in self.guesses(instance):
            if self.check(instance, certificate):
                return True
        return False
