"""Exact counting of unions of boxes.

Every problem the paper places in the Λ-hierarchy reduces, after the
guess–check phase, to the same combinatorial question:

    given solution domains ``S1, ..., Sn`` and a finite set of boxes
    ``[S1, ..., Sn]_σ1, ..., [S1, ..., Sn]_σN`` (each pinning at most ``k``
    domains), how large is their union?

For ``#CQA(Q, Σ)`` the domains are the blocks of the database and the boxes
come from the certificates ``(Q', h)``; for ``#DisjPoskDNF`` the domains are
the parts of the variable partition and the boxes come from the clauses;
for ``#kForbColoring`` the domains are the colour lists and the boxes come
from the forbidden assignments.

The problem is #P-hard in general already for ``k = 2`` (it subsumes
#Pos2DNF), so no polynomial exact algorithm exists unless FP = #P.  This
module provides exact algorithms that are fast on the instances that occur
in practice:

* :func:`count_union_inclusion_exclusion` — inclusion–exclusion over the
  boxes with consistency pruning; exponential in the number of boxes.
* :func:`count_union_by_enumeration` — enumerate assignments of the pinned
  ("support") coordinates only; exponential in the support size but
  independent of the number of boxes.
* :func:`count_union_decomposed` — the default: split the boxes into
  connected components (two boxes are connected when they pin a common
  coordinate), count the *complement* independently per component and
  multiply.  Within a component the cheaper of the two strategies above is
  chosen.  This is exact and typically orders of magnitude faster than
  either strategy alone because real queries touch few blocks at a time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .selectors import Selector

__all__ = [
    "ComponentTask",
    "component_union_tasks",
    "count_component_union",
    "count_union_of_boxes",
    "count_union_inclusion_exclusion",
    "count_union_by_enumeration",
    "count_union_decomposed",
    "connected_components",
]


def _product(values: Iterable[int]) -> int:
    result = 1
    for value in values:
        result *= value
    return result


def _deduplicate(selectors: Sequence[Selector]) -> List[Selector]:
    """Drop duplicate selectors and selectors subsumed by a weaker one.

    A selector whose pins are a superset of another selector's pins denotes
    a sub-box and contributes nothing to the union; removing it keeps the
    union unchanged while shrinking the instance.  The empty selector
    denotes the whole product space and subsumes everything.
    """
    unique: List[Selector] = []
    seen: Set[Tuple[Tuple[int, int], ...]] = set()
    for selector in selectors:
        if selector.pins not in seen:
            seen.add(selector.pins)
            unique.append(selector)
    # Subsumption: keep only minimal pin-sets.
    kept: List[Selector] = []
    pin_sets = [frozenset(selector.pins) for selector in unique]
    for index, pins in enumerate(pin_sets):
        subsumed = any(
            other_index != index and other_pins < pins
            or (other_pins == pins and other_index < index)
            for other_index, other_pins in enumerate(pin_sets)
        )
        if not subsumed:
            kept.append(unique[index])
    return kept


def count_union_inclusion_exclusion(
    domain_sizes: Sequence[int], selectors: Sequence[Selector]
) -> int:
    """|⋃ boxes| by inclusion–exclusion over the boxes.

    The intersection of a set of boxes is itself a box whose selector is the
    merge of the selectors — empty when any two of them disagree on a pinned
    coordinate.  Intersections are built incrementally (depth-first over the
    box list) so inconsistent branches are pruned early.
    """
    sizes = tuple(domain_sizes)
    boxes = _deduplicate(selectors)

    total = 0

    def recurse(start: int, merged: Dict[int, int], depth: int) -> None:
        nonlocal total
        for index in range(start, len(boxes)):
            candidate = boxes[index]
            conflict = False
            added: List[int] = []
            for coordinate, element in candidate.pins:
                existing = merged.get(coordinate)
                if existing is None:
                    merged[coordinate] = element
                    added.append(coordinate)
                elif existing != element:
                    conflict = True
                    break
            if not conflict:
                intersection_size = _product(
                    size
                    for coordinate, size in enumerate(sizes)
                    if coordinate not in merged
                )
                sign = 1 if depth % 2 == 0 else -1
                total += sign * intersection_size
                recurse(index + 1, merged, depth + 1)
            for coordinate in added:
                del merged[coordinate]

    recurse(0, {}, 0)
    return total


def count_union_by_enumeration(
    domain_sizes: Sequence[int], selectors: Sequence[Selector]
) -> int:
    """|⋃ boxes| by enumerating assignments of the support coordinates.

    The support is the set of coordinates pinned by at least one box.
    Coordinates outside the support are free in every box, so they factor
    out as a product.  For each assignment of the support coordinates we
    check whether some box accepts it.
    """
    sizes = tuple(domain_sizes)
    boxes = _deduplicate(selectors)
    if not boxes:
        return 0
    if any(selector.length == 0 for selector in boxes):
        # The empty selector denotes the full space.
        return _product(sizes)

    support = sorted({coordinate for selector in boxes for coordinate, _ in selector.pins})
    support_index = {coordinate: position for position, coordinate in enumerate(support)}
    outside_factor = _product(
        size for coordinate, size in enumerate(sizes) if coordinate not in support_index
    )

    compiled = [
        tuple((support_index[coordinate], element) for coordinate, element in selector.pins)
        for selector in boxes
    ]

    hit = 0
    for assignment in itertools.product(*(range(sizes[coordinate]) for coordinate in support)):
        for pins in compiled:
            if all(assignment[position] == element for position, element in pins):
                hit += 1
                break
    return hit * outside_factor


def connected_components(selectors: Sequence[Selector]) -> List[List[Selector]]:
    """Group boxes into connected components of the coordinate-sharing graph.

    Two boxes are in the same component when they pin a common coordinate
    (directly or transitively).  Because components pin disjoint coordinate
    sets, a uniformly random point avoids the boxes of different components
    independently — which is what :func:`count_union_decomposed` exploits.
    """
    parent: Dict[int, int] = {}

    def find(node: int) -> int:
        parent.setdefault(node, node)
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(left: int, right: int) -> None:
        parent[find(left)] = find(right)

    coordinate_owner: Dict[int, int] = {}
    for box_index, selector in enumerate(selectors):
        anchor = None
        for coordinate, _ in selector.pins:
            if coordinate in coordinate_owner:
                if anchor is None:
                    anchor = coordinate_owner[coordinate]
                else:
                    union(anchor, coordinate_owner[coordinate])
            else:
                coordinate_owner[coordinate] = box_index
        # Make sure every coordinate of this box ends up in the same group.
        for coordinate, _ in selector.pins:
            union(box_index, coordinate_owner[coordinate])
        find(box_index)

    groups: Dict[int, List[Selector]] = {}
    for box_index, selector in enumerate(selectors):
        groups.setdefault(find(box_index), []).append(selector)
    return list(groups.values())


@dataclass(frozen=True)
class ComponentTask:
    """One connected component of the union, restricted to its support.

    The task is self-contained (domain sizes and selectors are re-indexed to
    the support coordinates), which makes it a pure, picklable unit of work:
    process pools can count components in parallel and multiply the results
    back together.

    Attributes
    ----------
    sizes:
        Domain sizes of the support coordinates, in support order.
    selectors:
        The component's boxes, re-indexed to positions within ``sizes``.
    space:
        ``Π sizes`` — the product space of the component's support.
    """

    sizes: Tuple[int, ...]
    selectors: Tuple[Selector, ...]
    space: int


def component_union_tasks(
    domain_sizes: Sequence[int], selectors: Sequence[Selector]
) -> Tuple[Tuple[ComponentTask, ...], int]:
    """Split the boxes into independent per-component counting tasks.

    Returns ``(tasks, outside_factor)`` where ``outside_factor`` is the
    product of the domain sizes not touched by any box.  The caller combines
    them as in :func:`count_union_decomposed`::

        union = Π|S_i| − outside_factor · Π_g (task_g.space − union_g)
    """
    return _component_tasks_from_deduped(tuple(domain_sizes), _deduplicate(selectors))


def _component_tasks_from_deduped(
    sizes: Tuple[int, ...], boxes: List[Selector]
) -> Tuple[Tuple[ComponentTask, ...], int]:
    """The task split proper, for callers that already deduplicated."""
    tasks: List[ComponentTask] = []
    support_union: Set[int] = set()
    for component in connected_components(boxes):
        support = sorted(
            {coordinate for selector in component for coordinate, _ in selector.pins}
        )
        support_union.update(support)
        remap = {coordinate: position for position, coordinate in enumerate(support)}
        restricted_sizes = tuple(sizes[coordinate] for coordinate in support)
        restricted = tuple(
            Selector({remap[coordinate]: element for coordinate, element in selector.pins})
            for selector in component
        )
        tasks.append(
            ComponentTask(restricted_sizes, restricted, _product(restricted_sizes))
        )
    outside_factor = _product(
        size for coordinate, size in enumerate(sizes) if coordinate not in support_union
    )
    return tuple(tasks), outside_factor


def count_component_union(
    task: ComponentTask,
    enumeration_limit: int = 2_000_000,
    inclusion_exclusion_limit: int = 22,
) -> int:
    """Union size of one component task (restricted to its support).

    Chooses the cheaper of the two base strategies for the component
    (bounded by ``enumeration_limit`` assignments or
    ``inclusion_exclusion_limit`` boxes; if both bounds are exceeded the
    enumeration strategy is used regardless, since it is the one with
    predictable memory behaviour).  A module-level function so process-pool
    workers can execute tasks shipped from another process.
    """
    restricted = list(task.selectors)
    support_space = task.space
    if len(restricted) <= inclusion_exclusion_limit and (
        support_space > enumeration_limit or len(restricted) <= 12
    ):
        return count_union_inclusion_exclusion(task.sizes, restricted)
    if support_space <= enumeration_limit:
        return count_union_by_enumeration(task.sizes, restricted)
    if len(restricted) <= inclusion_exclusion_limit:
        return count_union_inclusion_exclusion(task.sizes, restricted)
    # Both limits exceeded: fall back to enumeration (exact but slow); the
    # caller opted into an exact count, so we do the work rather than guess.
    return count_union_by_enumeration(task.sizes, restricted)


def count_union_decomposed(
    domain_sizes: Sequence[int],
    selectors: Sequence[Selector],
    enumeration_limit: int = 2_000_000,
    inclusion_exclusion_limit: int = 22,
    map_fn: Optional[Callable[..., Iterable[int]]] = None,
) -> int:
    """|⋃ boxes| via complement counting over connected components.

    Let ``S_g`` be the support of component ``g``.  A point avoids the union
    iff it avoids every component's boxes, and because the supports are
    disjoint those events involve disjoint coordinates, so::

        #avoiding = (Π_{i ∉ ⋃S_g} |S_i|) · Π_g  #avoiding_g

    where ``#avoiding_g`` counts assignments of the coordinates in ``S_g``
    that avoid the boxes of ``g``.  Within a component the avoid count is
    ``Π_{i∈S_g}|S_i|`` minus the union counted by
    :func:`count_component_union`.

    ``map_fn`` optionally replaces the builtin :func:`map` over component
    tasks (e.g. ``ProcessPoolExecutor.map``) so independent components can
    be counted in parallel; the mapped function is a module-level partial of
    :func:`count_component_union` and therefore picklable.

    The answer returned is ``Π_i |S_i| − #avoiding``.
    """
    sizes = tuple(domain_sizes)
    boxes = _deduplicate(selectors)
    if not boxes:
        return 0
    if any(selector.length == 0 for selector in boxes):
        return _product(sizes)

    tasks, outside_factor = _component_tasks_from_deduped(sizes, boxes)
    counter = partial(
        count_component_union,
        enumeration_limit=enumeration_limit,
        inclusion_exclusion_limit=inclusion_exclusion_limit,
    )
    mapper = map if map_fn is None else map_fn
    avoiding = 1
    for task, component_union in zip(tasks, mapper(counter, tasks)):
        avoiding *= task.space - component_union

    total_space = _product(sizes)
    return total_space - avoiding * outside_factor


def count_union_of_boxes(
    domain_sizes: Sequence[int],
    selectors: Sequence[Selector],
    method: str = "decomposed",
    map_fn: Optional[Callable[..., Iterable[int]]] = None,
) -> int:
    """Front door for union-of-boxes counting.

    ``method`` is one of ``"decomposed"`` (default), ``"inclusion-exclusion"``
    or ``"enumeration"``.  ``map_fn`` is forwarded to the decomposed engine
    to parallelise across connected components (ignored by the two base
    strategies, which have no independent sub-problems).
    """
    if method == "decomposed":
        return count_union_decomposed(domain_sizes, selectors, map_fn=map_fn)
    if method == "inclusion-exclusion":
        return count_union_inclusion_exclusion(domain_sizes, selectors)
    if method == "enumeration":
        return count_union_by_enumeration(domain_sizes, selectors)
    raise ValueError(
        f"unknown method {method!r}; expected 'decomposed', "
        f"'inclusion-exclusion' or 'enumeration'"
    )
