"""ℓ-selectors and boxes.

Section 4.1 of the paper introduces *ℓ-selectors*: given a sequence of
solution domains ``S1, ..., Sn``, an ℓ-selector is a sequence of pairs
``(i1, e1), ..., (iℓ, eℓ)`` with strictly increasing indices that "pins"
the element ``ej`` in the domain ``S_{ij}``.  The cartesian product of the
domains *w.r.t.* a selector — written ``[S1, ..., Sn]_σ`` in the paper and
called a **box** here — replaces each pinned domain by the corresponding
singleton and leaves the other domains untouched.

The counting problems the paper places in the Λ-hierarchy all have the form
"count the union of boxes determined by the valid certificates".  This
module provides the selector/box data structures; the counting itself lives
in :mod:`repro.lams.union_of_boxes`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence, Tuple

__all__ = ["Selector", "Box"]


@dataclass(frozen=True)
class Selector:
    """An ℓ-selector: an immutable mapping from domain index to pinned element.

    Indices are 0-based positions into the sequence of solution domains;
    elements are represented by their 0-based position inside the domain
    (this keeps the engine agnostic of what the domain elements actually
    are — facts, colours, DNF variables — and makes boxes cheap to hash).
    """

    pins: Tuple[Tuple[int, int], ...]

    def __init__(self, pins: Mapping[int, int] | Iterable[Tuple[int, int]]) -> None:
        if isinstance(pins, Mapping):
            items = tuple(sorted(pins.items()))
        else:
            items = tuple(sorted(pins))
        indices = [index for index, _ in items]
        if len(indices) != len(set(indices)):
            raise ValueError(f"selector pins the same domain twice: {items}")
        object.__setattr__(self, "pins", items)

    @property
    def length(self) -> int:
        """The ℓ of the ℓ-selector: how many domains are pinned."""
        return len(self.pins)

    def as_dict(self) -> Dict[int, int]:
        """The pins as a ``{domain_index: element_index}`` dictionary."""
        return dict(self.pins)

    def pinned_indices(self) -> Tuple[int, ...]:
        """The pinned domain indices, in increasing order."""
        return tuple(index for index, _ in self.pins)

    def is_consistent_with(self, other: "Selector") -> bool:
        """True iff the two selectors agree on every commonly pinned domain.

        Intersections of boxes are non-empty exactly when their selectors
        are consistent; this is the test inclusion–exclusion relies on.
        """
        mine = self.as_dict()
        for index, element in other.pins:
            if index in mine and mine[index] != element:
                return False
        return True

    def merge(self, other: "Selector") -> "Selector":
        """The selector pinning the union of both selectors' pins.

        Raises ``ValueError`` when the selectors are inconsistent.
        """
        if not self.is_consistent_with(other):
            raise ValueError(f"selectors {self} and {other} are inconsistent")
        merged = self.as_dict()
        merged.update(other.as_dict())
        return Selector(merged)

    def __str__(self) -> str:
        body = ", ".join(f"({index}, {element})" for index, element in self.pins)
        return f"σ[{body}]"


@dataclass(frozen=True)
class Box:
    """A box ``[S1, ..., Sn]_σ``: the product of the domains with some pinned.

    The box stores only the selector and the domain sizes it lives over;
    the actual elements are irrelevant for counting.
    """

    selector: Selector
    domain_sizes: Tuple[int, ...]

    def __post_init__(self) -> None:
        for index, element in self.selector.pins:
            if index < 0 or index >= len(self.domain_sizes):
                raise ValueError(
                    f"selector pins domain {index} but only "
                    f"{len(self.domain_sizes)} domains exist"
                )
            if element < 0 or element >= self.domain_sizes[index]:
                raise ValueError(
                    f"selector pins element {element} of domain {index} "
                    f"which has only {self.domain_sizes[index]} elements"
                )

    def size(self) -> int:
        """``|[S1, ..., Sn]_σ|``: the product of the un-pinned domain sizes."""
        pinned = set(self.selector.pinned_indices())
        size = 1
        for index, domain_size in enumerate(self.domain_sizes):
            if index not in pinned:
                size *= domain_size
        return size

    def contains(self, point: Sequence[int]) -> bool:
        """True iff ``point`` (one element index per domain) lies in the box."""
        if len(point) != len(self.domain_sizes):
            raise ValueError(
                f"point has {len(point)} coordinates, expected {len(self.domain_sizes)}"
            )
        return all(point[index] == element for index, element in self.selector.pins)
