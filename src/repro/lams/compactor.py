"""The logspace k-compactor abstraction (Definition 4.1).

A *k-compactor* is a deterministic transducer ``M`` that receives an input
instance ``x`` and a candidate certificate ``c`` and outputs either ε (when
``c`` is not a valid certificate) or a compact representation of the box
``[S1, ..., Sn]_{σ_c}`` — a string of ``[[S1, ..., Sn]]_k`` that pins at
most ``k`` of the solution domains.  The counting function it defines is

    ``unfold_M(x) = | ⋃_c unfolding(M(x, c)) |``

and the class ``Λ[k]`` collects exactly the functions of this form.

This module provides :class:`Compactor`, the abstract Python counterpart of
that definition.  Concrete compactors implement four hooks —
:meth:`~Compactor.solution_domains`, :meth:`~Compactor.certificates`,
:meth:`~Compactor.is_valid_certificate` and :meth:`~Compactor.selector` —
and inherit:

* rendering of the paper's compact strings (:meth:`~Compactor.output_string`),
* exact evaluation of ``unfold_M`` via the union-of-boxes engine
  (:meth:`~Compactor.unfold_count`),
* brute-force unfolding enumeration for small instances
  (:meth:`~Compactor.unfold_enumerate`),
* a structural verifier (:meth:`~Compactor.verify`) that checks, on a given
  instance, the conditions of Definition 4.1 (non-empty domains, at most
  ``k`` pinned positions, invalid certificates mapped to ε).

The resource bound of the definition (logarithmic space) is an asymptotic
statement about Turing machines and cannot be checked on a Python object;
what the library preserves is the *counting semantics* — which is what all
of the paper's reductions, completeness proofs and the FPRAS rely on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Generic, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, TypeVar

from ..errors import CompactorError
from .compact import CompactString, compact_from_selector, render_compact, unfolding
from .selectors import Selector
from .union_of_boxes import count_union_of_boxes

__all__ = ["Compactor", "encode_token"]

InstanceT = TypeVar("InstanceT")
CertificateT = TypeVar("CertificateT")


def encode_token(token: str) -> str:
    """Escape the reserved characters of the compact-string syntax.

    Domain elements are embedded verbatim in compact strings, so ``$`` and
    ``#`` must not appear in them; they are percent-encoded here.
    """
    return token.replace("%", "%25").replace("$", "%24").replace("#", "%23")


class Compactor(ABC, Generic[InstanceT, CertificateT]):
    """Abstract logspace k-compactor.

    Parameters
    ----------
    k:
        The bound on the number of pinned positions.  ``None`` means
        *unbounded* — the compactor then defines a function in SpanLL
        (Section 7.2) rather than in a fixed level of the Λ-hierarchy.
    """

    def __init__(self, k: Optional[int]) -> None:
        if k is not None and k < 0:
            raise CompactorError(f"k must be non-negative, got {k}")
        self._k = k

    # ------------------------------------------------------------------ #
    # parameters
    # ------------------------------------------------------------------ #
    @property
    def k(self) -> Optional[int]:
        """The level of the Λ-hierarchy this compactor lives in (None = SpanLL)."""
        return self._k

    @property
    def is_bounded(self) -> bool:
        """True when the compactor has a finite selector bound ``k``."""
        return self._k is not None

    # ------------------------------------------------------------------ #
    # hooks to implement
    # ------------------------------------------------------------------ #
    @abstractmethod
    def solution_domains(self, instance: InstanceT) -> Tuple[Tuple[str, ...], ...]:
        """The string-encoded solution domains ``S1, ..., Sn`` for ``instance``.

        Every domain must be non-empty and its elements must not contain the
        reserved characters ``$`` and ``#`` (use :func:`encode_token`).
        """

    @abstractmethod
    def certificates(self, instance: InstanceT) -> Iterator[CertificateT]:
        """Iterate over the *valid* certificates of ``instance``.

        A concrete compactor is free to enumerate these lazily and
        efficiently (e.g. by homomorphism search); validity of every yielded
        certificate is assumed and double-checked by :meth:`verify`.
        """

    @abstractmethod
    def is_valid_certificate(self, instance: InstanceT, certificate: CertificateT) -> bool:
        """The *check* step: decide whether ``certificate`` is valid for ``instance``."""

    @abstractmethod
    def selector(self, instance: InstanceT, certificate: CertificateT) -> Selector:
        """The ℓ-selector ``σ_c`` determined by a valid certificate."""

    def candidate_certificates(self, instance: InstanceT) -> Iterator[CertificateT]:
        """Iterate over *candidate* certificates (valid or not).

        The default implementation returns only the valid ones; compactors
        modelling the machine faithfully (for tests on small inputs) can
        override this with the full candidate space.
        """
        return self.certificates(instance)

    # ------------------------------------------------------------------ #
    # derived behaviour (the compactor's output and counting semantics)
    # ------------------------------------------------------------------ #
    def output(self, instance: InstanceT, certificate: CertificateT) -> CompactString:
        """The compactor's output ``M(x, c)``: ε for invalid ``c``, a box otherwise."""
        domains = self.solution_domains(instance)
        if not self.is_valid_certificate(instance, certificate):
            return CompactString(tuple(tuple(domain) for domain in domains), None)
        selector = self.selector(instance, certificate)
        if self._k is not None and selector.length > self._k:
            raise CompactorError(
                f"certificate {certificate!r} yields a selector of length "
                f"{selector.length}, exceeding the compactor bound k={self._k}"
            )
        return compact_from_selector(domains, selector)

    def output_string(self, instance: InstanceT, certificate: CertificateT) -> str:
        """The output as the literal string of ``[[S1, ..., Sn]]_k``."""
        compact = self.output(instance, certificate)
        if compact.is_empty:
            return ""
        return render_compact(compact.domains, compact.entries, self._k)

    def selectors(self, instance: InstanceT) -> List[Selector]:
        """Selectors of all valid certificates (the boxes to be united)."""
        return [self.selector(instance, certificate) for certificate in self.certificates(instance)]

    def domain_sizes(self, instance: InstanceT) -> Tuple[int, ...]:
        """Sizes of the solution domains ``|S1|, ..., |Sn|``."""
        return tuple(len(domain) for domain in self.solution_domains(instance))

    def unfold_count(self, instance: InstanceT, method: str = "decomposed") -> int:
        """Evaluate ``unfold_M(x)`` exactly.

        This is the Λ[k] function the compactor defines; it is computed with
        the union-of-boxes engine (see :mod:`repro.lams.union_of_boxes`).
        """
        return count_union_of_boxes(
            self.domain_sizes(instance), self.selectors(instance), method=method
        )

    def unfold_enumerate(self, instance: InstanceT) -> Set[Tuple[str, ...]]:
        """Materialise ``⋃_c unfolding(M(x, c))`` (small instances only).

        Used by tests and by the guess–check–expand transducer to
        cross-validate :meth:`unfold_count`.
        """
        union: Set[Tuple[str, ...]] = set()
        for certificate in self.certificates(instance):
            union.update(unfolding(self.output(instance, certificate)))
        return union

    # ------------------------------------------------------------------ #
    # structural verification of Definition 4.1 on a concrete instance
    # ------------------------------------------------------------------ #
    def verify(self, instance: InstanceT, max_certificates: Optional[int] = None) -> None:
        """Check the structural conditions of Definition 4.1 on ``instance``.

        Raises :class:`~repro.errors.CompactorError` when a condition fails:
        empty solution domains, reserved characters in domain elements,
        selectors longer than ``k``, selectors pinning elements outside
        their domain, or certificates claimed valid by :meth:`certificates`
        that :meth:`is_valid_certificate` rejects.
        """
        domains = self.solution_domains(instance)
        for index, domain in enumerate(domains):
            if not domain:
                raise CompactorError(f"solution domain {index} is empty")
            for element in domain:
                if "$" in element or "#" in element:
                    raise CompactorError(
                        f"domain element {element!r} contains a reserved character"
                    )
        checked = 0
        for certificate in self.certificates(instance):
            if max_certificates is not None and checked >= max_certificates:
                break
            checked += 1
            if not self.is_valid_certificate(instance, certificate):
                raise CompactorError(
                    f"certificates() yielded {certificate!r} but "
                    f"is_valid_certificate rejects it"
                )
            selector = self.selector(instance, certificate)
            if self._k is not None and selector.length > self._k:
                raise CompactorError(
                    f"selector {selector} has length {selector.length} > k={self._k}"
                )
            for coordinate, element in selector.pins:
                if coordinate < 0 or coordinate >= len(domains):
                    raise CompactorError(
                        f"selector {selector} pins non-existent domain {coordinate}"
                    )
                if element < 0 or element >= len(domains[coordinate]):
                    raise CompactorError(
                        f"selector {selector} pins element {element} outside "
                        f"domain {coordinate} of size {len(domains[coordinate])}"
                    )
