"""A small nondeterministic Turing machine simulator.

The counting classes of Section 2.2 are defined through machines:
``#P``/``#L`` count the accepting computations of a nondeterministic Turing
machine (``accept_M``), and ``SpanL`` counts the distinct outputs of a
nondeterministic transducer (``span_M``, see
:mod:`repro.machines.transducer`).  This simulator gives those definitions
an executable meaning on small inputs so tests can check, for example, that
the machine sketched in the proof of Theorem 3.3 really has one accepting
run per repair entailing the query.

The model is a single-tape NTM over a finite alphabet with a transition
*relation*; the simulator explores the computation tree breadth-first up to
a configurable step bound and counts accepting leaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import ReproError

__all__ = ["Transition", "NondeterministicTuringMachine"]

#: Tape movement directions.
_MOVES = {"L": -1, "R": 1, "S": 0}

#: The blank symbol.
BLANK = "_"


@dataclass(frozen=True)
class Transition:
    """One nondeterministic transition option."""

    next_state: str
    write: str
    move: str

    def __post_init__(self) -> None:
        if self.move not in _MOVES:
            raise ReproError(f"move must be one of {sorted(_MOVES)}, got {self.move!r}")


@dataclass(frozen=True)
class _Configuration:
    state: str
    tape: Tuple[str, ...]
    head: int

    def key(self) -> Tuple[str, Tuple[str, ...], int]:
        return (self.state, self.tape, self.head)


class NondeterministicTuringMachine:
    """A single-tape NTM with counting semantics.

    Parameters
    ----------
    transitions:
        Mapping ``(state, symbol) -> [Transition, ...]``; missing keys mean
        the machine halts (rejecting unless the state is accepting).
    initial_state, accept_states:
        The usual distinguished states.
    """

    def __init__(
        self,
        transitions: Mapping[Tuple[str, str], Sequence[Transition]],
        initial_state: str,
        accept_states: Iterable[str],
    ) -> None:
        self._transitions: Dict[Tuple[str, str], Tuple[Transition, ...]] = {
            key: tuple(options) for key, options in transitions.items()
        }
        self._initial_state = initial_state
        self._accept_states = frozenset(accept_states)

    def _initial_configuration(self, word: str) -> _Configuration:
        tape = tuple(word) if word else (BLANK,)
        return _Configuration(self._initial_state, tape, 0)

    def _step(self, configuration: _Configuration) -> List[_Configuration]:
        symbol = (
            configuration.tape[configuration.head]
            if 0 <= configuration.head < len(configuration.tape)
            else BLANK
        )
        options = self._transitions.get((configuration.state, symbol), ())
        successors: List[_Configuration] = []
        for option in options:
            tape = list(configuration.tape)
            head = configuration.head
            # Extend the tape if the head has wandered past either end.
            while head >= len(tape):
                tape.append(BLANK)
            while head < 0:
                tape.insert(0, BLANK)
                head += 1
            tape[head] = option.write
            head += _MOVES[option.move]
            if head < 0:
                tape.insert(0, BLANK)
                head = 0
            successors.append(_Configuration(option.next_state, tuple(tape), head))
        return successors

    def count_accepting_paths(self, word: str, max_steps: int = 10_000) -> int:
        """``accept_M(word)``: the number of accepting computation paths.

        Explores the computation tree; paths longer than ``max_steps`` raise
        so silent undercounting cannot happen.
        """
        count = 0
        stack: List[Tuple[_Configuration, int]] = [(self._initial_configuration(word), 0)]
        while stack:
            configuration, steps = stack.pop()
            if steps > max_steps:
                raise ReproError(
                    f"computation exceeded {max_steps} steps; the machine may "
                    f"not halt on input {word!r}"
                )
            successors = self._step(configuration)
            if not successors:
                if configuration.state in self._accept_states:
                    count += 1
                continue
            for successor in successors:
                stack.append((successor, steps + 1))
        return count

    def accepts(self, word: str, max_steps: int = 10_000) -> bool:
        """True iff at least one computation path accepts."""
        return self.count_accepting_paths(word, max_steps=max_steps) > 0
