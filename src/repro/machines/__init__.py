"""Machine models giving operational meaning to the paper's counting classes.

``accept_M`` (the #P/#L semantics) is realised by
:class:`~repro.machines.ntm.NondeterministicTuringMachine` and ``span_M``
(the SpanL semantics) by
:class:`~repro.machines.transducer.BranchingTransducer`; tests use them to
validate the machine constructions sketched in the proofs of Theorems 3.3
and 3.7 on small inputs.
"""

from .ntm import NondeterministicTuringMachine, Transition
from .transducer import BranchingTransducer, Verdict

__all__ = [
    "BranchingTransducer",
    "NondeterministicTuringMachine",
    "Transition",
    "Verdict",
]
