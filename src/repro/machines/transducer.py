"""Nondeterministic transducers and the ``span`` counting semantics.

``SpanL`` (Section 2.2) counts the *distinct valid outputs* of a
logarithmic-space nondeterministic transducer.  This module provides a
lightweight, executable transducer model: rather than a full two-tape
Turing machine it models a nondeterministic program as a branching process
over explicit states — sufficient to give the ``span`` semantics an
operational meaning on small inputs and to express Algorithm 1 as a machine
in tests.

A :class:`BranchingTransducer` is defined by a ``branch`` function mapping a
state to either a terminal verdict (accept/reject) or a list of
(output-fragment, next-state) options.  ``span`` runs all branches and
counts the distinct concatenated outputs of accepting runs, and
``accepting_outputs`` returns them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Hashable, Iterable, List, Optional, Sequence, Set, Tuple, TypeVar, Union

from ..errors import ReproError

__all__ = ["Verdict", "BranchingTransducer"]

StateT = TypeVar("StateT", bound=Hashable)


@dataclass(frozen=True)
class Verdict:
    """Terminal outcome of a branch: accept or reject."""

    accept: bool


#: The branch function's return type: a verdict, or nondeterministic options
#: of the form (output fragment, next state).
BranchResult = Union[Verdict, Sequence[Tuple[str, StateT]]]


class BranchingTransducer(Generic[StateT]):
    """A nondeterministic transducer given by an explicit branching function.

    Parameters
    ----------
    branch:
        Function from a state to either a :class:`Verdict` or a sequence of
        ``(output_fragment, next_state)`` options (the nondeterministic
        choices available in that state).
    max_depth:
        Safety bound on the number of branching steps per run.
    """

    def __init__(
        self,
        branch: Callable[[StateT], BranchResult],
        max_depth: int = 100_000,
    ) -> None:
        self._branch = branch
        self._max_depth = max_depth

    def accepting_outputs(self, initial_state: StateT) -> Set[str]:
        """The set of distinct outputs over all accepting runs."""
        outputs: Set[str] = set()
        stack: List[Tuple[StateT, Tuple[str, ...], int]] = [(initial_state, (), 0)]
        while stack:
            state, written, depth = stack.pop()
            if depth > self._max_depth:
                raise ReproError(
                    f"transducer exceeded the depth bound {self._max_depth}; "
                    f"the branching function may not terminate"
                )
            result = self._branch(state)
            if isinstance(result, Verdict):
                if result.accept:
                    outputs.add("".join(written))
                continue
            for fragment, next_state in result:
                stack.append((next_state, written + (fragment,), depth + 1))
        return outputs

    def span(self, initial_state: StateT) -> int:
        """``span_M``: the number of distinct outputs of accepting runs."""
        return len(self.accepting_outputs(initial_state))

    def accepts(self, initial_state: StateT) -> bool:
        """True iff some run accepts."""
        # Early-exit variant of the traversal above.
        stack: List[Tuple[StateT, int]] = [(initial_state, 0)]
        while stack:
            state, depth = stack.pop()
            if depth > self._max_depth:
                raise ReproError(
                    f"transducer exceeded the depth bound {self._max_depth}"
                )
            result = self._branch(state)
            if isinstance(result, Verdict):
                if result.accept:
                    return True
                continue
            for _, next_state in result:
                stack.append((next_state, depth + 1))
        return False
