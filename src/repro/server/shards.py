"""Shard plumbing: single-worker pool processes behind the async server.

A :class:`Shard` is one unit of serving capacity: a dedicated worker
process hosting its own :class:`~repro.engine.SolverPool`, primed with the
subset of registered snapshots the shard *owns*.  The worker is created
once (``start``) and kept warm for the shard's lifetime, so — unlike the
per-batch fan-out of :meth:`SolverPool.run` — its caches persist across
every job the shard ever serves, which is the steady state a long-lived
service runs in.

Ordering is the load-bearing property: each shard's executor has exactly
one worker, so jobs execute in submission order.  The async front-end
routes every job of a database to the one shard owning it, hence all
counts and deltas of a database are serialised per shard and every count
observes exactly the snapshots produced by the deltas submitted before it
— the same stream semantics as :meth:`SolverPool.run_stream`, without a
global barrier between segments.

All cross-process payloads are primitive job/report dataclasses (already
picklable by design); databases are shipped once at worker start, not per
job.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..db.delta import Delta
from ..db.lineage import CheckpointRecord, Lineage, LineageRecord
from ..engine.executor import RangeFailure
from ..engine.jobs import CountJob, JobResult, UpdateJob, UpdateReport
from ..engine.pool import SolverPool
from ..errors import ServerError
from ..store.tuning import CheckpointPolicy

__all__ = ["Shard"]


class Shard:
    """One serving shard: an owned snapshot set plus a warm worker process.

    Shards are created and owned by
    :class:`~repro.server.async_server.AsyncServer`; they are not meant to
    be driven directly.  ``submit_*`` methods return
    :class:`concurrent.futures.Future` objects that the server awaits via
    asyncio.

    >>> shard = Shard(0)
    >>> (shard.owned_names(), shard.is_running)
    ((), False)
    """

    def __init__(
        self,
        shard_id: int,
        persist_dir: Optional[Union[str, Path]] = None,
        persist_max_entries: Optional[int] = None,
        persist_max_age: Optional[float] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_policy: Optional[CheckpointPolicy] = None,
        persist_max_bytes: Optional[int] = None,
    ) -> None:
        self.shard_id = shard_id
        self._persist_dir = persist_dir
        self._persist_max_entries = persist_max_entries
        self._persist_max_age = persist_max_age
        self._checkpoint_every = checkpoint_every
        self._checkpoint_policy = checkpoint_policy
        self._persist_max_bytes = persist_max_bytes
        self._databases: Dict[str, Tuple[Database, PrimaryKeySet]] = {}
        self._executor: Optional[ProcessPoolExecutor] = None
        self._pending_registrations: List["Future[None]"] = []
        self.jobs_submitted = 0
        self.updates_submitted = 0

    # ------------------------------------------------------------------ #
    # ownership
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._databases)

    def owns(self, name: str) -> bool:
        """True iff this shard owns the registration ``name``."""
        return name in self._databases

    def owned_names(self) -> Tuple[str, ...]:
        """The registration names this shard owns, in registration order."""
        return tuple(self._databases)

    def own(self, name: str, database: Database, keys: PrimaryKeySet) -> None:
        """Give this shard ownership of a registered snapshot.

        Before ``start`` the snapshot simply joins the priming set; after
        ``start`` it is additionally registered inside the live worker (in
        submission order, so jobs submitted afterwards can use it).  A
        failed in-worker registration is never swallowed: its exception is
        re-raised, as :class:`ServerError`, by the next submission on this
        shard (see :meth:`_raise_failed_registrations`).
        """
        self._databases[name] = (database, keys)
        if self._executor is not None:
            self._pending_registrations.append(
                self._executor.submit(_shard_register, name, database, keys)
            )

    def release(self, name: str) -> Tuple[Database, PrimaryKeySet]:
        """Drop parent-side ownership of ``name``; returns the priming pair.

        The bookkeeping half of a handoff: the caller re-owns the
        snapshot on the destination shard (and, for a live source worker,
        additionally queues :meth:`submit_forget`).  A stopped shard
        restarted later will no longer prime the released name.
        """
        if name not in self._databases:
            raise ServerError(f"shard {self.shard_id} does not own {name!r}")
        return self._databases.pop(name)

    def _raise_failed_registrations(self) -> None:
        """Surface any completed-and-failed late registration, loudly.

        The whole pending list is scanned, not just its head: a failed
        registration must surface even while an earlier one is still in
        flight.  Completed futures are removed as they are inspected, so
        an error is raised exactly once — callers that clean up afterwards
        (``stop``) never see it again on a retry.
        """
        for future in list(self._pending_registrations):
            if not future.done():
                continue
            self._pending_registrations.remove(future)
            error = future.exception()
            if error is not None:
                raise ServerError(
                    f"shard {self.shard_id} failed to register a database: {error}"
                ) from error

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Create the worker process, primed with the owned snapshots."""
        if self._executor is not None:
            raise ServerError(f"shard {self.shard_id} is already started")
        self._executor = ProcessPoolExecutor(
            max_workers=1,
            initializer=_initialise_shard,
            initargs=(
                self.shard_id,
                dict(self._databases),
                self._persist_dir,
                self._persist_max_entries,
                self._persist_max_age,
                self._checkpoint_every,
                self._checkpoint_policy,
                self._persist_max_bytes,
            ),
        )

    def stop(self) -> None:
        """Shut the worker down, waiting for in-flight jobs to finish.

        A late registration that failed without a subsequent submission to
        surface it is raised here — a failed registration must never exit
        the server silently.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        try:
            self._raise_failed_registrations()
        finally:
            # Raised or not, a stopped shard holds no pending state: a
            # second stop() must be clean, never a re-raise of the same
            # stale registration error.
            self._pending_registrations.clear()

    @property
    def is_running(self) -> bool:
        """True between ``start`` and ``stop``."""
        return self._executor is not None

    # ------------------------------------------------------------------ #
    # work submission (FIFO per shard — one worker, one queue)
    # ------------------------------------------------------------------ #
    def _require_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            raise ServerError(
                f"shard {self.shard_id} is not running; start the server first"
            )
        return self._executor

    def submit_count(self, index: int, job: CountJob) -> "Future[JobResult]":
        """Queue one counting job on the shard's worker."""
        executor = self._require_executor()
        self._raise_failed_registrations()
        self.jobs_submitted += 1
        return executor.submit(_shard_count, index, job)

    def submit_range(
        self, first_index: int, job: CountJob
    ) -> "Future[List[Union[JobResult, RangeFailure]]]":
        """Queue a whole ``as_of_range`` job as one unit of work.

        The range rides the shard's FIFO queue as a single submission, so
        every version it expands to counts against the same lineage state
        — no delta submitted after the range can interleave with it.  The
        worker resolves all versions through one shared replay walk
        (:meth:`SolverPool.run_range`) and returns one in-order outcome
        per version, failures in-band as
        :class:`~repro.engine.executor.RangeFailure`.
        """
        executor = self._require_executor()
        self._raise_failed_registrations()
        self.jobs_submitted += 1
        return executor.submit(_shard_range, first_index, job)

    def submit_update(self, index: int, job: UpdateJob) -> "Future[UpdateReport]":
        """Queue one delta on the shard's worker (FIFO after prior jobs)."""
        executor = self._require_executor()
        self._raise_failed_registrations()
        self.updates_submitted += 1
        return executor.submit(
            _shard_update, index, job.database, job.delta, job.label
        )

    def submit_stats(self) -> "Future[Dict[str, object]]":
        """Queue a stats probe; resolves after currently queued jobs."""
        executor = self._require_executor()
        self._raise_failed_registrations()
        return executor.submit(_shard_stats)

    def submit_history(self, name: str) -> "Future[Lineage]":
        """Queue a lineage probe for one owned name.

        The worker pool is the lineage authority: it observed every
        registration and delta of its owned names in FIFO order (and, with
        a persistent store, adopted the catalog's chains at registration),
        so the returned :class:`~repro.db.lineage.Lineage` reflects every
        update submitted before the probe.
        """
        executor = self._require_executor()
        self._raise_failed_registrations()
        return executor.submit(_shard_history, name)

    def submit_checkpoints(
        self, name: str
    ) -> "Future[Tuple[CheckpointRecord, ...]]":
        """Queue a checkpoint probe for one owned name (FIFO like history)."""
        executor = self._require_executor()
        self._raise_failed_registrations()
        return executor.submit(_shard_checkpoints, name)

    def submit_checkpoint(self, name: str) -> "Future[Optional[CheckpointRecord]]":
        """Queue an explicit compaction checkpoint of one owned name.

        FIFO with the shard's jobs, so the checkpoint captures exactly the
        snapshot produced by the deltas submitted before it.
        """
        executor = self._require_executor()
        self._raise_failed_registrations()
        return executor.submit(_shard_checkpoint, name)

    def submit_rollback(
        self, name: str, ref: Union[str, int]
    ) -> "Future[LineageRecord]":
        """Queue a rollback of one owned name to a recorded ancestor.

        FIFO with the shard's jobs: the rollback observes every delta
        submitted before it, and jobs submitted after it count against
        the rolled-back head.
        """
        executor = self._require_executor()
        self._raise_failed_registrations()
        return executor.submit(_shard_rollback, name, ref)

    # ------------------------------------------------------------------ #
    # ownership handoff (elastic sharding)
    # ------------------------------------------------------------------ #
    def submit_export(
        self, name: str
    ) -> "Future[Tuple[Database, PrimaryKeySet, Lineage]]":
        """Queue an export of the name's *current* head (FIFO after its jobs).

        The source half of a live handoff.  The worker pool — not the
        parent-side priming copy — is the authority: it holds the
        post-delta head and the recorded lineage, and because the export
        is a queued job it observes every delta submitted before the
        move started.
        """
        executor = self._require_executor()
        self._raise_failed_registrations()
        return executor.submit(_shard_export, name)

    def submit_handoff(
        self,
        name: str,
        database: Database,
        keys: PrimaryKeySet,
        lineage: Lineage,
    ) -> "Future[Dict[str, object]]":
        """Queue adoption of a snapshot exported from another shard.

        The destination half: the worker registers the exported head,
        adopts its lineage chain, and primes its caches through the
        shared store (:meth:`SolverPool.prime_handoff`) so a warm-store
        handoff serves without recomputation.  The parent-side priming
        set is updated too, so a restart re-registers the name here.
        Resolves to the priming report (decomposition provenance plus
        available selector entries).
        """
        executor = self._require_executor()
        self._raise_failed_registrations()
        self._databases[name] = (database, keys)
        return executor.submit(_shard_handoff, name, database, keys, lineage)

    # ------------------------------------------------------------------ #
    # anytime refinement and calibration
    # ------------------------------------------------------------------ #
    def submit_refine(self, limit: Optional[int] = None) -> "Future[Dict[str, int]]":
        """Queue a drain of the worker's refine-to-exact continuations.

        FIFO with the shard's jobs, so the drain observes exactly the
        anytime jobs submitted before it; later anytime jobs on the same
        snapshot/query are answered exactly from the worker's cache.
        """
        executor = self._require_executor()
        self._raise_failed_registrations()
        return executor.submit(_shard_refine, limit)

    def submit_calibrate(
        self, jobs: List[CountJob]
    ) -> "Future[Dict[str, int]]":
        """Queue a calibration batch (estimate + exact per randomised job)."""
        executor = self._require_executor()
        self._raise_failed_registrations()
        return executor.submit(_shard_calibrate, jobs)

    def submit_calibration_stats(self) -> "Future[Dict[str, object]]":
        """Queue a probe of the worker's calibration tables."""
        executor = self._require_executor()
        self._raise_failed_registrations()
        return executor.submit(_shard_calibration_stats)

    def submit_forget(self, name: str) -> "Future[None]":
        """Queue removal of a name from the worker pool (post-export).

        Completes the source half of a live handoff: the worker drops
        the head, its unshared in-memory derived state and its chain;
        the shared store keeps the durable entries the destination now
        reads through.
        """
        executor = self._require_executor()
        self._raise_failed_registrations()
        return executor.submit(_shard_forget, name)

    def __repr__(self) -> str:
        state = "running" if self.is_running else "stopped"
        return (
            f"Shard(id={self.shard_id}, databases={list(self._databases)}, "
            f"{state})"
        )


# ---------------------------------------------------------------------- #
# worker-process side
# ---------------------------------------------------------------------- #
#: The per-process pool a shard worker serves from.  Module-level so job
#: submissions only ship (index, job) pairs, never databases.
_SHARD_POOL: Optional[SolverPool] = None
_SHARD_ID: Optional[int] = None


def _initialise_shard(
    shard_id: int,
    databases: Dict[str, Tuple[Database, PrimaryKeySet]],
    persist_dir: Optional[Union[str, Path]],
    persist_max_entries: Optional[int],
    persist_max_age: Optional[float],
    checkpoint_every: Optional[int] = None,
    checkpoint_policy: Optional[CheckpointPolicy] = None,
    persist_max_bytes: Optional[int] = None,
) -> None:
    """Prime the shard worker: build its pool, register its snapshots.

    Shards share one persistent cache directory (safe: entries are pure
    functions of their content-hash key and writes are atomic, so
    concurrent writers merely race to store the same bytes).  Checkpoint
    policies travel here pickled inside the initargs — each worker gets
    its own instance, observing its own shard's reads.
    """
    global _SHARD_POOL, _SHARD_ID
    pool = SolverPool(
        persist_dir=persist_dir,
        persist_max_entries=persist_max_entries,
        persist_max_age=persist_max_age,
        checkpoint_every=checkpoint_every,
        checkpoint_policy=checkpoint_policy,
        persist_max_bytes=persist_max_bytes,
    )
    for name, (database, keys) in databases.items():
        pool.register(name, database, keys)
    _SHARD_POOL = pool
    _SHARD_ID = shard_id


def _require_pool() -> SolverPool:
    if _SHARD_POOL is None:  # pragma: no cover - initializer always runs first
        raise ServerError("shard worker used before initialisation")
    return _SHARD_POOL


def _shard_register(name: str, database: Database, keys: PrimaryKeySet) -> None:
    """Late registration inside a live worker (post-start ``own`` calls)."""
    _require_pool().register(name, database, keys)


def _shard_count(index: int, job: CountJob) -> JobResult:
    """Run one counting job; ``index`` is the position in the client stream."""
    return _require_pool().run_job(
        job, index=index, worker_label=f"shard-{_SHARD_ID}:pid-{os.getpid()}"
    )


def _shard_range(
    first_index: int, job: CountJob
) -> List[Union[JobResult, RangeFailure]]:
    """Run one ``as_of_range`` job; outcomes are indexed from ``first_index``."""
    return _require_pool().run_range(
        job,
        first_index=first_index,
        worker_label=f"shard-{_SHARD_ID}:pid-{os.getpid()}",
    )


def _shard_update(
    index: int, name: str, delta: Delta, label: Optional[str]
) -> UpdateReport:
    """Apply one delta to the shard's snapshot of ``name``."""
    report = _require_pool().apply_delta(name, delta)
    return replace(report, index=index, label=label)


def _shard_history(name: str) -> Lineage:
    """The worker pool's recorded lineage of one owned name."""
    return _require_pool().lineage(name)


def _shard_checkpoints(name: str) -> Tuple[CheckpointRecord, ...]:
    """The worker pool's known checkpoints of one owned name."""
    return _require_pool().checkpoints(name)


def _shard_checkpoint(name: str) -> Optional[CheckpointRecord]:
    """Cut an explicit compaction checkpoint inside the shard worker."""
    return _require_pool().checkpoint(name)


def _shard_rollback(name: str, ref: Union[str, int]) -> LineageRecord:
    """Re-register a recorded ancestor as the head, inside the worker."""
    return _require_pool().rollback(name, ref)


def _shard_export(name: str) -> Tuple[Database, PrimaryKeySet, Lineage]:
    """Export the current head and lineage of one owned name."""
    pool = _require_pool()
    database, keys = pool.lookup(name)
    return database, keys, pool.lineage(name)


def _shard_handoff(
    name: str, database: Database, keys: PrimaryKeySet, lineage: Lineage
) -> Dict[str, object]:
    """Adopt an exported snapshot: register, adopt lineage, prime caches."""
    pool = _require_pool()
    pool.register(name, database, keys)
    pool.adopt_lineage(name, lineage)
    return pool.prime_handoff(name)


def _shard_forget(name: str) -> None:
    """Drop one owned name from the worker pool after its export."""
    _require_pool().forget(name)


def _shard_refine(limit: Optional[int]) -> Dict[str, int]:
    """Drain refine-to-exact continuations inside the shard worker."""
    pool = _require_pool()
    drained = pool.drain_refinements(limit)
    return {
        "refined": drained,
        "pending": pool.pending_refinements,
        "completed": pool.refinements_completed,
    }


def _shard_calibrate(jobs: List[CountJob]) -> Dict[str, int]:
    """Record calibration pairs from a held-out batch, inside the worker."""
    return _require_pool().calibrate_from(jobs)


def _shard_calibration_stats() -> Dict[str, object]:
    """The worker pool's conformal calibration statistics."""
    pool = _require_pool()
    stats = dict(pool.calibration_stats())
    stats["pending_refinements"] = pool.pending_refinements
    stats["refinements_completed"] = pool.refinements_completed
    return stats


def _shard_stats() -> Dict[str, object]:
    """The worker pool's cache statistics and recomputation counters."""
    pool = _require_pool()
    return {
        "cache": pool.cache_stats(),
        "selector_recomputations": pool.selector_recomputations,
        "decomposition_recomputations": pool.decomposition_recomputations,
        "databases": list(pool.database_names()),
    }
