"""The HTTP client library: :class:`ServeClient`.

The client side of the wire protocol in :mod:`repro.server.wire`: a
keep-alive connection to an :class:`~repro.server.http.HttpServer`, with
the two behaviours a client of a *backpressured* server must have built
in rather than bolted on:

**Retry budgets with exponential backoff.**  Overload answers (HTTP 429)
and unavailable answers (HTTP 503) are retried up to ``retries`` times,
sleeping the larger of the server's ``Retry-After`` hint and the client's
own exponentially growing delay (capped at ``backoff_cap``).  When the
budget is exhausted the *server's* exception is raised
(:class:`~repro.errors.ServerOverloadedError` for 429), so callers handle
wire overload exactly like in-process overload.  Connection failures are
retried on the same budget: every request in this protocol is either
read-only or idempotent at the engine level (a delta is applied by the
shard in submission order; a torn connection before the *request* was
written costs nothing, and the client only auto-reconnects when the
failure strikes before a byte of the request hit the socket).

**Streaming result iterators.**  :meth:`stream` sends a JSON-lines job
stack and yields each result line as it arrives off the chunked response
— completion order, failures in band as ``{"index": …, "error": …}``
documents — terminating exactly at the server's ``{"end": …}`` summary
(exposed afterwards as :attr:`last_stream_summary`).  A connection that
dies mid-stream raises :class:`~repro.errors.WireError`; a truncated
stream never masquerades as a short result set.

Every method returns plain JSON dicts (the ``to_json`` document shapes),
not dataclasses: the client is a *network* client and speaks the wire's
vocabulary.
"""

from __future__ import annotations

import asyncio
import json
from typing import AsyncIterator, Dict, List, Optional, Tuple

from ..errors import ServerError, WireError
from . import wire

__all__ = ["ServeClient"]


class ServeClient:
    """An asyncio client for the HTTP serving front.

    Parameters
    ----------
    host, port:
        The address :class:`~repro.server.http.HttpServer` is bound to.
    retries:
        How many times a retryable answer (429/503) or a pre-request
        connection failure is retried before the error is raised.
    backoff, backoff_cap:
        Exponential backoff schedule: the n-th retry sleeps
        ``max(retry_after_hint, backoff * 2**n)`` capped at
        ``backoff_cap`` seconds.
    timeout:
        Per-request ceiling in seconds (covers writing the request and
        reading the response head; stream chunks are covered per chunk).

    Usage::

        async with ServeClient("127.0.0.1", 8080) as client:
            result = await client.count({"database": "r", "query": "..."})

    The client holds one keep-alive connection; concurrent callers are
    serialised on an internal lock (open several clients for parallelism —
    that is what the load harness does).
    """

    def __init__(
        self,
        host: str,
        port: int,
        retries: int = 4,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        timeout: float = 60.0,
    ) -> None:
        if retries < 0:
            raise ServerError(f"retries must be >= 0, got {retries}")
        if backoff < 0 or backoff_cap < 0:
            raise ServerError("backoff and backoff_cap must be >= 0")
        self.host = host
        self.port = port
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.timeout = timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()
        #: The ``{"results": …, "failures": …}`` summary of the last
        #: completed :meth:`stream` call.
        self.last_stream_summary: Optional[Dict[str, object]] = None
        self.attempts = 0
        self.retries_used = 0
        self.rejections = 0  # 429/503 answers seen (including retried ones)

    # ------------------------------------------------------------------ #
    # connection lifecycle
    # ------------------------------------------------------------------ #
    async def connect(self) -> None:
        """Open the connection (lazy: requests connect on demand)."""
        if self._writer is not None:
            return
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        """Close the connection (idempotent)."""
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass

    async def __aenter__(self) -> "ServeClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # one request/response exchange, with the retry budget
    # ------------------------------------------------------------------ #
    async def _exchange(
        self, method: str, target: str, body: bytes = b""
    ) -> Tuple[wire.HttpResponse, "asyncio.StreamReader"]:
        """Send one request; return the (response, reader) pair.

        Applies the retry budget to 429/503 answers and to connection
        failures that strike before the request was written.  The reader
        is returned alongside the response so :meth:`stream` can keep
        consuming a chunked body.
        """
        delay = self.backoff
        attempt = 0
        while True:
            self.attempts += 1
            try:
                await self.connect()
                assert self._reader is not None and self._writer is not None
                request = wire.render_request(
                    method, target, f"{self.host}:{self.port}", body
                )
                self._writer.write(request)
                await asyncio.wait_for(self._writer.drain(), self.timeout)
                response = await asyncio.wait_for(
                    wire.read_response(self._reader), self.timeout
                )
            except (ConnectionError, OSError, asyncio.IncompleteReadError) as exc:
                # The connection died; nothing of this request survives on
                # the server side that a retry would duplicate (see module
                # docstring).  Reconnect and retry on the same budget.
                await self.close()
                if attempt >= self.retries:
                    raise WireError(
                        f"connection to {self.host}:{self.port} failed "
                        f"after {attempt + 1} attempts: {exc}"
                    ) from exc
                attempt += 1
                self.retries_used += 1
                await asyncio.sleep(delay)
                delay = min(delay * 2 if delay else self.backoff, self.backoff_cap)
                continue
            if response.status in wire.RETRYABLE_STATUSES:
                self.rejections += 1
                if attempt >= self.retries:
                    raise wire.error_from_status(response.status, self._json_of(response))
                attempt += 1
                self.retries_used += 1
                hint = wire.parse_retry_after(response.headers)
                await asyncio.sleep(max(hint or 0.0, delay))
                delay = min(delay * 2 if delay else self.backoff, self.backoff_cap)
                continue
            if response.status >= 400:
                raise wire.error_from_status(response.status, self._json_of(response))
            assert self._reader is not None
            return response, self._reader

    @staticmethod
    def _json_of(response: wire.HttpResponse) -> object:
        try:
            return response.json()
        except WireError:
            return {}

    async def _call(
        self, method: str, target: str, payload: Optional[object] = None
    ) -> Dict[str, object]:
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        async with self._lock:
            response, _reader = await self._exchange(method, target, body)
            document = response.json()
            if not isinstance(document, dict):
                raise WireError(
                    f"expected a JSON object from {target}, got "
                    f"{type(document).__name__}"
                )
            return document

    # ------------------------------------------------------------------ #
    # the serving surface
    # ------------------------------------------------------------------ #
    async def health(self) -> Dict[str, object]:
        """``GET /health`` — liveness plus shard/database counts."""
        return await self._call("GET", "/health")

    async def stats(self) -> Dict[str, object]:
        """``GET /stats`` — queue, shard and HTTP-front counters."""
        return await self._call("GET", "/stats")

    async def databases(self) -> List[str]:
        """``GET /databases`` — the registered names."""
        document = await self._call("GET", "/databases")
        names = document.get("databases")
        return list(names) if isinstance(names, list) else []

    async def count(
        self, job: Dict[str, object], index: int = 0
    ) -> Dict[str, object]:
        """``POST /count`` — one counting job document -> result document.

        ``job`` is the :meth:`CountJob.to_json` shape (``database``,
        ``query``, optional ``mode``/``epsilon``/``delta``/``as_of``…);
        ``index`` is the stream position and fixes the derived seed.
        """
        return await self._call("POST", "/count", {**job, "index": index})

    async def update(
        self, job: Dict[str, object], index: int = 0
    ) -> Dict[str, object]:
        """``POST /update`` — one delta document -> update report."""
        return await self._call("POST", "/update", {**job, "index": index})

    async def stream(
        self, items: List[Dict[str, object]]
    ) -> AsyncIterator[Dict[str, object]]:
        """``POST /stream`` — yield result documents as they arrive.

        ``items`` are stream-item documents (count jobs, or updates with
        ``"update": name``); results come back in completion order, each
        carrying its ``index``.  Failed elements appear in band as
        ``{"index": …, "status": …, "error": …}`` documents.  The
        terminating summary is stored in :attr:`last_stream_summary`, and
        a stream that dies before it raises :class:`WireError`.
        """
        body = "\n".join(json.dumps(item) for item in items)
        async with self._lock:
            response, reader = await self._exchange(
                "POST", "/stream", body.encode("utf-8")
            )
            if not response.chunked:
                raise WireError(
                    f"expected a chunked stream, got status {response.status}"
                )
            self.last_stream_summary = None
            async for document in wire.iter_chunked_lines(reader):
                if isinstance(document, dict) and "end" in document:
                    # Keep draining: the terminating zero-chunk is still on
                    # the wire, and leaving it there would corrupt the next
                    # request on this keep-alive connection.
                    end = document["end"]
                    self.last_stream_summary = end if isinstance(end, dict) else {}
                    continue
                if isinstance(document, dict):
                    yield document
            if self.last_stream_summary is None:
                raise WireError("stream ended without a summary line")

    async def range(
        self, job: Dict[str, object], index: int = 0
    ) -> AsyncIterator[Dict[str, object]]:
        """``POST /range`` — yield one result document per range version.

        ``job`` is a count-job document carrying ``as_of_range`` (a
        two-element ``[lo, hi]`` list of snapshot refs); ``index`` is the
        stream position of the first version.  Results arrive in range
        order.  A version that failed appears in band as an
        ``{"index": …, "status": …, "error": …}`` document and the
        remaining versions still arrive; a whole-range rejection (full
        queue under the ``"reject"`` policy) retries on the client's
        budget and then raises, exactly like every other call.  The
        terminating summary is stored in :attr:`last_stream_summary`,
        and a stream that dies before it raises :class:`WireError`.
        """
        body = json.dumps({**job, "index": index}).encode("utf-8")
        async with self._lock:
            response, reader = await self._exchange("POST", "/range", body)
            if not response.chunked:
                raise WireError(
                    f"expected a chunked stream, got status {response.status}"
                )
            self.last_stream_summary = None
            async for document in wire.iter_chunked_lines(reader):
                if isinstance(document, dict) and "end" in document:
                    # Keep draining (see stream()): the zero-chunk is still
                    # on the wire of this keep-alive connection.
                    end = document["end"]
                    self.last_stream_summary = end if isinstance(end, dict) else {}
                    continue
                if isinstance(document, dict):
                    yield document
            if self.last_stream_summary is None:
                raise WireError("range stream ended without a summary line")

    async def shards(self) -> Dict[str, object]:
        """``GET /shards`` — routing table, version, per-shard load.

        The returned assignment is valid only at the returned
        ``version``; never cache it across requests (ownership moves).
        """
        return await self._call("GET", "/shards")

    async def add_shard(self) -> Dict[str, object]:
        """``POST /shards`` ``{"action": "add"}`` — grow the fleet."""
        return await self._call("POST", "/shards", {"action": "add"})

    async def remove_shard(self, shard: int) -> Dict[str, object]:
        """``POST /shards`` remove — drain and retire one shard.

        Raises :class:`~repro.errors.RebalanceError` (HTTP 409) for an
        unknown id or when the shard is the last one.
        """
        return await self._call(
            "POST", "/shards", {"action": "remove", "shard": shard}
        )

    async def move(self, name: str, shard: int) -> Dict[str, object]:
        """``POST /shards`` move — hand one name off to another shard."""
        return await self._call(
            "POST", "/shards", {"action": "move", "name": name, "shard": shard}
        )

    async def rebalance(self) -> Dict[str, object]:
        """``POST /shards`` rebalance — run one policy round now."""
        return await self._call("POST", "/shards", {"action": "rebalance"})

    async def calibration(self) -> Dict[str, object]:
        """``GET /calibration`` — calibration tables + refinement state."""
        return await self._call("GET", "/calibration")

    async def refine(self, limit: Optional[int] = None) -> Dict[str, object]:
        """``POST /calibration`` refine — drain refine-to-exact queues.

        ``limit`` bounds the continuations per shard; ``None`` drains
        everything queued at the time of the call.
        """
        payload: Dict[str, object] = {"action": "refine"}
        if limit is not None:
            payload["limit"] = limit
        return await self._call("POST", "/calibration", payload)

    async def calibrate(
        self, jobs: List[Dict[str, object]]
    ) -> Dict[str, object]:
        """``POST /calibration`` observe — run a held-out calibration batch.

        ``jobs`` are count-job documents; every randomised one contributes
        an (estimate, exact) residual pair to its shard's calibrator.
        """
        return await self._call(
            "POST", "/calibration", {"action": "observe", "jobs": jobs}
        )

    async def history(
        self, name: str, limit: Optional[int] = None
    ) -> Dict[str, object]:
        """``GET /history/{name}`` — the recorded lineage document."""
        target = f"/history/{name}"
        if limit is not None:
            target += f"?limit={limit}"
        return await self._call("GET", target)

    async def checkpoints(self, name: str) -> Dict[str, object]:
        """``GET /checkpoints/{name}`` — the known checkpoints document."""
        return await self._call("GET", f"/checkpoints/{name}")

    async def checkpoint(self, name: str) -> Dict[str, object]:
        """``POST /checkpoint/{name}`` — cut a checkpoint now."""
        return await self._call("POST", f"/checkpoint/{name}")

    async def rollback(self, name: str, to: object) -> Dict[str, object]:
        """``POST /rollback/{name}`` — re-register a recorded ancestor."""
        return await self._call("POST", f"/rollback/{name}", {"to": to})

    def __repr__(self) -> str:
        state = "connected" if self._writer is not None else "disconnected"
        return (
            f"ServeClient({self.host}:{self.port}, retries={self.retries}, "
            f"{state})"
        )
