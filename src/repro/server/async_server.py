"""The asyncio serving front-end: :class:`AsyncServer`.

:class:`~repro.engine.SolverPool` is a library object: callers hand it a
batch and wait.  A long-lived service needs the opposite shape — jobs
arrive continuously, concurrency must be *bounded* (an unbounded backlog
is an outage with extra steps), and the data set is sharded so independent
databases are served by independent worker processes.  ``AsyncServer``
provides that shape on top of the pool:

**Sharding** — each registered snapshot is owned by exactly one
:class:`~repro.server.shards.Shard` (a warm single-worker process hosting
its own pool).  Ownership is assigned at registration time from the
snapshot token: the token digest picks a preferred shard, demoted to the
least-loaded shard when the preferred one is already above the minimum
load, so shard assignment is deterministic for a given registration order
and databases spread evenly.  Jobs and deltas route to the owning shard —
including *time-travel* jobs (``CountJob.as_of``): a name's historical
snapshots live in the lineage its owning shard recorded (and, with a
persistent store, in the shared snapshot catalog), so routing by name is
routing by historical token, and an ``as_of`` count hits whatever
selector/decomposition state was warm when that snapshot was live.

**Ordering** — a shard executes its queue FIFO, so all counts and updates
of one database are serialised in submission order; a count therefore
observes exactly the snapshots produced by the deltas submitted before it.
Across *different* databases there is no ordering (none is needed — a
delta cannot affect another database's counts), which is precisely the
parallelism the shards exploit.  Results remain **bit-identical** to a
sequential :meth:`SolverPool.run_stream` of the same stream: per-job seeds
derive from the job content and its stream position, both of which the
server preserves.

**Backpressure** — at most ``queue_limit`` jobs are in flight (accepted
but not finished) at any moment.  When the queue is full, the ``"wait"``
policy suspends the submitter until a slot frees and the ``"reject"``
policy raises :class:`~repro.errors.ServerOverloadedError` immediately.
Either way a job is never silently dropped: it is finished, or the caller
holds an exception saying it was not.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    AsyncIterator,
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..db.lineage import CheckpointRecord, Lineage, LineageRecord
from ..engine.jobs import (
    BatchReport,
    CountJob,
    JobResult,
    UpdateJob,
    UpdateReport,
    aggregate_cache_stats,
)
from ..errors import EngineError, ServerError, ServerOverloadedError
from .shards import Shard

__all__ = [
    "AsyncServer",
    "BACKPRESSURE_POLICIES",
    "StreamFailure",
    "serve_stream",
]

#: The supported reactions to a full job queue.
BACKPRESSURE_POLICIES = ("wait", "reject")

#: A stream element: one counting job or one delta.
StreamItem = Union[CountJob, UpdateJob]
#: What one stream element resolves to.
StreamResult = Union[JobResult, UpdateReport]


@dataclass(frozen=True)
class StreamFailure:
    """One stream element that produced an error instead of a result.

    Yielded by :meth:`AsyncServer.results` under ``on_error="yield"`` so a
    streaming consumer (the HTTP front, the CLI) can report the failure in
    band and keep draining the remaining results — a failed job must never
    take the rest of the stream down with it, and must never be silently
    dropped either.

    ``index`` is the element's stream position (the same index a
    successful result would carry); ``error`` is the exception the element
    produced, either at dispatch time (overload, unknown database) or at
    execution time (bad query, unknown ``as_of`` reference).
    """

    index: int
    error: BaseException


class AsyncServer:
    """A sharded, backpressured asyncio server over :class:`SolverPool`.

    Parameters
    ----------
    shards:
        Number of worker shards.  Each shard is one warm process owning a
        disjoint subset of the registered snapshots.
    queue_limit:
        Bound on in-flight jobs (accepted, not yet finished) across the
        whole server.
    policy:
        What a full queue does to a submitter: ``"wait"`` suspends it,
        ``"reject"`` raises :class:`~repro.errors.ServerOverloadedError`.
    persist_dir, persist_max_entries, persist_max_age, checkpoint_every:
        Forwarded to every shard's pool (see :class:`SolverPool`); shards
        share one persistent cache directory, and ``checkpoint_every``
        makes each shard cut compaction checkpoints for its owned names.

    Example — three jobs through a one-shard server (the synchronous
    :func:`serve_stream` wrapper drives exactly this API):

    >>> import asyncio
    >>> from repro.db import Database, PrimaryKeySet, fact
    >>> from repro.engine import CountJob
    >>> db = Database([fact("R", 1, "a"), fact("R", 1, "b")])
    >>> keys = PrimaryKeySet.from_dict({"R": [1]})
    >>> async def main():
    ...     server = AsyncServer(shards=1, queue_limit=2)
    ...     server.register("r", db, keys)
    ...     async with server:
    ...         return await server.run_stream(
    ...             [CountJob(database="r", query="EXISTS x. R(1, x)")])
    >>> report = asyncio.run(main())
    >>> (report.results[0].satisfying, report.results[0].total)
    (2, 2)
    """

    def __init__(
        self,
        shards: int = 2,
        queue_limit: int = 64,
        policy: str = "wait",
        persist_dir: Optional[Union[str, Path]] = None,
        persist_max_entries: Optional[int] = None,
        persist_max_age: Optional[float] = None,
        checkpoint_every: Optional[int] = None,
    ) -> None:
        if shards < 1:
            raise ServerError(f"shards must be >= 1, got {shards}")
        if queue_limit < 1:
            raise ServerError(f"queue_limit must be >= 1, got {queue_limit}")
        if policy not in BACKPRESSURE_POLICIES:
            raise ServerError(
                f"unknown backpressure policy {policy!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}"
            )
        if checkpoint_every is not None and checkpoint_every < 1:
            # Validate in the parent: a bad interval must fail here, not
            # as a BrokenProcessPool from the shard worker's initializer.
            raise ServerError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self._shards = [
            Shard(
                shard_id,
                persist_dir=persist_dir,
                persist_max_entries=persist_max_entries,
                persist_max_age=persist_max_age,
                checkpoint_every=checkpoint_every,
            )
            for shard_id in range(shards)
        ]
        self._owner: Dict[str, Shard] = {}
        self._queue_limit = queue_limit
        self._policy = policy
        self._slots: Optional[asyncio.Semaphore] = None
        self._outstanding: Set["asyncio.Future[StreamResult]"] = set()
        self._running = False
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.in_flight = 0
        self.peak_in_flight = 0

    # ------------------------------------------------------------------ #
    # registration and routing
    # ------------------------------------------------------------------ #
    def register(self, name: str, database: Database, keys: PrimaryKeySet) -> None:
        """Register a snapshot and assign it to its owning shard.

        Re-registering a known name keeps it on its shard (the shard's
        pool handles the content change); a new name is routed by its
        snapshot token as described in the module docstring.  Registration
        is allowed both before ``start`` (priming) and while running
        (live registration, ordered with subsequent jobs on that shard).
        """
        if name in self._owner:
            self._owner[name].own(name, database, keys)
            return
        database.freeze()
        token = (database.content_digest(), keys.content_digest())
        shard = self._assign_shard(token)
        shard.own(name, database, keys)
        self._owner[name] = shard

    def _assign_shard(self, token: Tuple[str, str]) -> Shard:
        """Token-preferred, load-balanced shard choice (deterministic)."""
        preferred = int(token[0][:16], 16) % len(self._shards)
        least_loaded = min(len(shard) for shard in self._shards)
        for offset in range(len(self._shards)):
            candidate = self._shards[(preferred + offset) % len(self._shards)]
            if len(candidate) == least_loaded:
                return candidate
        raise AssertionError("unreachable: some shard has the minimum load")

    def shard_of(self, name: str) -> int:
        """The shard id owning the registration ``name``."""
        return self._owner_of(name).shard_id

    def database_names(self) -> Tuple[str, ...]:
        """All registered names, in registration order."""
        return tuple(self._owner)

    @property
    def shard_count(self) -> int:
        """The number of worker shards this server fans out over."""
        return len(self._shards)

    def _owner_of(self, name: str) -> Shard:
        try:
            return self._owner[name]
        except KeyError as exc:
            raise EngineError(
                f"unknown database {name!r}; registered: {sorted(self._owner)}"
            ) from exc

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Start every shard worker.  Idempotent calls are an error."""
        if self._running:
            raise ServerError("the server is already running")
        self._slots = asyncio.Semaphore(self._queue_limit)
        for shard in self._shards:
            shard.start()
        self._running = True

    async def stop(self) -> None:
        """Drain and stop every shard (waits for in-flight jobs).

        Teardown is a two-phase drain: first every shard worker is shut
        down (which waits for its queued jobs), then the loop is yielded
        to until every completion callback has run.  Only then is the
        semaphore dropped — a callback must never find ``_slots`` already
        gone, or the ``in_flight``/``completed`` counters would still be
        mid-flight when ``stop`` returns (and would never settle at all if
        the event loop exits right after).
        """
        if not self._running:
            return
        self._running = False
        loop = asyncio.get_running_loop()
        outcomes = await asyncio.gather(
            *(loop.run_in_executor(None, shard.stop) for shard in self._shards),
            return_exceptions=True,
        )
        # Every inner future is done now (shutdown waited), but the
        # asyncio-side completion callbacks are delivered via call_soon
        # and may still be queued; yield until they have all run.
        while self._outstanding:
            await asyncio.sleep(0)
        self._slots = None
        errors = [error for error in outcomes if isinstance(error, BaseException)]
        if errors:
            raise errors[0]

    async def __aenter__(self) -> "AsyncServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    async def dispatch(
        self, item: StreamItem, index: int = 0
    ) -> "asyncio.Future[StreamResult]":
        """Accept one stream element and return a future for its result.

        Applies the backpressure policy *before* accepting: with a full
        queue, ``"wait"`` suspends here and ``"reject"`` raises
        :class:`ServerOverloadedError` (the job was never accepted).  The
        returned future resolves to a :class:`JobResult` (count jobs) or
        an :class:`UpdateReport` (updates); ``index`` is the position in
        the caller's stream and fixes both result ordering and the derived
        per-job seeds, exactly as in :meth:`SolverPool.run_stream`.
        """
        if not self._running or self._slots is None:
            raise ServerError("the server is not running; use 'async with server'")
        shard = self._owner_of(item.database)  # validate before taking a slot
        if self._policy == "reject" and self._slots.locked():
            self.rejected += 1
            raise ServerOverloadedError(
                f"queue full ({self._queue_limit} jobs in flight); "
                f"job for {item.database!r} rejected"
            )
        await self._slots.acquire()
        self.submitted += 1
        self.in_flight += 1
        self.peak_in_flight = max(self.peak_in_flight, self.in_flight)
        try:
            if isinstance(item, UpdateJob):
                inner = shard.submit_update(index, item)
            elif isinstance(item, CountJob):
                inner = shard.submit_count(index, item)
            else:
                raise EngineError(
                    f"stream items must be CountJob or UpdateJob, "
                    f"got {type(item).__name__}"
                )
        except BaseException:
            self.in_flight -= 1
            self._slots.release()
            raise
        future = asyncio.wrap_future(inner)
        self._outstanding.add(future)
        future.add_done_callback(self._on_done)
        return future

    def _on_done(self, future: "asyncio.Future[StreamResult]") -> None:
        self._outstanding.discard(future)
        self.in_flight -= 1
        if not future.cancelled() and future.exception() is None:
            self.completed += 1
        if self._slots is not None:
            self._slots.release()

    async def _drain(
        self, futures: Iterable["asyncio.Future[StreamResult]"]
    ) -> None:
        """Cancel-or-drain dispatched futures that will not be consumed.

        Queued jobs that have not started are cancelled; running ones are
        awaited.  Either way every future is *retrieved* — its completion
        callback runs (releasing the queue slot and settling the
        counters) and its exception, if any, is observed rather than left
        to die as "exception was never retrieved".
        """
        futures = list(futures)
        for future in futures:
            if not future.done():
                future.cancel()
        if futures:
            await asyncio.gather(*futures, return_exceptions=True)

    async def submit(self, item: StreamItem, index: int = 0) -> StreamResult:
        """Accept one stream element and await its result."""
        future = await self.dispatch(item, index)
        return await future

    async def run_stream(self, items: Iterable[StreamItem]) -> BatchReport:
        """Serve a whole stream; return the aggregated report.

        Elements are dispatched in stream order (so per-database ordering
        holds) but execute concurrently across shards; the report's
        ``results`` and ``updates`` are ordered by stream position and are
        bit-identical to :meth:`SolverPool.run_stream` on the same stream.
        Backpressure applies per element: the stream submitter itself
        waits (or, under ``"reject"``, the overload error propagates out).

        Failure handling is drain-first: if a mid-stream ``dispatch``
        raises (overload under ``"reject"``, unknown database), the
        already-dispatched futures are cancelled-or-drained before the
        error propagates, and if any *job* fails, every other job is
        still run to completion and the failure of the lowest stream
        index is raised — deterministically, with no in-flight result
        abandoned and no exception left unretrieved.
        """
        started = time.perf_counter()
        futures: List["asyncio.Future[StreamResult]"] = []
        try:
            for index, item in enumerate(items):
                futures.append(await self.dispatch(item, index))
        except BaseException:
            await self._drain(futures)
            raise
        outcomes = await asyncio.gather(*futures, return_exceptions=True)
        elapsed = time.perf_counter() - started
        for outcome in outcomes:  # futures order == stream order
            if isinstance(outcome, BaseException):
                raise outcome

        results = sorted(
            (outcome for outcome in outcomes if isinstance(outcome, JobResult)),
            key=lambda result: result.index,
        )
        updates = sorted(
            (outcome for outcome in outcomes if isinstance(outcome, UpdateReport)),
            key=lambda report: -1 if report.index is None else report.index,
        )
        return BatchReport(
            results=tuple(results),
            elapsed=elapsed,
            workers=len(self._shards),
            cache_stats=aggregate_cache_stats(results),
            updates=tuple(updates),
        )

    async def results(
        self, items: Iterable[StreamItem], on_error: str = "raise"
    ) -> AsyncIterator[Union[StreamResult, StreamFailure]]:
        """Serve a stream, yielding each result as soon as it is ready.

        Completion order, not stream order — every yielded result carries
        its stream ``index`` so consumers can reorder if they need to.
        This is the CLI's streaming mode; ``run_stream`` is the batch
        shape of the same computation.

        ``on_error`` picks the failure semantics:

        * ``"raise"`` (default) — the first failing element raises out of
          the iterator; every still-pending future is cancelled-or-drained
          first, so no in-flight result is abandoned and no exception goes
          unretrieved.  The same drain runs if the consumer abandons the
          iterator early.
        * ``"yield"`` — a failing element (at dispatch time *or* at
          execution time) is yielded in band as a :class:`StreamFailure`
          and the remaining results keep flowing.  This is the HTTP
          front's mode: one bad job must not tear down the response
          stream.
        """
        if on_error not in ("raise", "yield"):
            raise ServerError(
                f"on_error must be 'raise' or 'yield', got {on_error!r}"
            )
        pending: Dict["asyncio.Future[StreamResult]", int] = {}

        def settle(
            done: "Iterable[asyncio.Future[StreamResult]]",
        ) -> List[Union[StreamResult, StreamFailure]]:
            # Completion sets are unordered; settle by stream index so
            # simultaneous completions are reported deterministically.
            settled: List[Union[StreamResult, StreamFailure]] = []
            for future in sorted(done, key=pending.__getitem__):
                index = pending.pop(future)
                error = (
                    asyncio.CancelledError()
                    if future.cancelled()
                    else future.exception()
                )
                if error is None:
                    settled.append(future.result())
                elif on_error == "yield":
                    settled.append(StreamFailure(index=index, error=error))
                else:
                    raise error
            return settled

        try:
            for index, item in enumerate(items):
                try:
                    pending[await self.dispatch(item, index)] = index
                except (EngineError, ServerError) as exc:
                    if on_error != "yield":
                        raise
                    yield StreamFailure(index=index, error=exc)
                # Drain whatever already finished so results flow while
                # the submitter is still reading input.
                while pending:
                    done, _ = await asyncio.wait(set(pending), timeout=0)
                    if not done:
                        break
                    for outcome in settle(done):
                        yield outcome
            while pending:
                done, _ = await asyncio.wait(
                    set(pending), return_when=asyncio.FIRST_COMPLETED
                )
                for outcome in settle(done):
                    yield outcome
        finally:
            if pending:
                await self._drain(list(pending))
                pending.clear()

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    async def history(self, name: str) -> Lineage:
        """The recorded snapshot lineage of ``name``, from its owning shard.

        The probe is a queued job on the owning shard, so the returned
        chain reflects every registration and delta submitted before the
        call — the server-side counterpart of
        :meth:`~repro.engine.SolverPool.lineage`.
        """
        if not self._running:
            raise ServerError("the server is not running; use 'async with server'")
        shard = self._owner_of(name)
        return await asyncio.wrap_future(shard.submit_history(name))

    async def checkpoints(self, name: str) -> Tuple[CheckpointRecord, ...]:
        """The known compaction checkpoints of ``name``, oldest first.

        The checkpoint-aware companion of :meth:`history`: also a queued
        probe on the owning shard, so it reflects every delta — and every
        automatic ``checkpoint_every`` checkpoint those deltas cut —
        submitted before the call.
        """
        if not self._running:
            raise ServerError("the server is not running; use 'async with server'")
        shard = self._owner_of(name)
        return await asyncio.wrap_future(shard.submit_checkpoints(name))

    async def checkpoint(self, name: str) -> Optional[CheckpointRecord]:
        """Cut an explicit compaction checkpoint of ``name`` on its shard.

        FIFO with the name's jobs: the checkpoint captures exactly the
        snapshot produced by the deltas submitted before the call.
        Returns the record, or ``None`` if the snapshot store refused it.
        """
        if not self._running:
            raise ServerError("the server is not running; use 'async with server'")
        shard = self._owner_of(name)
        return await asyncio.wrap_future(shard.submit_checkpoint(name))

    async def rollback(
        self, name: str, ref: Union[str, int]
    ) -> LineageRecord:
        """Re-register a recorded ancestor of ``name`` as its head.

        Routed to the owning shard and FIFO with the name's jobs, so the
        rollback observes every delta submitted before it and every job
        submitted after it counts against the rolled-back snapshot.
        ``ref`` is an ``as_of``-style reference: a recorded content digest
        (or unique >=8-character prefix) or a non-positive chain index.
        """
        if not self._running:
            raise ServerError("the server is not running; use 'async with server'")
        shard = self._owner_of(name)
        return await asyncio.wrap_future(shard.submit_rollback(name, ref))

    async def stats(self) -> Dict[str, object]:
        """Aggregate live statistics: queue counters plus per-shard state.

        Per-shard entries come straight from each worker pool's
        :meth:`SolverPool.cache_stats` (including the persist layers and
        their GC evictions) plus its recomputation counters; the ``queue``
        section reports the backpressure configuration and lifetime
        submission counters.  The probe is itself a queued job, so the
        numbers reflect every job submitted before the call.
        """
        if not self._running:
            raise ServerError("the server is not running; use 'async with server'")
        probes = [
            asyncio.wrap_future(shard.submit_stats()) for shard in self._shards
        ]
        shard_stats = await asyncio.gather(*probes)
        return {
            "queue": {
                "limit": self._queue_limit,
                "policy": self._policy,
                "submitted": self.submitted,
                "completed": self.completed,
                "rejected": self.rejected,
                "in_flight": self.in_flight,
                "peak_in_flight": self.peak_in_flight,
            },
            "shards": {
                # "databases" comes from the worker-side payload: it is the
                # execution truth (what the shard's pool can actually
                # serve), which parent-side ownership can only approximate.
                str(shard.shard_id): {
                    "jobs_submitted": shard.jobs_submitted,
                    "updates_submitted": shard.updates_submitted,
                    **stats,
                }
                for shard, stats in zip(self._shards, shard_stats)
            },
        }

    def __repr__(self) -> str:
        state = "running" if self._running else "stopped"
        return (
            f"AsyncServer(shards={len(self._shards)}, "
            f"queue_limit={self._queue_limit}, policy={self._policy!r}, "
            f"databases={len(self._owner)}, {state})"
        )


def serve_stream(
    databases: Dict[str, Tuple[Database, PrimaryKeySet]],
    items: Iterable[StreamItem],
    shards: int = 2,
    queue_limit: int = 64,
    policy: str = "wait",
    persist_dir: Optional[Union[str, Path]] = None,
    persist_max_entries: Optional[int] = None,
    persist_max_age: Optional[float] = None,
    checkpoint_every: Optional[int] = None,
) -> BatchReport:
    """Serve one stream through a temporary :class:`AsyncServer`.

    The synchronous convenience wrapper (used by benchmarks and scripts
    that do not run their own event loop): registers ``databases``,
    starts the server, runs the stream, stops the server.  The report is
    bit-identical to ``SolverPool.run_stream`` on the same stream.

    >>> from repro.db import Database, PrimaryKeySet, fact
    >>> from repro.engine import CountJob
    >>> db = Database([fact("R", 1, "a"), fact("R", 1, "b")])
    >>> keys = PrimaryKeySet.from_dict({"R": [1]})
    >>> report = serve_stream(
    ...     {"r": (db, keys)},
    ...     [CountJob(database="r", query="EXISTS x. R(1, x)")],
    ...     shards=1,
    ... )
    >>> report.results[0].satisfying
    2
    """

    async def _run() -> BatchReport:
        server = AsyncServer(
            shards=shards,
            queue_limit=queue_limit,
            policy=policy,
            persist_dir=persist_dir,
            persist_max_entries=persist_max_entries,
            persist_max_age=persist_max_age,
            checkpoint_every=checkpoint_every,
        )
        for name, (database, keys) in databases.items():
            server.register(name, database, keys)
        async with server:
            return await server.run_stream(items)

    return asyncio.run(_run())
