"""The asyncio serving front-end: :class:`AsyncServer`.

:class:`~repro.engine.SolverPool` is a library object: callers hand it a
batch and wait.  A long-lived service needs the opposite shape — jobs
arrive continuously, concurrency must be *bounded* (an unbounded backlog
is an outage with extra steps), and the data set is sharded so independent
databases are served by independent worker processes.  ``AsyncServer``
provides that shape on top of the pool:

**Sharding** — each registered snapshot is owned by exactly one
:class:`~repro.server.shards.Shard` (a warm single-worker process hosting
its own pool).  Ownership is assigned at registration time from the
snapshot token: the token digest picks a preferred shard, demoted to the
least-loaded shard when the preferred one is already above the minimum
load, so shard assignment is deterministic for a given registration order
and databases spread evenly.  Jobs and deltas route to the owning shard —
including *time-travel* jobs (``CountJob.as_of``): a name's historical
snapshots live in the lineage its owning shard recorded (and, with a
persistent store, in the shared snapshot catalog), so routing by name is
routing by historical token, and an ``as_of`` count hits whatever
selector/decomposition state was warm when that snapshot was live.

**Ordering** — a shard executes its queue FIFO, so all counts and updates
of one database are serialised in submission order; a count therefore
observes exactly the snapshots produced by the deltas submitted before it.
Across *different* databases there is no ordering (none is needed — a
delta cannot affect another database's counts), which is precisely the
parallelism the shards exploit.  Results remain **bit-identical** to a
sequential :meth:`SolverPool.run_stream` of the same stream: per-job seeds
derive from the job content and its stream position, both of which the
server preserves.

**Backpressure** — at most ``queue_limit`` jobs are in flight (accepted
but not finished) at any moment.  When the queue is full, the ``"wait"``
policy suspends the submitter until a slot frees and the ``"reject"``
policy raises :class:`~repro.errors.ServerOverloadedError` immediately.
Either way a job is never silently dropped: it is finished, or the caller
holds an exception saying it was not.

**Elasticity** — ownership is not fixed for life.  The server keeps
per-shard and per-name load accounting (dispatched, completed, in-flight,
queue depth, cumulative busy seconds), and :meth:`AsyncServer.move`
transfers a name to another shard mid-serve: new dispatches of the name
park on a gate, its in-flight jobs drain on the old shard (FIFO, so
bit-identical ordering survives), the *worker-side* head and lineage are
exported and adopted by the destination (whose caches are primed through
the shared store — a warm handoff ships zero recomputations), and the
routing table flips in one step.  Jobs for other names never stall.
:meth:`add_shard`/:meth:`remove_shard` grow and shrink the fleet at
runtime, and a :class:`~repro.server.rebalance.RebalancePolicy` (default
:class:`~repro.server.rebalance.GreedyRebalancer`) can run those moves on
a timer via ``rebalance_interval``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    AsyncIterator,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from ..db.constraints import PrimaryKeySet
from ..db.database import Database
from ..db.lineage import CheckpointRecord, Lineage, LineageRecord
from ..engine.jobs import (
    BatchReport,
    CountJob,
    JobResult,
    UpdateJob,
    UpdateReport,
    aggregate_cache_stats,
)
from ..engine.executor import RangeFailure
from ..errors import (
    EngineError,
    RebalanceError,
    ServerError,
    ServerOverloadedError,
)
from ..store.tuning import CheckpointPolicy
from .rebalance import (
    GreedyRebalancer,
    LoadSnapshot,
    Move,
    NameLoad,
    RebalancePolicy,
    ShardLoad,
)
from .shards import Shard

__all__ = [
    "AsyncServer",
    "BACKPRESSURE_POLICIES",
    "StreamFailure",
    "serve_stream",
]

#: The supported reactions to a full job queue.
BACKPRESSURE_POLICIES = ("wait", "reject")

#: A stream element: one counting job or one delta.
StreamItem = Union[CountJob, UpdateJob]
#: What one stream element resolves to.
StreamResult = Union[JobResult, UpdateReport]


@dataclass(frozen=True)
class StreamFailure:
    """One stream element that produced an error instead of a result.

    Yielded by :meth:`AsyncServer.results` under ``on_error="yield"`` so a
    streaming consumer (the HTTP front, the CLI) can report the failure in
    band and keep draining the remaining results — a failed job must never
    take the rest of the stream down with it, and must never be silently
    dropped either.

    ``index`` is the element's stream position (the same index a
    successful result would carry); ``error`` is the exception the element
    produced, either at dispatch time (overload, unknown database) or at
    execution time (bad query, unknown ``as_of`` reference).
    """

    index: int
    error: BaseException


class AsyncServer:
    """A sharded, backpressured asyncio server over :class:`SolverPool`.

    Parameters
    ----------
    shards:
        Number of worker shards.  Each shard is one warm process owning a
        disjoint subset of the registered snapshots.
    queue_limit:
        Bound on in-flight jobs (accepted, not yet finished) across the
        whole server.
    policy:
        What a full queue does to a submitter: ``"wait"`` suspends it,
        ``"reject"`` raises :class:`~repro.errors.ServerOverloadedError`.
    persist_dir, persist_max_entries, persist_max_age, persist_max_bytes, \
checkpoint_every, checkpoint_policy:
        Forwarded to every shard's pool (see :class:`SolverPool`); shards
        share one persistent cache directory, ``checkpoint_every`` makes
        each shard cut compaction checkpoints for its owned names, and
        ``checkpoint_policy`` replaces the fixed interval with a
        cost-model-driven placement policy (e.g.
        :class:`~repro.store.AdaptiveCheckpointPolicy`) — each shard
        worker unpickles its own instance and observes its own reads.
        ``persist_max_bytes`` bounds the shared store's total footprint,
        split between entry kinds by observed hit-rate-per-byte.
        A shared ``persist_dir`` is also what makes ownership handoffs
        *warm*: the destination reads the migrated name's selector and
        decomposition entries through the store instead of recomputing.
    rebalance_interval, max_imbalance, rebalancer:
        Automatic rebalancing: every ``rebalance_interval`` seconds the
        server asks its policy for moves and executes them.  The default
        policy is :class:`~repro.server.rebalance.GreedyRebalancer`
        with threshold ``max_imbalance`` (hottest shard over mean shard
        load); pass ``rebalancer`` to override it.  Leave the interval
        ``None`` (default) for on-demand rebalancing via
        :meth:`rebalance`.

    Example — three jobs through a one-shard server (the synchronous
    :func:`serve_stream` wrapper drives exactly this API):

    >>> import asyncio
    >>> from repro.db import Database, PrimaryKeySet, fact
    >>> from repro.engine import CountJob
    >>> db = Database([fact("R", 1, "a"), fact("R", 1, "b")])
    >>> keys = PrimaryKeySet.from_dict({"R": [1]})
    >>> async def main():
    ...     server = AsyncServer(shards=1, queue_limit=2)
    ...     server.register("r", db, keys)
    ...     async with server:
    ...         return await server.run_stream(
    ...             [CountJob(database="r", query="EXISTS x. R(1, x)")])
    >>> report = asyncio.run(main())
    >>> (report.results[0].satisfying, report.results[0].total)
    (2, 2)
    """

    def __init__(
        self,
        shards: int = 2,
        queue_limit: int = 64,
        policy: str = "wait",
        persist_dir: Optional[Union[str, Path]] = None,
        persist_max_entries: Optional[int] = None,
        persist_max_age: Optional[float] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_policy: Optional[CheckpointPolicy] = None,
        persist_max_bytes: Optional[int] = None,
        rebalance_interval: Optional[float] = None,
        max_imbalance: float = 2.0,
        rebalancer: Optional[RebalancePolicy] = None,
    ) -> None:
        if shards < 1:
            raise ServerError(f"shards must be >= 1, got {shards}")
        if queue_limit < 1:
            raise ServerError(f"queue_limit must be >= 1, got {queue_limit}")
        if policy not in BACKPRESSURE_POLICIES:
            raise ServerError(
                f"unknown backpressure policy {policy!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}"
            )
        if checkpoint_every is not None and checkpoint_every < 1:
            # Validate in the parent: a bad interval must fail here, not
            # as a BrokenProcessPool from the shard worker's initializer.
            raise ServerError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if checkpoint_every is not None and checkpoint_policy is not None:
            raise ServerError(
                "pass checkpoint_every or checkpoint_policy, not both; "
                "checkpoint_every=K is FixedIntervalPolicy(K)"
            )
        if persist_max_bytes is not None and persist_max_bytes < 0:
            raise ServerError(
                f"persist_max_bytes must be >= 0, got {persist_max_bytes}"
            )
        if rebalance_interval is not None and rebalance_interval <= 0:
            raise ServerError(
                f"rebalance_interval must be > 0, got {rebalance_interval}"
            )
        self._shard_options = {
            "persist_dir": persist_dir,
            "persist_max_entries": persist_max_entries,
            "persist_max_age": persist_max_age,
            "checkpoint_every": checkpoint_every,
            "checkpoint_policy": checkpoint_policy,
            "persist_max_bytes": persist_max_bytes,
        }
        self._shards = [
            Shard(shard_id, **self._shard_options) for shard_id in range(shards)
        ]
        self._next_shard_id = shards
        self._owner: Dict[str, Shard] = {}
        self._routing_version = 0
        self._queue_limit = queue_limit
        self._policy = policy
        self._slots: Optional[asyncio.Semaphore] = None
        #: future -> (database name, shard id) of every in-flight job.
        self._outstanding: Dict[
            "asyncio.Future[StreamResult]", Tuple[str, int]
        ] = {}
        #: name -> gate event while that name is mid-handoff.
        self._moving: Dict[str, asyncio.Event] = {}
        self._shard_load: Dict[int, Dict[str, float]] = {}
        self._name_load: Dict[str, Dict[str, float]] = {}
        self._rebalance_interval = rebalance_interval
        self._rebalancer = (
            rebalancer
            if rebalancer is not None
            else GreedyRebalancer(max_imbalance=max_imbalance)
        )
        self._rebalance_task: Optional["asyncio.Task[None]"] = None
        self._running = False
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.in_flight = 0
        self.peak_in_flight = 0
        self.moves_completed = 0
        self.rebalance_rounds = 0

    # ------------------------------------------------------------------ #
    # registration and routing
    # ------------------------------------------------------------------ #
    def register(self, name: str, database: Database, keys: PrimaryKeySet) -> None:
        """Register a snapshot and assign it to its owning shard.

        Re-registering a known name keeps it on its shard (the shard's
        pool handles the content change); a new name is routed by its
        snapshot token as described in the module docstring.  Registration
        is allowed both before ``start`` (priming) and while running
        (live registration, ordered with subsequent jobs on that shard).
        """
        if name in self._owner:
            self._owner[name].own(name, database, keys)
            return
        database.freeze()
        token = (database.content_digest(), keys.content_digest())
        shard = self._assign_shard(token)
        shard.own(name, database, keys)
        self._owner[name] = shard
        self._routing_version += 1

    def _assign_shard(self, token: Tuple[str, str]) -> Shard:
        """Token-preferred, load-balanced *initial* shard choice.

        Deterministic for a given registration order and shard set —
        but only the initial placement: ownership may move later, so
        every routing decision must read :meth:`shard_of` (or the
        internal :meth:`_owner_of`) at dispatch time, never cache a
        shard reference across an await.
        """
        preferred = int(token[0][:16], 16) % len(self._shards)
        least_loaded = min(len(shard) for shard in self._shards)
        for offset in range(len(self._shards)):
            candidate = self._shards[(preferred + offset) % len(self._shards)]
            if len(candidate) == least_loaded:
                return candidate
        raise AssertionError("unreachable: some shard has the minimum load")

    def shard_of(self, name: str) -> int:
        """The shard id *currently* owning the registration ``name``.

        The single routing lookup: valid only until the next ownership
        change (watch :attr:`routing_version`), so callers must resolve
        it per dispatch rather than caching the result.
        """
        return self._owner_of(name).shard_id

    @property
    def routing_version(self) -> int:
        """Monotonic counter, bumped on every ownership/topology change.

        Increments on registration, on every completed :meth:`move`, and
        on :meth:`add_shard`/:meth:`remove_shard` — a cheap staleness
        probe for anything that snapshots the routing table.
        """
        return self._routing_version

    def database_names(self) -> Tuple[str, ...]:
        """All registered names, in registration order."""
        return tuple(self._owner)

    @property
    def shard_count(self) -> int:
        """The number of worker shards this server fans out over."""
        return len(self._shards)

    @property
    def shard_ids(self) -> Tuple[int, ...]:
        """The live shard ids (stable ids, not indices: they survive
        removals and keep growing across :meth:`add_shard`)."""
        return tuple(shard.shard_id for shard in self._shards)

    def _shard_by_id(self, shard_id: int) -> Shard:
        for shard in self._shards:
            if shard.shard_id == shard_id:
                return shard
        raise RebalanceError(
            f"unknown shard {shard_id}; live shards: {list(self.shard_ids)}"
        )

    def _owner_of(self, name: str) -> Shard:
        try:
            return self._owner[name]
        except KeyError as exc:
            raise EngineError(
                f"unknown database {name!r}; registered: {sorted(self._owner)}"
            ) from exc

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Start every shard worker.  Idempotent calls are an error."""
        if self._running:
            raise ServerError("the server is already running")
        self._slots = asyncio.Semaphore(self._queue_limit)
        for shard in self._shards:
            shard.start()
        self._running = True
        if self._rebalance_interval is not None:
            self._rebalance_task = asyncio.get_running_loop().create_task(
                self._rebalance_loop()
            )

    async def stop(self) -> None:
        """Drain and stop every shard (waits for in-flight jobs).

        Teardown is a two-phase drain: first every shard worker is shut
        down (which waits for its queued jobs), then the loop is yielded
        to until every completion callback has run.  Only then is the
        semaphore dropped — a callback must never find ``_slots`` already
        gone, or the ``in_flight``/``completed`` counters would still be
        mid-flight when ``stop`` returns (and would never settle at all if
        the event loop exits right after).
        """
        if not self._running:
            return
        self._running = False
        if self._rebalance_task is not None:
            # Stop the timer before draining shards: a rebalance firing
            # mid-teardown would race the executors it moves names over.
            self._rebalance_task.cancel()
            try:
                await self._rebalance_task
            except asyncio.CancelledError:
                pass
            self._rebalance_task = None
        loop = asyncio.get_running_loop()
        outcomes = await asyncio.gather(
            *(loop.run_in_executor(None, shard.stop) for shard in self._shards),
            return_exceptions=True,
        )
        # Every inner future is done now (shutdown waited), but the
        # asyncio-side completion callbacks are delivered via call_soon
        # and may still be queued; yield until they have all run.
        while self._outstanding:
            await asyncio.sleep(0)
        self._slots = None
        errors = [error for error in outcomes if isinstance(error, BaseException)]
        if errors:
            raise errors[0]

    async def __aenter__(self) -> "AsyncServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    async def dispatch(
        self, item: StreamItem, index: int = 0
    ) -> "asyncio.Future[StreamResult]":
        """Accept one stream element and return a future for its result.

        Applies the backpressure policy *before* accepting: with a full
        queue, ``"wait"`` suspends here and ``"reject"`` raises
        :class:`ServerOverloadedError` (the job was never accepted).  The
        returned future resolves to a :class:`JobResult` (count jobs) or
        an :class:`UpdateReport` (updates); ``index`` is the position in
        the caller's stream and fixes both result ordering and the derived
        per-job seeds, exactly as in :meth:`SolverPool.run_stream`.
        """
        if not self._running or self._slots is None:
            raise ServerError("the server is not running; use 'async with server'")
        name = item.database
        self._owner_of(name)  # validate before taking a slot
        if self._policy == "reject" and self._slots.locked():
            self.rejected += 1
            raise ServerOverloadedError(
                f"queue full ({self._queue_limit} jobs in flight); "
                f"job for {name!r} rejected"
            )
        await self._slots.acquire()
        try:
            # Routing resolves *after* the slot wait and after any
            # in-flight handoff of this name: a shard reference taken
            # before either await could be stale by the time the job is
            # queued.  One shard_of lookup, at the last possible moment.
            while True:
                gate = self._moving.get(name)
                if gate is None:
                    break
                await gate.wait()
            shard = self._owner_of(name)
            if isinstance(item, UpdateJob):
                inner = shard.submit_update(index, item)
            elif isinstance(item, CountJob):
                inner = shard.submit_count(index, item)
            else:
                raise EngineError(
                    f"stream items must be CountJob or UpdateJob, "
                    f"got {type(item).__name__}"
                )
        except BaseException:
            self._slots.release()
            raise
        self.submitted += 1
        self.in_flight += 1
        self.peak_in_flight = max(self.peak_in_flight, self.in_flight)
        for load in (
            self._shard_load.setdefault(shard.shard_id, self._new_load()),
            self._name_load.setdefault(name, self._new_load()),
        ):
            load["dispatched"] += 1
            load["in_flight"] += 1
        future = asyncio.wrap_future(inner)
        self._outstanding[future] = (name, shard.shard_id)
        future.add_done_callback(self._on_done)
        return future

    async def run_range(
        self, job: CountJob, first_index: int = 0
    ) -> List[Union[JobResult, RangeFailure]]:
        """Serve one ``as_of_range`` job as a single unit of shard work.

        The whole range routes to the one shard owning ``job.database``
        and occupies exactly one backpressure slot and one FIFO queue
        position: every version counts against the same lineage state
        (no delta submitted afterwards can interleave), and the shard
        worker resolves all versions through one shared replay walk
        (:meth:`SolverPool.run_range
        <repro.engine.pool.SolverPool.run_range>`).  Returns one outcome
        per version, oldest-endpoint first (or newest first for a
        descending range), failures in band as
        :class:`~repro.engine.RangeFailure` — bit-identical, version for
        version, to submitting the expanded ``as_of`` jobs one by one.

        Backpressure applies exactly as in :meth:`dispatch`: a full
        queue suspends the submitter under ``"wait"`` and raises
        :class:`~repro.errors.ServerOverloadedError` under ``"reject"``.
        """
        if not self._running or self._slots is None:
            raise ServerError("the server is not running; use 'async with server'")
        if job.as_of_range is None:
            raise EngineError(
                "run_range needs a job with as_of_range; "
                "plain jobs go through dispatch/submit"
            )
        name = job.database
        self._owner_of(name)  # validate before taking a slot
        if self._policy == "reject" and self._slots.locked():
            self.rejected += 1
            raise ServerOverloadedError(
                f"queue full ({self._queue_limit} jobs in flight); "
                f"range job for {name!r} rejected"
            )
        await self._slots.acquire()
        try:
            while True:
                gate = self._moving.get(name)
                if gate is None:
                    break
                await gate.wait()
            shard = self._owner_of(name)
            inner = shard.submit_range(first_index, job)
        except BaseException:
            self._slots.release()
            raise
        self.submitted += 1
        self.in_flight += 1
        self.peak_in_flight = max(self.peak_in_flight, self.in_flight)
        for load in (
            self._shard_load.setdefault(shard.shard_id, self._new_load()),
            self._name_load.setdefault(name, self._new_load()),
        ):
            load["dispatched"] += 1
            load["in_flight"] += 1
        future = asyncio.wrap_future(inner)
        self._outstanding[future] = (name, shard.shard_id)
        future.add_done_callback(self._on_done)
        return await future

    @staticmethod
    def _new_load() -> Dict[str, float]:
        return {
            "dispatched": 0,
            "completed": 0,
            "in_flight": 0,
            "busy_time": 0.0,
        }

    def _on_done(self, future: "asyncio.Future[StreamResult]") -> None:
        name, shard_id = self._outstanding.pop(future, (None, None))
        self.in_flight -= 1
        failed = future.cancelled() or future.exception() is not None
        elapsed = 0.0
        if not failed:
            self.completed += 1
            result = future.result()
            if isinstance(result, list):
                # A range resolves to one outcome per version; its busy
                # time is the sum of the versions that produced results.
                elapsed = sum(
                    float(getattr(item, "elapsed", 0.0) or 0.0)
                    for item in result
                )
            else:
                elapsed = float(getattr(result, "elapsed", 0.0) or 0.0)
        loads = []
        if shard_id in self._shard_load:
            loads.append(self._shard_load[shard_id])
        if name in self._name_load:
            loads.append(self._name_load[name])
        for load in loads:
            load["in_flight"] -= 1
            if not failed:
                load["completed"] += 1
                load["busy_time"] += elapsed
        if self._slots is not None:
            self._slots.release()

    async def _drain(
        self, futures: Iterable["asyncio.Future[StreamResult]"]
    ) -> None:
        """Cancel-or-drain dispatched futures that will not be consumed.

        Queued jobs that have not started are cancelled; running ones are
        awaited.  Either way every future is *retrieved* — its completion
        callback runs (releasing the queue slot and settling the
        counters) and its exception, if any, is observed rather than left
        to die as "exception was never retrieved".
        """
        futures = list(futures)
        for future in futures:
            if not future.done():
                future.cancel()
        if futures:
            await asyncio.gather(*futures, return_exceptions=True)

    async def submit(self, item: StreamItem, index: int = 0) -> StreamResult:
        """Accept one stream element and await its result."""
        future = await self.dispatch(item, index)
        return await future

    async def run_stream(self, items: Iterable[StreamItem]) -> BatchReport:
        """Serve a whole stream; return the aggregated report.

        Elements are dispatched in stream order (so per-database ordering
        holds) but execute concurrently across shards; the report's
        ``results`` and ``updates`` are ordered by stream position and are
        bit-identical to :meth:`SolverPool.run_stream` on the same stream.
        Backpressure applies per element: the stream submitter itself
        waits (or, under ``"reject"``, the overload error propagates out).

        Failure handling is drain-first: if a mid-stream ``dispatch``
        raises (overload under ``"reject"``, unknown database), the
        already-dispatched futures are cancelled-or-drained before the
        error propagates, and if any *job* fails, every other job is
        still run to completion and the failure of the lowest stream
        index is raised — deterministically, with no in-flight result
        abandoned and no exception left unretrieved.
        """
        started = time.perf_counter()
        futures: List["asyncio.Future[StreamResult]"] = []
        try:
            for index, item in enumerate(items):
                futures.append(await self.dispatch(item, index))
        except BaseException:
            await self._drain(futures)
            raise
        outcomes = await asyncio.gather(*futures, return_exceptions=True)
        elapsed = time.perf_counter() - started
        for outcome in outcomes:  # futures order == stream order
            if isinstance(outcome, BaseException):
                raise outcome

        results = sorted(
            (outcome for outcome in outcomes if isinstance(outcome, JobResult)),
            key=lambda result: result.index,
        )
        updates = sorted(
            (outcome for outcome in outcomes if isinstance(outcome, UpdateReport)),
            key=lambda report: -1 if report.index is None else report.index,
        )
        return BatchReport(
            results=tuple(results),
            elapsed=elapsed,
            workers=len(self._shards),
            cache_stats=aggregate_cache_stats(results),
            updates=tuple(updates),
        )

    async def results(
        self, items: Iterable[StreamItem], on_error: str = "raise"
    ) -> AsyncIterator[Union[StreamResult, StreamFailure]]:
        """Serve a stream, yielding each result as soon as it is ready.

        Completion order, not stream order — every yielded result carries
        its stream ``index`` so consumers can reorder if they need to.
        This is the CLI's streaming mode; ``run_stream`` is the batch
        shape of the same computation.

        ``on_error`` picks the failure semantics:

        * ``"raise"`` (default) — the first failing element raises out of
          the iterator; every still-pending future is cancelled-or-drained
          first, so no in-flight result is abandoned and no exception goes
          unretrieved.  The same drain runs if the consumer abandons the
          iterator early.
        * ``"yield"`` — a failing element (at dispatch time *or* at
          execution time) is yielded in band as a :class:`StreamFailure`
          and the remaining results keep flowing.  This is the HTTP
          front's mode: one bad job must not tear down the response
          stream.
        """
        if on_error not in ("raise", "yield"):
            raise ServerError(
                f"on_error must be 'raise' or 'yield', got {on_error!r}"
            )
        pending: Dict["asyncio.Future[StreamResult]", int] = {}

        def settle(
            done: "Iterable[asyncio.Future[StreamResult]]",
        ) -> List[Union[StreamResult, StreamFailure]]:
            # Completion sets are unordered; settle by stream index so
            # simultaneous completions are reported deterministically.
            settled: List[Union[StreamResult, StreamFailure]] = []
            for future in sorted(done, key=pending.__getitem__):
                index = pending.pop(future)
                error = (
                    asyncio.CancelledError()
                    if future.cancelled()
                    else future.exception()
                )
                if error is None:
                    settled.append(future.result())
                elif on_error == "yield":
                    settled.append(StreamFailure(index=index, error=error))
                else:
                    raise error
            return settled

        try:
            for index, item in enumerate(items):
                try:
                    pending[await self.dispatch(item, index)] = index
                except (EngineError, ServerError) as exc:
                    if on_error != "yield":
                        raise
                    yield StreamFailure(index=index, error=exc)
                # Drain whatever already finished so results flow while
                # the submitter is still reading input.
                while pending:
                    done, _ = await asyncio.wait(set(pending), timeout=0)
                    if not done:
                        break
                    for outcome in settle(done):
                        yield outcome
            while pending:
                done, _ = await asyncio.wait(
                    set(pending), return_when=asyncio.FIRST_COMPLETED
                )
                for outcome in settle(done):
                    yield outcome
        finally:
            if pending:
                await self._drain(list(pending))
                pending.clear()

    # ------------------------------------------------------------------ #
    # elastic sharding: load accounting, handoff, topology
    # ------------------------------------------------------------------ #
    def load_snapshot(self) -> LoadSnapshot:
        """An immutable view of the per-shard/per-name load accounting.

        The input to a :class:`~repro.server.rebalance.RebalancePolicy`;
        also serves ``GET /shards``.  Pure parent-side state — no worker
        round-trip, callable whether or not the server is running.
        """
        names = []
        for name, shard in self._owner.items():
            counters = self._name_load.get(name) or self._new_load()
            names.append(
                NameLoad(
                    name=name,
                    shard=shard.shard_id,
                    dispatched=int(counters["dispatched"]),
                    completed=int(counters["completed"]),
                    in_flight=int(counters["in_flight"]),
                    busy_time=counters["busy_time"],
                )
            )
        shards = []
        for shard in self._shards:
            counters = self._shard_load.get(shard.shard_id) or self._new_load()
            in_flight = int(counters["in_flight"])
            shards.append(
                ShardLoad(
                    shard=shard.shard_id,
                    names=shard.owned_names(),
                    dispatched=int(counters["dispatched"]),
                    completed=int(counters["completed"]),
                    in_flight=in_flight,
                    queue_depth=max(0, in_flight - 1),
                    busy_time=counters["busy_time"],
                )
            )
        return LoadSnapshot(shards=tuple(shards), names=tuple(names))

    async def move(self, name: str, shard: int) -> bool:
        """Transfer ownership of ``name`` to the shard with id ``shard``.

        Returns ``False`` when the name already lives there, ``True``
        after a completed transfer.  On a running server the move is a
        live handoff in five steps, none of which stalls other names:

        1. **Gate** — new dispatches of ``name`` park on an event (other
           names route freely; :class:`RebalanceError` if the name is
           already mid-move).
        2. **Quiesce** — the name's in-flight jobs drain on the source
           shard, preserving the per-database FIFO order that makes
           results bit-identical to a sequential replay.
        3. **Export** — the source *worker* ships its current head and
           recorded lineage (the post-delta truth, not the registration-
           time priming copy).
        4. **Adopt** — the destination worker registers the head, adopts
           the lineage, and primes its caches through the shared store
           (zero recomputations when the store is warm); the source
           worker then forgets the name.
        5. **Flip** — the routing table points at the destination,
           :attr:`routing_version` bumps, and the gate opens.

        On a stopped server the move is a plain re-homing of the priming
        set.  Unknown names raise :class:`~repro.errors.EngineError`,
        unknown shards :class:`~repro.errors.RebalanceError`.
        """
        destination = self._shard_by_id(shard)
        source = self._owner_of(name)
        if source is destination:
            return False
        if name in self._moving:
            raise RebalanceError(
                f"{name!r} is already mid-handoff; retry after it completes"
            )
        if not self._running:
            database, keys = source.release(name)
            destination.own(name, database, keys)
            self._owner[name] = destination
            self._routing_version += 1
            self.moves_completed += 1
            return True
        gate = asyncio.Event()
        self._moving[name] = gate
        try:
            pending = [
                future
                for future, (owner, _) in self._outstanding.items()
                if owner == name
            ]
            if pending:
                # Quiesce without consuming outcomes: the original
                # dispatchers still own these futures' results/errors.
                await asyncio.wait(pending)
            database, keys, lineage = await asyncio.wrap_future(
                source.submit_export(name)
            )
            await asyncio.wrap_future(
                destination.submit_handoff(name, database, keys, lineage)
            )
            source.release(name)
            await asyncio.wrap_future(source.submit_forget(name))
            self._owner[name] = destination
            self._routing_version += 1
            self.moves_completed += 1
        finally:
            del self._moving[name]
            gate.set()
        return True

    def add_shard(self) -> int:
        """Grow the fleet by one shard; returns the new shard's id.

        The shard starts empty (ownership only moves via :meth:`move` or
        the rebalancer) and, on a running server, its worker process
        starts immediately.  Ids are never reused: a server that grew and
        shrank keeps monotonically increasing ids.
        """
        shard = Shard(self._next_shard_id, **self._shard_options)
        self._next_shard_id += 1
        if self._running:
            shard.start()
        self._shards.append(shard)
        self._routing_version += 1
        return shard.shard_id

    async def remove_shard(self, shard: int) -> Tuple[str, ...]:
        """Drain one shard and retire it; returns the names it gave up.

        Every owned name is moved (full live handoff, ordering and warm
        caches preserved) to the survivor with the fewest names, then the
        worker is shut down off-loop.  Removing the last shard — or an
        unknown id — raises :class:`~repro.errors.RebalanceError`.
        """
        doomed = self._shard_by_id(shard)
        if len(self._shards) <= 1:
            raise RebalanceError("cannot remove the only shard")
        moved = []
        for name in doomed.owned_names():
            survivors = [s for s in self._shards if s is not doomed]
            target = min(survivors, key=lambda s: (len(s), s.shard_id))
            await self.move(name, target.shard_id)
            moved.append(name)
        self._shards.remove(doomed)
        self._shard_load.pop(doomed.shard_id, None)
        if self._running:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, doomed.stop)
        else:
            doomed.stop()
        self._routing_version += 1
        return tuple(moved)

    async def rebalance(
        self, policy: Optional[RebalancePolicy] = None
    ) -> Tuple[Move, ...]:
        """Run one rebalancing round; returns the moves actually executed.

        Asks ``policy`` (default: the server's configured rebalancer) for
        proposals against the current :meth:`load_snapshot` and executes
        them in order.  Proposals that went stale between snapshot and
        execution — the name re-homed, the destination shard removed —
        are skipped, not errors: the policy is advisory, the routing
        table is the truth.
        """
        active = policy if policy is not None else self._rebalancer
        self.rebalance_rounds += 1
        executed = []
        for proposal in active.propose(self.load_snapshot()):
            owner = self._owner.get(proposal.name)
            if owner is None or owner.shard_id != proposal.source:
                continue
            if proposal.destination not in self.shard_ids:
                continue
            if await self.move(proposal.name, proposal.destination):
                executed.append(proposal)
        return tuple(executed)

    async def _rebalance_loop(self) -> None:
        """The timer behind ``rebalance_interval`` (cancelled by stop)."""
        while True:
            await asyncio.sleep(self._rebalance_interval or 0)
            try:
                await self.rebalance()
            except RebalanceError:
                # A concurrent admin action (manual move, shard removal)
                # won this round; the next tick sees the settled state.
                continue

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    async def history(self, name: str) -> Lineage:
        """The recorded snapshot lineage of ``name``, from its owning shard.

        The probe is a queued job on the owning shard, so the returned
        chain reflects every registration and delta submitted before the
        call — the server-side counterpart of
        :meth:`~repro.engine.SolverPool.lineage`.
        """
        if not self._running:
            raise ServerError("the server is not running; use 'async with server'")
        shard = self._owner_of(name)
        return await asyncio.wrap_future(shard.submit_history(name))

    async def checkpoints(self, name: str) -> Tuple[CheckpointRecord, ...]:
        """The known compaction checkpoints of ``name``, oldest first.

        The checkpoint-aware companion of :meth:`history`: also a queued
        probe on the owning shard, so it reflects every delta — and every
        automatic ``checkpoint_every`` checkpoint those deltas cut —
        submitted before the call.
        """
        if not self._running:
            raise ServerError("the server is not running; use 'async with server'")
        shard = self._owner_of(name)
        return await asyncio.wrap_future(shard.submit_checkpoints(name))

    async def checkpoint(self, name: str) -> Optional[CheckpointRecord]:
        """Cut an explicit compaction checkpoint of ``name`` on its shard.

        FIFO with the name's jobs: the checkpoint captures exactly the
        snapshot produced by the deltas submitted before the call.
        Returns the record, or ``None`` if the snapshot store refused it.
        """
        if not self._running:
            raise ServerError("the server is not running; use 'async with server'")
        shard = self._owner_of(name)
        return await asyncio.wrap_future(shard.submit_checkpoint(name))

    async def rollback(
        self, name: str, ref: Union[str, int]
    ) -> LineageRecord:
        """Re-register a recorded ancestor of ``name`` as its head.

        Routed to the owning shard and FIFO with the name's jobs, so the
        rollback observes every delta submitted before it and every job
        submitted after it counts against the rolled-back snapshot.
        ``ref`` is an ``as_of``-style reference: a recorded content digest
        (or unique >=8-character prefix) or a non-positive chain index.
        """
        if not self._running:
            raise ServerError("the server is not running; use 'async with server'")
        shard = self._owner_of(name)
        return await asyncio.wrap_future(shard.submit_rollback(name, ref))

    async def calibration(self) -> Dict[str, object]:
        """Per-shard conformal calibration state (the admin probe).

        Each shard worker reports its calibration tables (observation
        counts per method, persisted-store statistics when configured)
        plus its refine-to-exact queue counters; totals are aggregated
        parent-side.  Served by ``GET /calibration`` on the HTTP front.
        """
        if not self._running:
            raise ServerError("the server is not running; use 'async with server'")
        probes = [
            asyncio.wrap_future(shard.submit_calibration_stats())
            for shard in self._shards
        ]
        shard_stats = await asyncio.gather(*probes)
        return {
            "shards": {
                str(shard.shard_id): stats
                for shard, stats in zip(self._shards, shard_stats)
            },
            "totals": {
                "observations": sum(
                    int(stats.get("records", 0)) for stats in shard_stats
                ),
                "pending_refinements": sum(
                    int(stats.get("pending_refinements", 0))
                    for stats in shard_stats
                ),
                "refinements_completed": sum(
                    int(stats.get("refinements_completed", 0))
                    for stats in shard_stats
                ),
            },
        }

    async def refine(self, limit: Optional[int] = None) -> Dict[str, int]:
        """Drain queued refine-to-exact continuations on every shard.

        ``limit`` bounds the continuations per shard (``None`` drains
        everything).  FIFO with each shard's jobs, so the drain observes
        exactly the anytime jobs submitted before the call; later anytime
        jobs on the refined snapshots/queries are answered exactly from
        the shard's cache with zero sampling.
        """
        if not self._running:
            raise ServerError("the server is not running; use 'async with server'")
        probes = [
            asyncio.wrap_future(shard.submit_refine(limit))
            for shard in self._shards
        ]
        reports = await asyncio.gather(*probes)
        return {
            "refined": sum(report["refined"] for report in reports),
            "pending": sum(report["pending"] for report in reports),
            "completed": sum(report["completed"] for report in reports),
        }

    async def calibrate_from(self, jobs: Iterable[CountJob]) -> Dict[str, int]:
        """Record calibration pairs from a held-out batch, shard-routed.

        Every randomised job runs twice on the shard owning its database
        (full-budget estimate plus exact count) and feeds that shard's
        conformal calibrator; exact jobs are skipped.  Returns aggregate
        ``{"pairs": ..., "skipped": ...}`` counts.
        """
        if not self._running:
            raise ServerError("the server is not running; use 'async with server'")
        batches: Dict[int, List[CountJob]] = {}
        for job in jobs:
            shard = self._owner_of(job.database)
            batches.setdefault(shard.shard_id, []).append(job)
        probes = [
            asyncio.wrap_future(
                self._shard_by_id(shard_id).submit_calibrate(batch)
            )
            for shard_id, batch in batches.items()
        ]
        reports = await asyncio.gather(*probes)
        return {
            "pairs": sum(report["pairs"] for report in reports),
            "skipped": sum(report["skipped"] for report in reports),
        }

    async def stats(self) -> Dict[str, object]:
        """Aggregate live statistics: queue counters plus per-shard state.

        Per-shard entries come straight from each worker pool's
        :meth:`SolverPool.cache_stats` (including the persist layers and
        their GC evictions) plus its recomputation counters, merged with
        the parent-side load accounting (dispatched, completed,
        in-flight, queue depth, cumulative busy seconds); the ``queue``
        section reports the backpressure configuration and lifetime
        submission counters; ``names`` is the per-name load map;
        ``routing`` the ownership table and its version; ``rebalance``
        the policy configuration and its lifetime move counters.  The
        probe is itself a queued job, so the numbers reflect every job
        submitted before the call.
        """
        if not self._running:
            raise ServerError("the server is not running; use 'async with server'")
        probes = [
            asyncio.wrap_future(shard.submit_stats()) for shard in self._shards
        ]
        shard_stats = await asyncio.gather(*probes)
        snapshot = self.load_snapshot()
        shard_loads = {load.shard: load for load in snapshot.shards}
        return {
            "queue": {
                "limit": self._queue_limit,
                "policy": self._policy,
                "submitted": self.submitted,
                "completed": self.completed,
                "rejected": self.rejected,
                "in_flight": self.in_flight,
                "peak_in_flight": self.peak_in_flight,
            },
            "shards": {
                # "databases" comes from the worker-side payload: it is the
                # execution truth (what the shard's pool can actually
                # serve), which parent-side ownership can only approximate.
                str(shard.shard_id): {
                    "jobs_submitted": shard.jobs_submitted,
                    "updates_submitted": shard.updates_submitted,
                    "dispatched": shard_loads[shard.shard_id].dispatched,
                    "completed": shard_loads[shard.shard_id].completed,
                    "in_flight": shard_loads[shard.shard_id].in_flight,
                    "queue_depth": shard_loads[shard.shard_id].queue_depth,
                    "busy_time": shard_loads[shard.shard_id].busy_time,
                    **stats,
                }
                for shard, stats in zip(self._shards, shard_stats)
            },
            "names": {
                load.name: {
                    "shard": load.shard,
                    "dispatched": load.dispatched,
                    "completed": load.completed,
                    "in_flight": load.in_flight,
                    "busy_time": load.busy_time,
                }
                for load in snapshot.names
            },
            "routing": {
                "version": self._routing_version,
                "owners": {
                    name: shard.shard_id for name, shard in self._owner.items()
                },
            },
            "rebalance": {
                "interval": self._rebalance_interval,
                "policy": type(self._rebalancer).__name__,
                "max_imbalance": getattr(
                    self._rebalancer, "max_imbalance", None
                ),
                "imbalance": snapshot.imbalance(),
                "rounds": self.rebalance_rounds,
                "moves": self.moves_completed,
            },
        }

    def __repr__(self) -> str:
        state = "running" if self._running else "stopped"
        return (
            f"AsyncServer(shards={len(self._shards)}, "
            f"queue_limit={self._queue_limit}, policy={self._policy!r}, "
            f"databases={len(self._owner)}, {state})"
        )


def serve_stream(
    databases: Dict[str, Tuple[Database, PrimaryKeySet]],
    items: Iterable[StreamItem],
    shards: int = 2,
    queue_limit: int = 64,
    policy: str = "wait",
    persist_dir: Optional[Union[str, Path]] = None,
    persist_max_entries: Optional[int] = None,
    persist_max_age: Optional[float] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_policy: Optional[CheckpointPolicy] = None,
    persist_max_bytes: Optional[int] = None,
) -> BatchReport:
    """Serve one stream through a temporary :class:`AsyncServer`.

    The synchronous convenience wrapper (used by benchmarks and scripts
    that do not run their own event loop): registers ``databases``,
    starts the server, runs the stream, stops the server.  The report is
    bit-identical to ``SolverPool.run_stream`` on the same stream.

    >>> from repro.db import Database, PrimaryKeySet, fact
    >>> from repro.engine import CountJob
    >>> db = Database([fact("R", 1, "a"), fact("R", 1, "b")])
    >>> keys = PrimaryKeySet.from_dict({"R": [1]})
    >>> report = serve_stream(
    ...     {"r": (db, keys)},
    ...     [CountJob(database="r", query="EXISTS x. R(1, x)")],
    ...     shards=1,
    ... )
    >>> report.results[0].satisfying
    2
    """

    async def _run() -> BatchReport:
        server = AsyncServer(
            shards=shards,
            queue_limit=queue_limit,
            policy=policy,
            persist_dir=persist_dir,
            persist_max_entries=persist_max_entries,
            persist_max_age=persist_max_age,
            checkpoint_every=checkpoint_every,
            checkpoint_policy=checkpoint_policy,
            persist_max_bytes=persist_max_bytes,
        )
        for name, (database, keys) in databases.items():
            server.register(name, database, keys)
        async with server:
            return await server.run_stream(items)

    return asyncio.run(_run())
