"""Load snapshots and rebalancing policies for elastic shard ownership.

The async server routes each registered name to a fixed shard at
registration time; under the skewed popularity that
:func:`~repro.workloads.serving.serve_workload` models, that static
placement pins one shard at 100% while the rest idle.  This module holds
the *decision* side of the fix: immutable :class:`LoadSnapshot` views of
the server's per-shard/per-name accounting, and pluggable
:class:`RebalancePolicy` objects that turn a snapshot into a list of
:class:`Move` proposals.  The *mechanism* — quiescing a name, exporting
its head, warming the destination — lives in
:meth:`~repro.server.AsyncServer.move`; policies never touch shards.

The default policy is :class:`GreedyRebalancer`: when the hottest shard
carries more than ``max_imbalance`` times the mean load, move its
hottest movable name to the coldest shard, provided the move strictly
narrows the gap.  Load is measured in cumulative busy seconds when any
have been observed (the truthful unit: a thousand cheap jobs may cost
less than one sampling-heavy job) and falls back to dispatch counts on a
server that has not completed work yet.

>>> snapshot = LoadSnapshot(
...     shards=(
...         ShardLoad(shard=0, names=("hot", "warm"), dispatched=9,
...                   completed=9, in_flight=0, queue_depth=0, busy_time=9.0),
...         ShardLoad(shard=1, names=("cold",), dispatched=1,
...                   completed=1, in_flight=0, queue_depth=0, busy_time=1.0),
...     ),
...     names=(
...         NameLoad(name="hot", shard=0, dispatched=6, completed=6,
...                  in_flight=0, busy_time=6.0),
...         NameLoad(name="warm", shard=0, dispatched=3, completed=3,
...                  in_flight=0, busy_time=3.0),
...         NameLoad(name="cold", shard=1, dispatched=1, completed=1,
...                  in_flight=0, busy_time=1.0),
...     ),
... )
>>> GreedyRebalancer(max_imbalance=1.5).propose(snapshot)
(Move(name='hot', source=0, destination=1),)
>>> GreedyRebalancer(max_imbalance=2.0).propose(snapshot)
()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import RebalanceError

__all__ = [
    "GreedyRebalancer",
    "LoadSnapshot",
    "Move",
    "NameLoad",
    "RebalancePolicy",
    "ShardLoad",
]


@dataclass(frozen=True)
class NameLoad:
    """The lifetime load one registered name has put on the server.

    ``busy_time`` is cumulative worker seconds of its completed jobs;
    ``in_flight`` counts dispatched-but-unfinished jobs at snapshot time.
    """

    name: str
    shard: int
    dispatched: int
    completed: int
    in_flight: int
    busy_time: float


@dataclass(frozen=True)
class ShardLoad:
    """One shard's aggregate load plus its current ownership set.

    ``queue_depth`` is the number of accepted jobs waiting behind the one
    the single-worker shard is executing (``max(0, in_flight - 1)``).
    """

    shard: int
    names: Tuple[str, ...]
    dispatched: int
    completed: int
    in_flight: int
    queue_depth: int
    busy_time: float


@dataclass(frozen=True)
class LoadSnapshot:
    """An immutable view of the server's load accounting at one instant."""

    shards: Tuple[ShardLoad, ...]
    names: Tuple[NameLoad, ...]

    def uses_busy_time(self) -> bool:
        """Whether busy seconds are available as the load metric yet."""
        return any(shard.busy_time > 0 for shard in self.shards)

    def _measure(self, item) -> float:
        if self.uses_busy_time():
            return item.busy_time
        return float(item.dispatched)

    def shard_loads(self) -> Dict[int, float]:
        """Shard id -> load, in one consistent unit across the snapshot."""
        return {shard.shard: self._measure(shard) for shard in self.shards}

    def name_loads(self) -> Dict[str, float]:
        """Name -> load, in the same unit as :meth:`shard_loads`."""
        return {name.name: self._measure(name) for name in self.names}

    def imbalance(self) -> float:
        """Hottest-shard load over the mean (1.0 = perfectly balanced)."""
        loads = list(self.shard_loads().values())
        if not loads:
            return 1.0
        mean = sum(loads) / len(loads)
        if mean <= 0:
            return 1.0
        return max(loads) / mean


@dataclass(frozen=True)
class Move:
    """One proposed ownership transfer: ``name`` from ``source`` shard
    to ``destination`` shard."""

    name: str
    source: int
    destination: int


class RebalancePolicy:
    """The policy interface: a pure function from snapshot to moves.

    Implementations must be deterministic in the snapshot (the server
    may re-evaluate them on a timer) and must never mutate server state;
    a proposal that has gone stale by execution time — the name moved,
    the shard was removed — is simply skipped by the executor.
    """

    def propose(self, snapshot: LoadSnapshot) -> Tuple[Move, ...]:
        """Moves that would improve balance, best first; may be empty."""
        raise NotImplementedError


@dataclass(frozen=True)
class GreedyRebalancer(RebalancePolicy):
    """Move the hottest name off the hottest shard onto the coldest.

    Triggers only while the hottest shard's load exceeds
    ``max_imbalance`` times the mean shard load, proposes at most
    ``moves_per_round`` moves per snapshot, and only proposes a move
    that strictly narrows the hot/cold gap — a shard made hot by one
    monolithic name is left alone, since moving it would just relocate
    the hotspot.  Ties (equal loads, equal names) break deterministically
    toward smaller shard ids and lexicographically smaller names.
    """

    max_imbalance: float = 2.0
    moves_per_round: int = 1

    def __post_init__(self) -> None:
        if self.max_imbalance < 1.0:
            raise RebalanceError(
                f"max_imbalance must be >= 1.0, got {self.max_imbalance}"
            )
        if self.moves_per_round < 1:
            raise RebalanceError(
                f"moves_per_round must be >= 1, got {self.moves_per_round}"
            )

    def propose(self, snapshot: LoadSnapshot) -> Tuple[Move, ...]:
        if len(snapshot.shards) < 2:
            return ()
        loads = snapshot.shard_loads()
        name_loads = snapshot.name_loads()
        placement = {load.name: load.shard for load in snapshot.names}
        moves = []
        for _ in range(self.moves_per_round):
            total = sum(loads.values())
            if total <= 0:
                break
            mean = total / len(loads)
            ordered = sorted(loads)  # deterministic tie-breaks by shard id
            hottest = max(ordered, key=loads.__getitem__)
            coldest = min(ordered, key=loads.__getitem__)
            if loads[hottest] <= self.max_imbalance * mean:
                break
            candidates = sorted(
                (name for name, shard in placement.items() if shard == hottest),
                key=lambda name: (-name_loads.get(name, 0.0), name),
            )
            chosen = None
            for name in candidates:
                weight = name_loads.get(name, 0.0)
                if weight <= 0:
                    break  # descending order: no load left to shed
                if loads[coldest] + weight < loads[hottest]:
                    chosen = name
                    break
            if chosen is None:
                break
            weight = name_loads[chosen]
            moves.append(Move(name=chosen, source=hottest, destination=coldest))
            loads[hottest] -= weight
            loads[coldest] += weight
            placement[chosen] = coldest
        return tuple(moves)
